//! # secure-location-alerts
//!
//! A production-quality Rust reproduction of **"An Efficient and Secure
//! Location-based Alert Protocol using Searchable Encryption and Huffman
//! Codes"** (Shaham, Ghinita, Shahabi — EDBT 2021).
//!
//! Mobile users submit HVE-encrypted grid-cell indexes to an untrusted
//! Service Provider; a Trusted Authority issues search tokens for alert
//! zones; the SP evaluates tokens on ciphertexts and learns only who is
//! inside the zone. The paper's contribution — reproduced in full here —
//! is **variable-length (Huffman) encoding of cells** so that likely-
//! alerted cells carry short codes, plus a deterministic token-
//! minimization algorithm on the resulting coding tree, cutting the
//! number of bilinear pairings the SP must evaluate.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`bigint`] — arbitrary-precision arithmetic and prime generation.
//! * [`pairing`] — composite-order symmetric bilinear group (simulated,
//!   with exact pairing-operation accounting).
//! * [`hve`] — Boneh–Waters Hidden Vector Encryption.
//! * [`encoding`] — Huffman/B-ary/balanced/fixed encoders, coding trees,
//!   Algorithm 3 minimization, Quine–McCluskey, analytic results.
//! * [`grid`] — spatial grid, probability maps, alert zones.
//! * [`datasets`] — synthetic Chicago crime data, logistic regression,
//!   workloads.
//! * [`core`] — the three-party protocol ([`core::AlertSystem`]).
//!
//! ## Quickstart
//!
//! The service is assembled through the fallible [`core::SystemBuilder`]
//! and exposes a full subscription lifecycle: `subscribe_cell` upserts
//! (re-subscribing replaces the stored ciphertext), `unsubscribe`
//! removes, and `advance_epoch` drives TTL eviction. Every entry point
//! taking user input returns a typed [`core::SlaError`] instead of
//! panicking.
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use secure_location_alerts::core::{StoreBackend, SystemBuilder};
//! use secure_location_alerts::encoding::EncoderKind;
//! use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 4, 4);
//! let probs = ProbabilityMap::uniform(16);
//! let mut system = SystemBuilder::new(grid)
//!     .encoder(EncoderKind::Huffman)
//!     .group_bits(48)
//!     .store(StoreBackend::Sharded { shards: 4 })
//!     .build(&probs, &mut rng)
//!     .expect("valid configuration");
//!
//! system.subscribe_cell(1, 5, &mut rng).unwrap();
//! system.subscribe_cell(2, 5, &mut rng).unwrap();
//! system.subscribe_cell(2, 12, &mut rng).unwrap(); // user 2 moved away
//!
//! let outcome = system.issue_alert(&[5, 6], &mut rng).unwrap();
//! assert_eq!(outcome.notified, vec![1]);
//!
//! system.unsubscribe(1).unwrap();
//! assert_eq!(system.n_subscriptions(), 1);
//! ```

pub use sla_bigint as bigint;
pub use sla_core as core;
pub use sla_datasets as datasets;
pub use sla_encoding as encoding;
pub use sla_grid as grid;
pub use sla_hve as hve;
pub use sla_pairing as pairing;
pub use sla_scenarios as scenarios;
