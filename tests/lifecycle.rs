//! Service-lifecycle integration: upsert/unsubscribe/TTL semantics over
//! both store backends, serial-vs-batch equivalence under churn, and the
//! typed error taxonomy of every former panic site.

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{
    AlertOutcome, AlertSystem, ServiceProvider, SlaError, StoreBackend, Subscription,
    SystemBuilder, UpsertOutcome,
};
use secure_location_alerts::datasets::{ChurnConfig, ChurnEvent};
use secure_location_alerts::encoding::EncoderKind;
use secure_location_alerts::grid::{
    BoundingBox, Grid, Point, ProbabilityMap, SigmoidParams, ZoneSampler,
};
use secure_location_alerts::hve::{AttributeVector, HveScheme};
use secure_location_alerts::pairing::SimulatedGroup;

const BACKENDS: [StoreBackend; 4] = [
    StoreBackend::Contiguous,
    StoreBackend::Sharded { shards: 1 },
    StoreBackend::Sharded { shards: 5 },
    StoreBackend::ConcurrentSharded { shards: 5 },
];

fn small_grid_system(backend: StoreBackend, seed: u64) -> (AlertSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
    let system = SystemBuilder::new(grid)
        .group_bits(40)
        .store(backend)
        .build(&probs, &mut rng)
        .expect("valid configuration");
    (system, rng)
}

/// The fields serial and batch must reproduce identically.
fn fingerprint(o: &AlertOutcome) -> (Vec<u64>, usize, u64, u64) {
    (
        o.notified.clone(),
        o.tokens_issued,
        o.pairings_used,
        o.analytic_pairings,
    )
}

/// Acceptance: after `upsert` at a new cell, an alert on the old cell
/// does NOT notify the user and an alert on the new cell does — for both
/// store backends, on the serial and the batch path, with identical
/// `notified` and `pairings_used`.
#[test]
fn upsert_moves_user_on_both_backends_serial_and_batch() {
    for backend in BACKENDS {
        let (mut system, mut rng) = small_grid_system(backend.clone(), 0xc4a2);
        // Bystanders on the old and new cells keep both alerts non-empty.
        system.subscribe_cell(50, 2, &mut rng).unwrap();
        system.subscribe_cell(51, 7, &mut rng).unwrap();

        assert_eq!(
            system.subscribe_cell(9, 2, &mut rng),
            Ok(UpsertOutcome::Inserted)
        );
        assert_eq!(
            system.subscribe_cell(9, 7, &mut rng),
            Ok(UpsertOutcome::Replaced),
            "{backend:?}"
        );
        assert_eq!(
            system.n_subscriptions(),
            3,
            "{backend:?}: one record per user"
        );

        let old_serial = system.issue_alert(&[2], &mut rng).unwrap();
        let old_batch = system.issue_alert_batch(&[2], Some(2), &mut rng).unwrap();
        assert_eq!(
            old_serial.notified,
            vec![50],
            "{backend:?}: stale ciphertext must not match"
        );
        assert_eq!(
            fingerprint(&old_serial),
            fingerprint(&old_batch),
            "{backend:?}: serial/batch diverged on the old cell"
        );

        let new_serial = system.issue_alert(&[7], &mut rng).unwrap();
        let new_batch = system.issue_alert_batch(&[7], Some(2), &mut rng).unwrap();
        assert_eq!(new_serial.notified, vec![9, 51], "{backend:?}");
        assert_eq!(
            fingerprint(&new_serial),
            fingerprint(&new_batch),
            "{backend:?}: serial/batch diverged on the new cell"
        );
        assert_eq!(new_serial.pairings_used, new_serial.analytic_pairings);
    }
}

#[test]
fn unsubscribe_removes_and_unknown_user_errors() {
    for backend in BACKENDS {
        let (mut system, mut rng) = small_grid_system(backend.clone(), 0x5b5);
        system.subscribe_cell(1, 4, &mut rng).unwrap();
        system.subscribe_cell(2, 4, &mut rng).unwrap();

        system.unsubscribe(1).unwrap();
        assert_eq!(
            system.unsubscribe(1),
            Err(SlaError::UnknownUser { user_id: 1 }),
            "{backend:?}"
        );
        assert_eq!(system.n_subscriptions(), 1);
        let outcome = system.issue_alert(&[4], &mut rng).unwrap();
        assert_eq!(outcome.notified, vec![2], "{backend:?}");

        let stats = system.store_stats();
        assert_eq!(stats.unsubscribed, 1);
        assert_eq!(stats.subscriptions, 1);
    }
}

#[test]
fn ttl_eviction_drops_stale_subscriptions_and_refresh_renews() {
    for backend in BACKENDS {
        let mut rng = StdRng::seed_from_u64(0x77e);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
        let probs = ProbabilityMap::uniform(4);
        let mut system = SystemBuilder::new(grid)
            .group_bits(40)
            .store(backend.clone())
            .ttl_epochs(2)
            .build(&probs, &mut rng)
            .unwrap();

        // Epoch 0: users 1 and 2 subscribe.
        system.subscribe_cell(1, 0, &mut rng).unwrap();
        system.subscribe_cell(2, 0, &mut rng).unwrap();
        assert_eq!(
            system.advance_epoch(),
            0,
            "{backend:?}: TTL 2, nothing stale yet"
        );

        // Epoch 1: user 1 refreshes, user 3 arrives; user 2 goes stale.
        system.subscribe_cell(1, 0, &mut rng).unwrap();
        system.subscribe_cell(3, 0, &mut rng).unwrap();
        assert_eq!(
            system.advance_epoch(),
            1,
            "{backend:?}: user 2 (epoch 0) expires at epoch 2"
        );
        let outcome = system.issue_alert(&[0], &mut rng).unwrap();
        assert_eq!(outcome.notified, vec![1, 3], "{backend:?}");

        // Epoch 3: nobody refreshed since epoch 1 — everyone expires.
        assert_eq!(system.advance_epoch(), 2, "{backend:?}");
        assert_eq!(system.n_subscriptions(), 0);
        let stats = system.store_stats();
        assert_eq!(stats.evicted, 3, "{backend:?}");
        assert_eq!(stats.epoch, 3);
    }
}

/// Churn acceptance: replaying the same churn workload over both
/// backends, the encrypted system tracks the plaintext ground truth at
/// every epoch, serial and batch paths agree pairing-for-pairing, and
/// both backends notify identical user sets at identical pairing cost.
#[test]
fn churn_workload_replays_identically_across_backends_and_paths() {
    let mut gen_rng = StdRng::seed_from_u64(0xc0de);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 8, 8);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.9, b: 100.0 },
        &mut gen_rng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);
    let workload = ChurnConfig {
        users: 24,
        epochs: 4,
        ..ChurnConfig::default()
    }
    .generate(&sampler, &mut gen_rng);

    let mut per_backend: Vec<Vec<(Vec<u64>, u64)>> = Vec::new();
    for backend in [
        StoreBackend::Contiguous,
        StoreBackend::Sharded { shards: 4 },
        StoreBackend::ConcurrentSharded { shards: 4 },
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let mut system = SystemBuilder::new(grid.clone())
            .group_bits(40)
            .store(backend.clone())
            .build(&probs, &mut rng)
            .unwrap();

        let mut outcomes = Vec::new();
        for (epoch_index, epoch) in workload.epochs.iter().enumerate() {
            for event in &epoch.events {
                match *event {
                    ChurnEvent::Subscribe { user_id, cell }
                    | ChurnEvent::Move { user_id, cell } => {
                        system.subscribe_cell(user_id, cell, &mut rng).unwrap();
                    }
                    ChurnEvent::Unsubscribe { user_id } => {
                        system.unsubscribe(user_id).unwrap();
                    }
                }
            }

            let serial = system.issue_alert(&epoch.alert_cells, &mut rng).unwrap();
            let batch = system
                .issue_alert_batch(&epoch.alert_cells, Some(3), &mut rng)
                .unwrap();
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&batch),
                "{backend:?}: serial/batch diverged at epoch {epoch_index}"
            );
            assert_eq!(serial.pairings_used, serial.analytic_pairings);

            // Plaintext ground truth from the workload itself.
            let expected: Vec<u64> = workload
                .positions_after(epoch_index)
                .into_iter()
                .filter(|(_, cell)| epoch.alert_cells.contains(cell))
                .map(|(user, _)| user)
                .collect();
            assert_eq!(
                serial.notified, expected,
                "{backend:?}: encrypted matching diverged from ground truth at epoch {epoch_index}"
            );

            outcomes.push((serial.notified, serial.pairings_used));
            system.advance_epoch();
        }
        per_backend.push(outcomes);
    }
    assert_eq!(
        per_backend[0], per_backend[1],
        "store backends must produce identical notified sets and pairing counts"
    );
    assert_eq!(
        per_backend[0], per_backend[2],
        "the concurrent backend must replay churn identically to the exclusive backends"
    );
}

/// Satellite: every former panic site returns its specific `SlaError`.
#[test]
fn error_taxonomy_covers_every_former_panic_site() {
    let mut rng = StdRng::seed_from_u64(3);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);

    // Probability-map/grid mismatch (was: assert in AlertSystem::setup).
    let wrong = ProbabilityMap::new(vec![0.5, 0.5]);
    assert_eq!(
        SystemBuilder::new(grid.clone())
            .build(&wrong, &mut rng)
            .unwrap_err(),
        SlaError::ProbabilityMapMismatch {
            map_cells: 2,
            grid_cells: 4
        }
    );

    // Group-bits and store-shape validation (new with the builder).
    let probs = ProbabilityMap::uniform(4);
    assert_eq!(
        SystemBuilder::new(grid.clone())
            .group_bits(4)
            .build(&probs, &mut rng)
            .unwrap_err(),
        SlaError::InvalidGroupBits { bits: 4 }
    );
    assert_eq!(
        SystemBuilder::new(grid.clone())
            .store(StoreBackend::Sharded { shards: 0 })
            .build(&probs, &mut rng)
            .unwrap_err(),
        SlaError::ZeroShardCount
    );

    let mut system = SystemBuilder::new(grid)
        .group_bits(40)
        .build(&probs, &mut rng)
        .unwrap();

    // Out-of-range cell (was: assert in subscribe_cell / panic in
    // tokens_for during issue_alert).
    assert_eq!(
        system.subscribe_cell(1, 99, &mut rng).unwrap_err(),
        SlaError::CellOutOfRange {
            cell: 99,
            n_cells: 4
        }
    );
    assert_eq!(
        system.issue_alert(&[0, 99], &mut rng).unwrap_err(),
        SlaError::CellOutOfRange {
            cell: 99,
            n_cells: 4
        }
    );
    assert_eq!(
        system.analytic_cost(&[99]).unwrap_err(),
        SlaError::CellOutOfRange {
            cell: 99,
            n_cells: 4
        }
    );

    // Point outside the grid (was: silent `false`).
    assert!(matches!(
        system.subscribe_point(1, &Point::new(50.0, 50.0), &mut rng),
        Err(SlaError::PointOutsideGrid { .. })
    ));

    // User id outside the HVE message domain (was: assert deep inside
    // encode_message).
    let big_id = 1u64 << 40;
    assert_eq!(
        system.subscribe_cell(big_id, 0, &mut rng).unwrap_err(),
        SlaError::MessageOutOfDomain { id: big_id }
    );

    // Zero chunk size (was: assert in process_alert_batch).
    system.subscribe_cell(1, 0, &mut rng).unwrap();
    assert_eq!(
        system
            .issue_alert_batch(&[0], Some(0), &mut rng)
            .unwrap_err(),
        SlaError::ZeroChunkSize
    );
}

/// Satellite: width mismatches surface as typed errors from the SP
/// instead of panicking inside the pairing evaluation.
#[test]
fn width_mismatch_is_a_typed_error_at_the_service_provider() {
    let mut rng = StdRng::seed_from_u64(9);
    let group = SimulatedGroup::generate(40, &mut rng);
    let scheme5 = HveScheme::new(&group, 5);
    let scheme3 = HveScheme::new(&group, 3);
    let (pk5, _) = scheme5.setup(&mut rng);
    let (_, sk3) = scheme3.setup(&mut rng);

    let ct5 = scheme5.encrypt(
        &pk5,
        &AttributeVector::from_bits(&[true, false, true, false, true]),
        &scheme5.encode_message(7),
        &mut rng,
    );

    let mut sp = ServiceProvider::new();
    // Ciphertext narrower than the scheme is rejected at upsert.
    assert_eq!(
        sp.upsert(
            &scheme3,
            Subscription {
                user_id: 7,
                ciphertext: ct5.clone(),
            },
        )
        .unwrap_err(),
        SlaError::WidthMismatch {
            expected: 3,
            actual: 5
        }
    );
    sp.upsert(
        &scheme5,
        Subscription {
            user_id: 7,
            ciphertext: ct5,
        },
    )
    .unwrap();

    // A token of the wrong width is rejected before any pairing runs.
    let tk3 = scheme3.gen_token(&sk3, &"1*0".parse().unwrap(), &mut rng);
    assert_eq!(
        sp.match_alert(&scheme5, std::slice::from_ref(&tk3))
            .unwrap_err(),
        SlaError::WidthMismatch {
            expected: 5,
            actual: 3
        }
    );
    assert_eq!(
        sp.process_alert_batch(&scheme5, std::slice::from_ref(&tk3), 4)
            .unwrap_err(),
        SlaError::WidthMismatch {
            expected: 5,
            actual: 3
        }
    );
    // And a scheme of the wrong width cannot query stored material.
    assert_eq!(
        sp.match_alert_exhaustive(&scheme3, &[tk3]).unwrap_err(),
        SlaError::WidthMismatch {
            expected: 5,
            actual: 3
        }
    );
    // Zero chunk size at the SP level too.
    assert_eq!(
        sp.process_alert_batch(&scheme5, &[], 0).unwrap_err(),
        SlaError::ZeroChunkSize
    );
}

/// A *rejected* upsert must not pin the SP's HVE width: after a
/// MessageOutOfDomain failure on a fresh store, material of a different
/// width is still accepted (regression pin for the OnceLock width pin).
#[test]
fn rejected_upsert_does_not_pin_width() {
    let mut rng = StdRng::seed_from_u64(41);
    let group = SimulatedGroup::generate(40, &mut rng);
    let scheme5 = HveScheme::new(&group, 5);
    let scheme3 = HveScheme::new(&group, 3);
    let (pk5, _) = scheme5.setup(&mut rng);
    let (pk3, _) = scheme3.setup(&mut rng);

    let ct5 = scheme5.encrypt(
        &pk5,
        &AttributeVector::from_bits(&[true, false, true, false, true]),
        &scheme5.encode_message(7),
        &mut rng,
    );
    let ct3 = scheme3.encrypt(
        &pk3,
        &AttributeVector::from_bits(&[true, false, true]),
        &scheme3.encode_message(8),
        &mut rng,
    );

    let mut sp = ServiceProvider::new();
    // First upsert fails *after* the width checks (id outside the HVE
    // message domain) — the width must stay unpinned.
    let bad_id = 1u64 << 40;
    assert_eq!(
        sp.upsert(
            &scheme5,
            Subscription {
                user_id: bad_id,
                ciphertext: ct5,
            },
        )
        .unwrap_err(),
        SlaError::MessageOutOfDomain { id: bad_id }
    );
    // A width-3 subscription on the still-empty store is accepted.
    assert_eq!(
        sp.upsert(
            &scheme3,
            Subscription {
                user_id: 8,
                ciphertext: ct3,
            },
        ),
        Ok(UpsertOutcome::Inserted)
    );
    assert_eq!(sp.n_subscriptions(), 1);
}

/// The early-exit matcher notifies exactly the exhaustive path's user
/// set (it shares the residue-domain match primitive) — its contract
/// after dropping the old `debug_assert_eq` on decoded ids.
#[test]
fn early_exit_match_agrees_with_exhaustive_path() {
    let mut rng = StdRng::seed_from_u64(0xea);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 8, 8);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.9, b: 100.0 },
        &mut rng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);

    let group = SimulatedGroup::generate(40, &mut rng);
    let cb =
        secure_location_alerts::encoding::CellCodebook::build(EncoderKind::Huffman, probs.raw());
    let scheme = HveScheme::new(&group, cb.width_bits());
    let (pk, sk) = scheme.setup(&mut rng);
    let ppk = scheme.prepare_public_key(&pk);

    let mut sp = ServiceProvider::with_backend(StoreBackend::Sharded { shards: 3 }, None).unwrap();
    let mut population = Vec::new();
    for user in 0..30u64 {
        let cell = sampler.sample_epicenter_cell(&mut rng).0;
        let user_obj = secure_location_alerts::core::MobileUser::new(user, cell);
        let ct = user_obj
            .encrypt_update_prepared(&scheme, &ppk, &cb, &mut rng)
            .unwrap();
        sp.upsert(
            &scheme,
            Subscription {
                user_id: user,
                ciphertext: ct,
            },
        )
        .unwrap();
        population.push((user, cell));
    }

    for _ in 0..3 {
        let zone = sampler.sample_zone(900.0, &mut rng);
        let tokens: Vec<_> = cb
            .tokens_for(&zone.cell_indices())
            .iter()
            .map(|cw| {
                scheme.gen_token(
                    &sk,
                    &secure_location_alerts::core::codeword_to_pattern(cw),
                    &mut rng,
                )
            })
            .collect();
        let mut early = sp.match_alert(&scheme, &tokens).unwrap();
        let mut exhaustive = sp.match_alert_exhaustive(&scheme, &tokens).unwrap();
        early.sort_unstable();
        exhaustive.sort_unstable();
        assert_eq!(early, exhaustive, "early-exit and exhaustive must agree");

        let mut expected: Vec<u64> = population
            .iter()
            .filter(|(_, c)| zone.cell_indices().contains(c))
            .map(|(u, _)| *u)
            .collect();
        expected.sort_unstable();
        assert_eq!(early, expected);
    }
}

/// Store stats reflect the full lifecycle.
#[test]
fn store_stats_snapshot_counts_the_lifecycle() {
    let (mut system, mut rng) = small_grid_system(StoreBackend::Sharded { shards: 5 }, 0x57a75);
    system.subscribe_cell(1, 0, &mut rng).unwrap();
    system.subscribe_cell(2, 1, &mut rng).unwrap();
    system.subscribe_cell(1, 2, &mut rng).unwrap(); // move
    system.unsubscribe(2).unwrap();

    let stats = system.store_stats();
    assert_eq!(stats.backend, "sharded");
    assert_eq!(stats.shards, 5);
    assert_eq!(stats.subscriptions, 1);
    assert_eq!(stats.inserted, 2);
    assert_eq!(stats.replaced, 1);
    assert_eq!(stats.unsubscribed, 1);
    assert_eq!(stats.evicted, 0);
    assert_eq!(stats.ttl_epochs, None);
    assert_eq!(stats.epoch, 0);
}
