//! Store-backend equivalence: random interleavings of
//! upsert / remove / evict-before (via `advance_epoch`) / match must
//! leave the contiguous, hash-sharded, concurrent-sharded and persistent
//! (WAL-backed) backends with identical contents — as sorted
//! `(user_id, epoch)` sets — and identical notified sets under quiescent
//! matching. Also pins the TTL boundary: a subscription **exactly**
//! `ttl_epochs` old is evicted (the `epoch >= min_epoch` retain bound is
//! the contract).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{AlertSystem, FlushPolicy, StoreBackend, SystemBuilder};
use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const N_CELLS: usize = 9;
const TTL: u64 = 3;

/// A fresh unique scratch directory for one persistent-backend system.
fn temp_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sla-store-equivalence-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backends(persist_dir: &std::path::Path) -> [StoreBackend; 4] {
    [
        StoreBackend::Contiguous,
        StoreBackend::Sharded { shards: 4 },
        StoreBackend::ConcurrentSharded { shards: 4 },
        StoreBackend::Persistent {
            dir: persist_dir.to_path_buf(),
            flush: FlushPolicy::EveryOp,
        },
    ]
}

fn build_system(backend: StoreBackend) -> (AlertSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(0x51a7e);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
    let system = SystemBuilder::new(grid)
        .group_bits(32)
        .store(backend)
        .ttl_epochs(TTL)
        .build(&probs, &mut rng)
        .expect("valid configuration");
    (system, rng)
}

/// One decoded store operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { user: u64, cell: usize },
    Remove { user: u64 },
    AdvanceEpoch,
    Match { cell_a: usize, cell_b: usize },
}

/// Decodes a raw u64 into an op (upsert-heavy, like real churn).
fn decode(raw: u64) -> Op {
    let user = (raw >> 4) % 12;
    let cell = ((raw >> 8) % N_CELLS as u64) as usize;
    match raw % 16 {
        0..=8 => Op::Upsert { user, cell },
        9..=11 => Op::Remove { user },
        12 => Op::AdvanceEpoch,
        _ => Op::Match {
            cell_a: cell,
            cell_b: ((raw >> 12) % N_CELLS as u64) as usize,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn random_interleavings_leave_identical_stores_and_notified_sets(
        raw_ops in prop::collection::vec(any::<u64>(), 15..45),
    ) {
        let ops: Vec<Op> = raw_ops.iter().map(|&r| decode(r)).collect();
        let persist_dir = temp_dir();
        let mut systems: Vec<(StoreBackend, AlertSystem, StdRng)> = backends(&persist_dir)
            .into_iter()
            .map(|b| {
                let (system, rng) = build_system(b.clone());
                (b, system, rng)
            })
            .collect();

        for (i, &op) in ops.iter().enumerate() {
            // Apply the op to every backend and compare observable
            // outcomes pairwise against the contiguous reference.
            let mut outcomes = Vec::new();
            for (backend, system, rng) in &mut systems {
                let observed = match op {
                    Op::Upsert { user, cell } => {
                        format!("{:?}", system.subscribe_cell(user, cell, rng))
                    }
                    Op::Remove { user } => format!("{:?}", system.unsubscribe(user)),
                    Op::AdvanceEpoch => format!("evicted={}", system.advance_epoch()),
                    Op::Match { cell_a, cell_b } => {
                        let o = system.issue_alert(&[cell_a, cell_b], rng).unwrap();
                        let b = system
                            .issue_alert_batch(&[cell_a, cell_b], Some(2), rng)
                            .unwrap();
                        prop_assert_eq!(
                            (&o.notified, o.pairings_used),
                            (&b.notified, b.pairings_used),
                            "{:?}: serial/batch diverged at op {}",
                            backend,
                            i
                        );
                        format!("notified={:?} pairings={}", o.notified, o.pairings_used)
                    }
                };
                outcomes.push((backend.clone(), observed));
            }
            let (ref_backend, reference) = outcomes[0].clone();
            for (backend, observed) in &outcomes[1..] {
                prop_assert_eq!(
                    observed,
                    &reference,
                    "op {} ({:?}): {:?} diverged from {:?}",
                    i,
                    op,
                    backend,
                    ref_backend
                );
            }
        }

        // Terminal state: identical sorted (user_id, epoch) sets and an
        // identical full-grid notified set.
        let reference_state = systems[0].1.subscription_epochs();
        let all_cells: Vec<usize> = (0..N_CELLS).collect();
        let reference_alert = {
            let (_, system, rng) = &mut systems[0];
            system.issue_alert(&all_cells, rng).unwrap()
        };
        for (backend, system, rng) in &mut systems[1..] {
            prop_assert_eq!(
                system.subscription_epochs(),
                reference_state.clone(),
                "{:?}: terminal (user, epoch) set diverged",
                backend
            );
            let alert = system.issue_alert(&all_cells, rng).unwrap();
            prop_assert_eq!(
                (&alert.notified, alert.pairings_used),
                (&reference_alert.notified, reference_alert.pairings_used),
                "{:?}: terminal full-grid alert diverged",
                backend
            );
        }
        drop(systems); // flush + quiesce the persistent backend
        std::fs::remove_dir_all(&persist_dir).unwrap();
    }
}

/// TTL boundary pin, per backend: with TTL `t`, a record upserted at
/// epoch `e` survives `advance_epoch` while its age is `< t` and is
/// evicted by the advance that makes its age exactly `t`.
#[test]
fn ttl_boundary_evicts_exactly_at_ttl_epochs() {
    let persist_dir = temp_dir();
    for backend in backends(&persist_dir) {
        let (mut system, mut rng) = build_system(backend.clone()); // TTL = 3
        system.subscribe_cell(1, 0, &mut rng).unwrap();
        // Ages 1 and 2: still stored.
        assert_eq!(system.advance_epoch(), 0, "{backend:?}: age 1");
        assert_eq!(system.advance_epoch(), 0, "{backend:?}: age 2");
        assert_eq!(system.subscription_epochs(), vec![(1, 0)], "{backend:?}");
        // Age exactly TTL: evicted by this advance.
        assert_eq!(system.advance_epoch(), 1, "{backend:?}: age == TTL");
        assert!(system.subscription_epochs().is_empty(), "{backend:?}");
        assert_eq!(system.store_stats().evicted, 1, "{backend:?}");
    }
    std::fs::remove_dir_all(&persist_dir).unwrap();
}
