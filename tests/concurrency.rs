//! Churn-while-matching: writer threads upsert/remove through the shared
//! (`&self`) entry points while batch matches run on the same
//! `AlertSystem` — the long-lived regime of the paper's system model
//! (§2.2) at production concurrency. Asserts (a) no deadlock and no
//! torn reads under real parallelism, (b) a deterministic final store
//! state once quiescent (each user is owned by exactly one writer), and
//! (c) serial-vs-batch outcome identity on a quiescent store for all
//! four backends. The churn-while-evicting harness adds the sharded
//! epoch/stats plane: `advance_epoch_shared` (TTL eviction through
//! `&self`) racing the writers.
//!
//! The `stress_heavy_*` test is `#[ignore]` for local `cargo test`
//! ergonomics; CI runs it with `--include-ignored` so the lock
//! discipline is exercised under real parallelism every run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{
    AlertOutcome, AlertSystem, FlushPolicy, StoreBackend, SystemBuilder,
};
use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const N_CELLS: usize = 9;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sla-concurrency-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn concurrent_system_with(backend: StoreBackend, ttl: Option<u64>) -> (AlertSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(0xc0c0);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
    let mut builder = SystemBuilder::new(grid).group_bits(32).store(backend);
    if let Some(t) = ttl {
        builder = builder.ttl_epochs(t);
    }
    let system = builder
        .build(&probs, &mut rng)
        .expect("valid configuration");
    (system, rng)
}

fn concurrent_system(shards: usize) -> (AlertSystem, StdRng) {
    concurrent_system_with(StoreBackend::ConcurrentSharded { shards }, None)
}

/// The deterministic final cell of `user` after `rounds` writer rounds of
/// the stress schedule below: subscribe at `(user + round) % N_CELLS`,
/// then unsubscribe when `(user + round) % 3 == 0`.
fn final_position(user: u64, rounds: u64) -> Option<usize> {
    let last = rounds - 1;
    if (user + last).is_multiple_of(3) {
        None
    } else {
        Some(((user + last) % N_CELLS as u64) as usize)
    }
}

/// Core stress harness: `writers` threads churn disjoint user ranges
/// while `matchers + 1` threads issue batch alerts concurrently; after
/// the scope joins, the store must hold exactly each user's final state.
fn run_stress(writers: u64, users_per_writer: u64, rounds: u64, matchers: usize) {
    let (system, _) = concurrent_system(8);
    let all_cells: Vec<usize> = (0..N_CELLS).collect();

    std::thread::scope(|scope| {
        for w in 0..writers {
            let system = &system;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xaa00 ^ w);
                for round in 0..rounds {
                    for user in (w * users_per_writer)..((w + 1) * users_per_writer) {
                        let cell = ((user + round) % N_CELLS as u64) as usize;
                        system
                            .subscribe_cell_shared(user, cell, &mut rng)
                            .expect("valid cell and id");
                        if (user + round).is_multiple_of(3) {
                            system
                                .unsubscribe_shared(user)
                                .expect("user was just subscribed");
                        }
                    }
                }
            });
        }
        // Matcher threads run batch alerts against the whole grid while
        // the writers churn; outcomes must always be well-formed (every
        // notified id is a real user), but membership is race-dependent.
        for m in 0..=matchers {
            let system = &system;
            let all_cells = &all_cells;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x3a7c4 + m as u64);
                for _ in 0..6 {
                    let outcome = system
                        .issue_alert_batch(all_cells, Some(4), &mut rng)
                        .expect("valid alert");
                    for &id in &outcome.notified {
                        assert!(
                            id < writers * users_per_writer,
                            "matched a user id {id} that never subscribed"
                        );
                    }
                }
            });
        }
    });

    // Quiescent: the store holds exactly each user's final state (each
    // user is touched by exactly one writer, so the interleaving cannot
    // change it).
    let expected: Vec<(u64, u64)> = (0..writers * users_per_writer)
        .filter(|&u| final_position(u, rounds).is_some())
        .map(|u| (u, 0)) // epoch never advances in this harness
        .collect();
    assert_eq!(system.subscription_epochs(), expected);

    // And a quiescent full-grid alert notifies exactly the survivors,
    // identically on the serial and the batch path.
    let mut rng = StdRng::seed_from_u64(9);
    let serial = system.issue_alert(&all_cells, &mut rng).unwrap();
    let batch = system
        .issue_alert_batch(&all_cells, Some(3), &mut rng)
        .unwrap();
    let survivors: Vec<u64> = expected.iter().map(|&(u, _)| u).collect();
    assert_eq!(serial.notified, survivors);
    assert_eq!(fingerprint(&serial), fingerprint(&batch));
    assert_eq!(serial.pairings_used, serial.analytic_pairings);
}

/// The fields serial and batch must reproduce identically.
fn fingerprint(o: &AlertOutcome) -> (Vec<u64>, usize, u64, u64) {
    (
        o.notified.clone(),
        o.tokens_issued,
        o.pairings_used,
        o.analytic_pairings,
    )
}

/// Acceptance: ≥ 4 writer threads upserting/removing while batch matches
/// run — completes without deadlock or data race, with a deterministic
/// quiescent state.
#[test]
fn four_writers_churn_while_batch_matching() {
    run_stress(4, 6, 8, 1);
}

/// Heavier schedule, run by CI under `--include-ignored` so the lock
/// discipline sees real parallelism every run.
#[test]
#[ignore = "heavy; CI runs it with --include-ignored"]
fn stress_heavy_churn_while_matching() {
    run_stress(6, 10, 40, 2);
}

/// Churn-while-evicting: writer threads upsert/remove through the
/// shared entry points while another thread advances the epoch (TTL
/// eviction enabled) through `advance_epoch_shared` — the sharded
/// epoch/stats plane. Asserts no deadlock, the exact final epoch, the
/// TTL retention invariant over the survivors, and that a full TTL of
/// quiet advances drains the store completely.
fn run_evict_stress(backend: StoreBackend, writers: u64, users_per_writer: u64, rounds: u64) {
    const TTL: u64 = 2;
    const ADVANCES: u64 = 6;
    let (system, _) = concurrent_system_with(backend, Some(TTL));

    std::thread::scope(|scope| {
        for w in 0..writers {
            let system = &system;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xec1c7 ^ w);
                for round in 0..rounds {
                    for user in (w * users_per_writer)..((w + 1) * users_per_writer) {
                        let cell = ((user + round) % N_CELLS as u64) as usize;
                        system
                            .subscribe_cell_shared(user, cell, &mut rng)
                            .expect("valid cell and id");
                        if (user + round).is_multiple_of(5) {
                            // Not `expect`: a concurrent eviction may
                            // legitimately beat this unsubscribe to a
                            // record stamped with an already-old epoch.
                            let _ = system.unsubscribe_shared(user);
                        }
                    }
                }
            });
        }
        let system = &system;
        scope.spawn(move || {
            for _ in 0..ADVANCES {
                system.advance_epoch_shared().expect("concurrent backend");
                std::thread::yield_now();
            }
        });
    });

    // Quiescent invariants: the epoch advanced exactly ADVANCES times,
    // and no stamp can exceed the epoch that was current when it was
    // taken. (The *lower* TTL bound on survivors is deliberately not
    // asserted here: a record's epoch stamp is read before its insert,
    // so an eviction sweeping between the two can leave a survivor one
    // window older than the quiescent contract — the deterministic TTL
    // boundary is pinned in the store-equivalence suite instead.)
    assert_eq!(system.epoch(), ADVANCES);
    for (user, epoch) in system.subscription_epochs() {
        assert!(epoch <= ADVANCES, "user {user} stamped from the future");
    }
    // A quiet TTL of advances evicts everything that is left.
    let before = system.n_subscriptions();
    let drained: usize = (0..TTL)
        .map(|_| system.advance_epoch_shared().expect("concurrent backend"))
        .sum();
    assert_eq!(drained, before, "every survivor ages out within TTL");
    assert_eq!(system.n_subscriptions(), 0);
    assert_eq!(
        system.store_stats().evicted as usize + system.store_stats().unsubscribed as usize,
        system.store_stats().inserted as usize,
        "every insert is accounted for by an eviction or an unsubscribe"
    );
}

#[test]
fn churn_while_evicting_on_concurrent_store() {
    run_evict_stress(StoreBackend::ConcurrentSharded { shards: 8 }, 4, 6, 10);
}

/// The persistent backend under the same schedule, plus a restart: the
/// drained store must reopen empty at the advanced epoch. Heavy (every
/// mutation pays a WAL append); CI runs it with `--include-ignored`.
#[test]
#[ignore = "heavy; CI runs it with --include-ignored"]
fn stress_churn_while_evicting_persistent() {
    let dir = temp_dir("evict-stress");
    run_evict_stress(
        StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::Every(std::time::Duration::from_millis(5)),
        },
        4,
        6,
        10,
    );
    // run_evict_stress drained the store and dropped the system (sync on
    // drop); a reopen must find the drained state at the final epoch.
    let (reopened, _) = concurrent_system_with(
        StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::EveryOp,
        },
        Some(2),
    );
    assert_eq!(reopened.n_subscriptions(), 0);
    assert_eq!(reopened.epoch(), 8, "6 stress advances + 2 drain advances");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Quiescent-store outcome identity for all three backends: serial and
/// batch matching agree field-for-field (`notified`, `tokens_issued`,
/// `pairings_used`, `analytic_pairings`) at every chunk size, and all
/// backends agree with each other.
#[test]
fn quiescent_serial_vs_batch_identity_across_all_backends() {
    let persist_dir = temp_dir("quiescent");
    let mut reference: Option<(Vec<u64>, usize, u64, u64)> = None;
    for backend in [
        StoreBackend::Contiguous,
        StoreBackend::Sharded { shards: 4 },
        StoreBackend::ConcurrentSharded { shards: 4 },
        StoreBackend::Persistent {
            dir: persist_dir.clone(),
            flush: FlushPolicy::EveryOp,
        },
    ] {
        let mut rng = StdRng::seed_from_u64(0xbeef);
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
        let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let mut system = SystemBuilder::new(grid)
            .group_bits(32)
            .store(backend.clone())
            .build(&probs, &mut rng)
            .unwrap();
        for user in 0..30u64 {
            system
                .subscribe_cell(user, (user % N_CELLS as u64) as usize, &mut rng)
                .unwrap();
        }

        let mut alert_rng = StdRng::seed_from_u64(7);
        let serial = system.issue_alert(&[1, 4, 7], &mut alert_rng).unwrap();
        for chunk in [1, 3, 7, 64] {
            let mut alert_rng = StdRng::seed_from_u64(7);
            let batch = system
                .issue_alert_batch(&[1, 4, 7], Some(chunk), &mut alert_rng)
                .unwrap();
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&batch),
                "{backend:?}: batch(chunk={chunk}) diverged from serial"
            );
        }
        assert_eq!(
            serial.pairings_used, serial.analytic_pairings,
            "{backend:?}"
        );
        match &reference {
            None => reference = Some(fingerprint(&serial)),
            Some(r) => assert_eq!(
                r,
                &fingerprint(&serial),
                "{backend:?} diverged from the contiguous reference"
            ),
        }
    }
    std::fs::remove_dir_all(&persist_dir).unwrap();
}
