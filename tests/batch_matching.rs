//! The parallel batch-matching path must be observationally identical to
//! the serial exhaustive path: same notified users, same token count,
//! same live pairing counter — for every chunk size, and with the
//! analytic cost model still matching the engine's counters exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{AlertOutcome, AlertSystem, StoreBackend, SystemBuilder};
use secure_location_alerts::encoding::EncoderKind;
use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap, SigmoidParams, ZoneSampler};

fn populated_system(encoder: EncoderKind, users: u64) -> (AlertSystem, ZoneSampler, StdRng) {
    let mut rng = StdRng::seed_from_u64(0xba7c4);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 8, 8);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.9, b: 100.0 },
        &mut rng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);
    let mut system = SystemBuilder::new(grid)
        .encoder(encoder)
        .group_bits(40)
        .store(StoreBackend::Sharded { shards: 4 })
        .build(&probs, &mut rng)
        .expect("valid configuration");
    for user in 0..users {
        let cell = sampler.sample_epicenter_cell(&mut rng).0;
        system.subscribe_cell(user, cell, &mut rng).unwrap();
    }
    (system, sampler, rng)
}

/// The fields the batch path must reproduce byte-identically.
fn fingerprint(o: &AlertOutcome) -> (Vec<u64>, usize, u64, u64, u64) {
    (
        o.notified.clone(),
        o.tokens_issued,
        o.non_star_bits,
        o.pairings_used,
        o.analytic_pairings,
    )
}

#[test]
fn batch_outcome_identical_to_serial_for_every_chunk_size() {
    let (system, sampler, mut rng) = populated_system(EncoderKind::Huffman, 40);
    let zone = sampler.sample_zone(900.0, &mut rng);
    let cells = zone.cell_indices();

    let serial = system.issue_alert(&cells, &mut rng).unwrap();
    assert_eq!(serial.pairings_used, serial.analytic_pairings);
    assert!(!serial.notified.is_empty(), "zone should catch someone");

    for chunk in [1usize, 2, 3, 7, 16, 40, 1_000] {
        let batch = system
            .issue_alert_batch(&cells, Some(chunk), &mut rng)
            .unwrap();
        assert_eq!(
            fingerprint(&batch),
            fingerprint(&serial),
            "chunk size {chunk} diverged from serial outcome"
        );
    }

    // Default (per-core) chunk size too.
    let batch = system.issue_alert_batch(&cells, None, &mut rng).unwrap();
    assert_eq!(fingerprint(&batch), fingerprint(&serial));
}

#[test]
fn batch_identical_to_serial_on_large_store() {
    // 300 subscriptions exceeds ServiceProvider::PARALLEL_MIN_STORE, so
    // the default-chunk path fans out; explicit small chunks exercise the
    // par_chunks plumbing with many work items regardless of store size.
    let (system, sampler, mut rng) = populated_system(EncoderKind::Huffman, 300);
    let zone = sampler.sample_zone(700.0, &mut rng);
    let cells = zone.cell_indices();

    let serial = system.issue_alert(&cells, &mut rng).unwrap();
    assert_eq!(serial.pairings_used, serial.analytic_pairings);
    for chunk in [Some(17), Some(64), None] {
        let batch = system.issue_alert_batch(&cells, chunk, &mut rng).unwrap();
        assert_eq!(
            fingerprint(&batch),
            fingerprint(&serial),
            "chunk {chunk:?} diverged on a 300-ciphertext store"
        );
    }
}

#[test]
fn batch_holds_analytic_invariant_across_encoders() {
    for encoder in [
        EncoderKind::Huffman,
        EncoderKind::Balanced,
        EncoderKind::BasicFixed,
        EncoderKind::GraySgo,
        EncoderKind::BaryHuffman(3),
    ] {
        let (system, sampler, mut rng) = populated_system(encoder, 25);
        for _ in 0..3 {
            let zone = sampler.sample_zone(700.0, &mut rng);
            let outcome = system
                .issue_alert_batch(&zone.cell_indices(), None, &mut rng)
                .unwrap();
            assert_eq!(
                outcome.pairings_used, outcome.analytic_pairings,
                "{encoder:?}: batch path must keep the analytic-pairings invariant"
            );
        }
    }
}

#[test]
fn batch_on_empty_store_is_a_noop() {
    let mut rng = StdRng::seed_from_u64(3);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 4, 4);
    let probs = ProbabilityMap::uniform(grid.n_cells());
    let system = AlertSystem::builder(grid)
        .encoder(EncoderKind::Huffman)
        .group_bits(40)
        .build(&probs, &mut rng)
        .unwrap();
    let outcome = system.issue_alert_batch(&[0, 1], None, &mut rng).unwrap();
    assert!(outcome.notified.is_empty());
    assert_eq!(outcome.pairings_used, 0);
    assert_eq!(outcome.analytic_pairings, 0);
}

#[test]
fn batch_matches_ground_truth_membership() {
    // Track the plaintext population alongside the encrypted store, then
    // check the batch path notifies exactly the users whose cells fall
    // inside each zone.
    let mut rng = StdRng::seed_from_u64(0x6e0);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 8, 8);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.9, b: 100.0 },
        &mut rng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);
    let mut system = AlertSystem::builder(grid)
        .encoder(EncoderKind::Huffman)
        .group_bits(40)
        .build(&probs, &mut rng)
        .unwrap();
    let population: Vec<(u64, usize)> = (0..30u64)
        .map(|u| (u, sampler.sample_epicenter_cell(&mut rng).0))
        .collect();
    for &(user, cell) in &population {
        system.subscribe_cell(user, cell, &mut rng).unwrap();
    }

    for _ in 0..3 {
        let zone = sampler.sample_zone(800.0, &mut rng);
        let cells = zone.cell_indices();
        let batch = system.issue_alert_batch(&cells, Some(5), &mut rng).unwrap();
        let mut expected: Vec<u64> = population
            .iter()
            .filter(|(_, c)| cells.contains(c))
            .map(|(u, _)| *u)
            .collect();
        expected.sort_unstable();
        assert_eq!(batch.notified, expected);
    }
}
