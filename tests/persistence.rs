//! Durable-store acceptance: a `ServiceProvider` built on
//! `StoreBackend::Persistent`, dropped and re-opened from its directory,
//! serves **byte-identical quiescent match outcomes** (`notified` sets
//! and `pairings_used`) to an in-memory backend given the same
//! subscription history — including recovery from a torn final WAL
//! record in one durability lane while every other lane recovers in
//! full — plus migration of a pre-sharding (single WAL + monolithic
//! snapshot) directory, cross-backend equivalence over random op
//! sequences, and the error/lifecycle surface of the persistent backend.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{
    AlertSystem, FlushPolicy, SlaError, StoreBackend, SystemBuilder, UpsertOutcome,
};
use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const N_CELLS: usize = 9;
const TTL: u64 = 3;
const SEED: u64 = 0xD15C;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sla-persistence-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every lane WAL under `dir`'s `shard.NNN/` subdirectories, with its
/// current length.
fn lane_wal_files(dir: &Path) -> BTreeMap<PathBuf, u64> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let lane = entry.unwrap().path();
        let is_lane = lane
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("shard."));
        if !(is_lane && lane.is_dir()) {
            continue;
        }
        for file in std::fs::read_dir(&lane).unwrap() {
            let file = file.unwrap().path();
            if file
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal."))
            {
                let len = std::fs::metadata(&file).unwrap().len();
                out.insert(file, len);
            }
        }
    }
    out
}

/// Builds a system over `backend` from a fixed seed: same seed ⇒ same
/// group, keys, and (given the same call sequence) same ciphertexts, so
/// outcomes are comparable across backends and across restarts.
fn build_system(backend: StoreBackend) -> (AlertSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
    let system = SystemBuilder::new(grid)
        .group_bits(32)
        .store(backend)
        .ttl_epochs(TTL)
        .build(&probs, &mut rng)
        .expect("valid configuration");
    (system, rng)
}

/// The subscription history both backends replay: subscribes, moves,
/// unsubscribes and epoch advances across three rounds.
fn apply_history(system: &mut AlertSystem, rng: &mut StdRng) {
    for round in 0..3u64 {
        for user in 0..12u64 {
            if (user + round) % 4 == 0 {
                continue; // this user skips the round (goes stale)
            }
            let cell = ((user + 2 * round) % N_CELLS as u64) as usize;
            system.subscribe_cell(user, cell, rng).unwrap();
        }
        let _ = system.unsubscribe(round + 6);
        system.advance_epoch();
    }
}

/// Quiescent fingerprint of one alert on both the serial and batch path.
fn alert_fingerprint(system: &AlertSystem, cells: &[usize], seed: u64) -> (Vec<u64>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let serial = system.issue_alert(cells, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let batch = system.issue_alert_batch(cells, Some(3), &mut rng).unwrap();
    assert_eq!(
        (&serial.notified, serial.pairings_used),
        (&batch.notified, batch.pairings_used),
        "serial/batch diverged on {cells:?}"
    );
    (serial.notified, serial.pairings_used)
}

/// The acceptance pin: persistent == in-memory before the restart, and
/// the re-opened persistent store still equals the in-memory reference
/// afterwards — same `(user, epoch)` content, same epoch, and identical
/// `notified` + `pairings_used` on every probe alert.
#[test]
fn restart_serves_identical_outcomes_to_in_memory_backend() {
    let dir = temp_dir("restart");
    let (mut memory, mut mem_rng) = build_system(StoreBackend::ConcurrentSharded { shards: 4 });
    apply_history(&mut memory, &mut mem_rng);

    let probes: [&[usize]; 3] = [&[0, 1, 2], &[4], &[0, 1, 2, 3, 4, 5, 6, 7, 8]];
    let expected_state = memory.subscription_epochs();
    let expected_epoch = memory.epoch();

    {
        let (mut persistent, mut rng) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::Every(Duration::from_millis(20)),
        });
        apply_history(&mut persistent, &mut rng);
        assert_eq!(persistent.subscription_epochs(), expected_state);
        for (i, cells) in probes.iter().enumerate() {
            assert_eq!(
                alert_fingerprint(&persistent, cells, 100 + i as u64),
                alert_fingerprint(&memory, cells, 100 + i as u64),
                "pre-restart divergence on {cells:?}"
            );
        }
        persistent.sync().unwrap();
    } // drop: flush the group-commit tail, quiesce the directory

    // The quiesced directory is the sharded layout: a committed layout
    // meta plus per-lane WALs — never a root-level log or snapshot.
    assert!(dir.join("store.meta").exists(), "layout meta committed");
    assert!(!dir.join("snapshot.bin").exists(), "no monolithic snapshot");
    assert!(!lane_wal_files(&dir).is_empty(), "per-lane WALs exist");

    let (reopened, _) = build_system(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert_eq!(reopened.store_stats().backend, "persistent");
    assert_eq!(reopened.n_subscriptions(), expected_state.len());
    assert_eq!(
        reopened.subscription_epochs(),
        expected_state,
        "recovered (user, epoch) content"
    );
    assert_eq!(reopened.epoch(), expected_epoch, "recovered service epoch");
    for (i, cells) in probes.iter().enumerate() {
        assert_eq!(
            alert_fingerprint(&reopened, cells, 100 + i as u64),
            alert_fingerprint(&memory, cells, 100 + i as u64),
            "post-restart divergence on {cells:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Torn final WAL record in **one durability lane**: chopping bytes off
/// the last frame of the lane that logged the final subscription loses
/// exactly that subscription and nothing else — every other lane
/// recovers in full, and the re-opened store equals an in-memory
/// reference that never saw the torn subscribe.
#[test]
fn torn_final_wal_record_in_one_shard_recovers_state_at_last_complete_frame() {
    let dir = temp_dir("torn");

    // Reference: users 0..5 (the 6th subscribe never happened).
    let (mut memory, mut mem_rng) = build_system(StoreBackend::ConcurrentSharded { shards: 4 });
    for user in 0..5u64 {
        memory
            .subscribe_cell(user, user as usize % N_CELLS, &mut mem_rng)
            .unwrap();
    }

    let before;
    {
        let (mut persistent, mut rng) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::EveryOp,
        });
        for user in 0..5u64 {
            persistent
                .subscribe_cell(user, user as usize % N_CELLS, &mut rng)
                .unwrap();
        }
        persistent.sync().unwrap();
        // Snapshot every lane's WAL length, then log one more subscribe:
        // exactly one lane grows, and its tail frame is user 5's record.
        before = lane_wal_files(&dir);
        persistent.subscribe_cell(5, 5 % N_CELLS, &mut rng).unwrap();
    }

    let grown: Vec<PathBuf> = lane_wal_files(&dir)
        .into_iter()
        .filter(|(path, len)| before.get(path).copied().unwrap_or(0) < *len)
        .map(|(path, _)| path)
        .collect();
    assert_eq!(grown.len(), 1, "one lane logged the final subscribe");
    let wal_path = &grown[0];

    // Tear the final record: chop a few bytes off that lane's WAL.
    let bytes = std::fs::read(wal_path).unwrap();
    std::fs::write(wal_path, &bytes[..bytes.len() - 3]).unwrap();

    let (reopened, _) = build_system(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert_eq!(
        reopened.subscription_epochs(),
        memory.subscription_epochs(),
        "exactly the torn subscription is lost"
    );
    for cells in [&[0usize, 1][..], &[4, 5][..]] {
        assert_eq!(
            alert_fingerprint(&reopened, cells, 7),
            alert_fingerprint(&memory, cells, 7),
            "torn-recovery divergence on {cells:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A record in the pre-sharding on-disk vocabulary (canonical discrete
/// logs, so it round-trips the codec byte-exactly). Only `(user_id,
/// epoch)` is observable through `subscription_epochs`; the ciphertext
/// just has to be structurally valid.
fn legacy_record(user_id: u64, epoch: u64) -> sla_persist::Record {
    use secure_location_alerts::bigint::BigUint;
    use secure_location_alerts::hve::Ciphertext;
    use secure_location_alerts::pairing::{GElem, GtElem};
    sla_persist::Record {
        user_id,
        epoch,
        expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
        ciphertext: Ciphertext::from_parts(
            GtElem::from_canonical_log(BigUint::from_u64(user_id * 7 + 3)),
            GElem::from_canonical_log(BigUint::from_u64(user_id + 11)),
            vec![(
                GElem::from_canonical_log(BigUint::from_u64(user_id ^ 0x2A)),
                GElem::from_canonical_log(BigUint::from_u64(user_id + 42)),
            )],
        ),
    }
}

/// Every file under `dir` (two levels deep — the layout has no more),
/// with its bytes.
fn dir_bytes(dir: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    fn walk(dir: &Path, out: &mut BTreeMap<PathBuf, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, out);
            } else {
                out.insert(path.clone(), std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, &mut out);
    out
}

/// Migration: a directory in the pre-sharding format — a monolithic v1
/// `snapshot.bin`, a stale covered WAL, and a live root-level WAL —
/// opens into exactly the state its history describes, is rewritten as
/// the sharded layout on that first open, and is byte-stable across
/// subsequent reopens.
#[test]
fn pre_sharding_directory_migrates_to_lanes_on_first_open() {
    use sla_persist::snapshot::{write_snapshot, Snapshot};
    use sla_persist::wal::{wal_file_name, WalWriter};
    use sla_persist::WalOp;

    let dir = temp_dir("migration");

    // Hand-write the PR-5 layout with the persist crate's own v1
    // primitives: a snapshot covering generation 1 at epoch 1 with
    // users {1, 4}, a stale generation-1 WAL whose contents the
    // snapshot already covers (user 9 must NOT resurrect), and a live
    // generation-2 WAL that re-subscribes user 4 and adds user 7 at
    // epoch 2.
    write_snapshot(
        &dir,
        &Snapshot {
            covered_generation: 1,
            epoch: 1,
            records: vec![legacy_record(1, 1), legacy_record(4, 1)],
        },
    )
    .unwrap();
    let mut stale = WalWriter::create(&dir, 1, FlushPolicy::EveryOp).unwrap();
    stale.append(&WalOp::Upsert(legacy_record(9, 0))).unwrap();
    drop(stale);
    let mut live = WalWriter::create(&dir, 2, FlushPolicy::EveryOp).unwrap();
    live.append(&WalOp::Upsert(legacy_record(4, 2))).unwrap();
    live.append(&WalOp::Upsert(legacy_record(7, 2))).unwrap();
    live.append(&WalOp::Epoch { epoch: 2 }).unwrap();
    drop(live);

    // The in-memory reference that lived the same history.
    let (mut memory, mut mem_rng) = build_system(StoreBackend::ConcurrentSharded { shards: 4 });
    memory.advance_epoch();
    memory.subscribe_cell(1, 1, &mut mem_rng).unwrap();
    memory.advance_epoch();
    memory.subscribe_cell(4, 4, &mut mem_rng).unwrap();
    memory.subscribe_cell(7, 7, &mut mem_rng).unwrap();

    {
        let (migrated, _) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::EveryOp,
        });
        assert_eq!(migrated.subscription_epochs(), memory.subscription_epochs());
        assert_eq!(migrated.epoch(), 2, "epoch recovered from the live WAL");
    }

    // The first open rewrote the directory as the sharded layout and
    // deleted every legacy file.
    assert!(dir.join("store.meta").exists(), "layout meta committed");
    assert!(!dir.join("snapshot.bin").exists(), "v1 snapshot deleted");
    assert!(!dir.join(wal_file_name(1)).exists(), "stale WAL deleted");
    assert!(!dir.join(wal_file_name(2)).exists(), "live WAL deleted");
    assert!(!lane_wal_files(&dir).is_empty(), "per-lane WALs exist");

    // Reopening the migrated directory is a no-op: identical state,
    // byte-identical files.
    let after_migration = dir_bytes(&dir);
    {
        let (reopened, _) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::EveryOp,
        });
        assert_eq!(reopened.subscription_epochs(), memory.subscription_epochs());
        assert_eq!(reopened.epoch(), 2);
    }
    assert_eq!(
        dir_bytes(&dir),
        after_migration,
        "second open rewrote the migrated layout"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One decoded store operation (same shape as the store-equivalence
/// suite, so the persistent backend faces the same churn mix).
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { user: u64, cell: usize },
    Remove { user: u64 },
    AdvanceEpoch,
}

fn decode(raw: u64) -> Op {
    let user = (raw >> 4) % 12;
    let cell = ((raw >> 8) % N_CELLS as u64) as usize;
    match raw % 8 {
        0..=4 => Op::Upsert { user, cell },
        5 | 6 => Op::Remove { user },
        _ => Op::AdvanceEpoch,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn random_histories_survive_restart_identically(
        raw_ops in prop::collection::vec(any::<u64>(), 10..30),
        case in any::<u64>(),
    ) {
        let dir = temp_dir(&format!("prop-{case}"));
        let ops: Vec<Op> = raw_ops.iter().map(|&r| decode(r)).collect();

        let (mut memory, mut mem_rng) =
            build_system(StoreBackend::ConcurrentSharded { shards: 4 });
        {
            let (mut persistent, mut rng) = build_system(StoreBackend::Persistent {
                dir: dir.clone(),
                flush: FlushPolicy::Manual,
            });
            for op in &ops {
                // Apply to both; observable results must agree.
                let (a, b) = match *op {
                    Op::Upsert { user, cell } => (
                        format!("{:?}", memory.subscribe_cell(user, cell, &mut mem_rng)),
                        format!("{:?}", persistent.subscribe_cell(user, cell, &mut rng)),
                    ),
                    Op::Remove { user } => (
                        format!("{:?}", memory.unsubscribe(user)),
                        format!("{:?}", persistent.unsubscribe(user)),
                    ),
                    Op::AdvanceEpoch => (
                        format!("{}", memory.advance_epoch()),
                        format!("{}", persistent.advance_epoch()),
                    ),
                };
                prop_assert_eq!(a, b, "live divergence at {:?}", op);
            }
            persistent.sync().unwrap();
        }

        let (reopened, _) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::Manual,
        });
        prop_assert_eq!(reopened.subscription_epochs(), memory.subscription_epochs());
        prop_assert_eq!(reopened.epoch(), memory.epoch());
        let all_cells: Vec<usize> = (0..N_CELLS).collect();
        prop_assert_eq!(
            alert_fingerprint(&reopened, &all_cells, 11),
            alert_fingerprint(&memory, &all_cells, 11)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The persistent backend is concurrent-capable: the shared (`&self`)
/// entry points work, and shared epoch advancement both evicts and is
/// recorded durably.
#[test]
fn persistent_backend_supports_shared_mutation_and_epochs() {
    let dir = temp_dir("shared");
    {
        let (system, mut rng) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::EveryOp,
        });
        assert_eq!(
            system.subscribe_cell_shared(1, 0, &mut rng),
            Ok(UpsertOutcome::Inserted)
        );
        assert_eq!(
            system.subscribe_cell_shared(1, 2, &mut rng),
            Ok(UpsertOutcome::Replaced)
        );
        system.subscribe_cell_shared(2, 4, &mut rng).unwrap();
        system.unsubscribe_shared(2).unwrap();
        assert_eq!(
            system.unsubscribe_shared(2).unwrap_err(),
            SlaError::UnknownUser { user_id: 2 }
        );
        // TTL = 3: three shared advances evict user 1 (epoch-0 record).
        assert_eq!(system.advance_epoch_shared(), Ok(0));
        assert_eq!(system.advance_epoch_shared(), Ok(0));
        assert_eq!(system.advance_epoch_shared(), Ok(1));
        assert_eq!(system.n_subscriptions(), 0);
        system.sync().unwrap();
    }
    let (reopened, _) = build_system(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert_eq!(reopened.epoch(), 3, "shared advances recovered");
    assert_eq!(reopened.n_subscriptions(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Error surface: a corrupt snapshot refuses to open with
/// `SlaError::Corrupt`; an unusable directory surfaces
/// `SlaError::Storage`.
#[test]
fn unrecoverable_directories_surface_typed_errors() {
    // Corrupt snapshot: valid system, then flip a byte mid-snapshot.
    let dir = temp_dir("corrupt");
    std::fs::write(dir.join("snapshot.bin"), b"not a snapshot at all").unwrap();
    let err = build_system_err(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert!(
        matches!(err, SlaError::Corrupt { .. }),
        "expected Corrupt, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // A file where the directory should be.
    let blocker = temp_dir("blocked").join("occupied");
    std::fs::write(&blocker, b"file, not dir").unwrap();
    let err = build_system_err(StoreBackend::Persistent {
        dir: blocker.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert!(
        matches!(err, SlaError::Storage { .. }),
        "expected Storage, got {err:?}"
    );
    std::fs::remove_dir_all(blocker.parent().unwrap()).unwrap();
}

fn build_system_err(backend: StoreBackend) -> SlaError {
    let mut rng = StdRng::seed_from_u64(SEED);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
    SystemBuilder::new(grid)
        .group_bits(32)
        .store(backend)
        .build(&probs, &mut rng)
        .unwrap_err()
}
