//! Durable-store acceptance: a `ServiceProvider` built on
//! `StoreBackend::Persistent`, dropped and re-opened from its directory,
//! serves **byte-identical quiescent match outcomes** (`notified` sets
//! and `pairings_used`) to an in-memory backend given the same
//! subscription history — including recovery from a torn final WAL
//! record — plus cross-backend equivalence over random op sequences and
//! the error/lifecycle surface of the persistent backend.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{
    AlertSystem, FlushPolicy, SlaError, StoreBackend, SystemBuilder, UpsertOutcome,
};
use secure_location_alerts::grid::{BoundingBox, Grid, ProbabilityMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const N_CELLS: usize = 9;
const TTL: u64 = 3;
const SEED: u64 = 0xD15C;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sla-persistence-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a system over `backend` from a fixed seed: same seed ⇒ same
/// group, keys, and (given the same call sequence) same ciphertexts, so
/// outcomes are comparable across backends and across restarts.
fn build_system(backend: StoreBackend) -> (AlertSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
    let system = SystemBuilder::new(grid)
        .group_bits(32)
        .store(backend)
        .ttl_epochs(TTL)
        .build(&probs, &mut rng)
        .expect("valid configuration");
    (system, rng)
}

/// The subscription history both backends replay: subscribes, moves,
/// unsubscribes and epoch advances across three rounds.
fn apply_history(system: &mut AlertSystem, rng: &mut StdRng) {
    for round in 0..3u64 {
        for user in 0..12u64 {
            if (user + round) % 4 == 0 {
                continue; // this user skips the round (goes stale)
            }
            let cell = ((user + 2 * round) % N_CELLS as u64) as usize;
            system.subscribe_cell(user, cell, rng).unwrap();
        }
        let _ = system.unsubscribe(round + 6);
        system.advance_epoch();
    }
}

/// Quiescent fingerprint of one alert on both the serial and batch path.
fn alert_fingerprint(system: &AlertSystem, cells: &[usize], seed: u64) -> (Vec<u64>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let serial = system.issue_alert(cells, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let batch = system.issue_alert_batch(cells, Some(3), &mut rng).unwrap();
    assert_eq!(
        (&serial.notified, serial.pairings_used),
        (&batch.notified, batch.pairings_used),
        "serial/batch diverged on {cells:?}"
    );
    (serial.notified, serial.pairings_used)
}

/// The acceptance pin: persistent == in-memory before the restart, and
/// the re-opened persistent store still equals the in-memory reference
/// afterwards — same `(user, epoch)` content, same epoch, and identical
/// `notified` + `pairings_used` on every probe alert.
#[test]
fn restart_serves_identical_outcomes_to_in_memory_backend() {
    let dir = temp_dir("restart");
    let (mut memory, mut mem_rng) = build_system(StoreBackend::ConcurrentSharded { shards: 4 });
    apply_history(&mut memory, &mut mem_rng);

    let probes: [&[usize]; 3] = [&[0, 1, 2], &[4], &[0, 1, 2, 3, 4, 5, 6, 7, 8]];
    let expected_state = memory.subscription_epochs();
    let expected_epoch = memory.epoch();

    {
        let (mut persistent, mut rng) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::Every(Duration::from_millis(20)),
        });
        apply_history(&mut persistent, &mut rng);
        assert_eq!(persistent.subscription_epochs(), expected_state);
        for (i, cells) in probes.iter().enumerate() {
            assert_eq!(
                alert_fingerprint(&persistent, cells, 100 + i as u64),
                alert_fingerprint(&memory, cells, 100 + i as u64),
                "pre-restart divergence on {cells:?}"
            );
        }
        persistent.sync().unwrap();
    } // drop: flush the group-commit tail, quiesce the directory

    let (reopened, _) = build_system(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert_eq!(reopened.store_stats().backend, "persistent");
    assert_eq!(reopened.n_subscriptions(), expected_state.len());
    assert_eq!(
        reopened.subscription_epochs(),
        expected_state,
        "recovered (user, epoch) content"
    );
    assert_eq!(reopened.epoch(), expected_epoch, "recovered service epoch");
    for (i, cells) in probes.iter().enumerate() {
        assert_eq!(
            alert_fingerprint(&reopened, cells, 100 + i as u64),
            alert_fingerprint(&memory, cells, 100 + i as u64),
            "post-restart divergence on {cells:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Torn final WAL record: chopping bytes off the last frame loses
/// exactly the last subscription and nothing else — the re-opened store
/// equals an in-memory reference that never saw that subscription.
#[test]
fn torn_final_wal_record_recovers_state_at_last_complete_frame() {
    let dir = temp_dir("torn");

    // Reference: users 0..5 (the 6th subscribe never happened).
    let (mut memory, mut mem_rng) = build_system(StoreBackend::ConcurrentSharded { shards: 4 });
    for user in 0..5u64 {
        memory
            .subscribe_cell(user, user as usize % N_CELLS, &mut mem_rng)
            .unwrap();
    }

    {
        let (mut persistent, mut rng) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::EveryOp,
        });
        for user in 0..6u64 {
            persistent
                .subscribe_cell(user, user as usize % N_CELLS, &mut rng)
                .unwrap();
        }
    }

    // Tear the final record: chop a few bytes off the single WAL file.
    let wal_path = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal."))
        })
        .expect("one wal file");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

    let (reopened, _) = build_system(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert_eq!(
        reopened.subscription_epochs(),
        memory.subscription_epochs(),
        "exactly the torn subscription is lost"
    );
    for cells in [&[0usize, 1][..], &[4, 5][..]] {
        assert_eq!(
            alert_fingerprint(&reopened, cells, 7),
            alert_fingerprint(&memory, cells, 7),
            "torn-recovery divergence on {cells:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One decoded store operation (same shape as the store-equivalence
/// suite, so the persistent backend faces the same churn mix).
#[derive(Debug, Clone, Copy)]
enum Op {
    Upsert { user: u64, cell: usize },
    Remove { user: u64 },
    AdvanceEpoch,
}

fn decode(raw: u64) -> Op {
    let user = (raw >> 4) % 12;
    let cell = ((raw >> 8) % N_CELLS as u64) as usize;
    match raw % 8 {
        0..=4 => Op::Upsert { user, cell },
        5 | 6 => Op::Remove { user },
        _ => Op::AdvanceEpoch,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn random_histories_survive_restart_identically(
        raw_ops in prop::collection::vec(any::<u64>(), 10..30),
        case in any::<u64>(),
    ) {
        let dir = temp_dir(&format!("prop-{case}"));
        let ops: Vec<Op> = raw_ops.iter().map(|&r| decode(r)).collect();

        let (mut memory, mut mem_rng) =
            build_system(StoreBackend::ConcurrentSharded { shards: 4 });
        {
            let (mut persistent, mut rng) = build_system(StoreBackend::Persistent {
                dir: dir.clone(),
                flush: FlushPolicy::Manual,
            });
            for op in &ops {
                // Apply to both; observable results must agree.
                let (a, b) = match *op {
                    Op::Upsert { user, cell } => (
                        format!("{:?}", memory.subscribe_cell(user, cell, &mut mem_rng)),
                        format!("{:?}", persistent.subscribe_cell(user, cell, &mut rng)),
                    ),
                    Op::Remove { user } => (
                        format!("{:?}", memory.unsubscribe(user)),
                        format!("{:?}", persistent.unsubscribe(user)),
                    ),
                    Op::AdvanceEpoch => (
                        format!("{}", memory.advance_epoch()),
                        format!("{}", persistent.advance_epoch()),
                    ),
                };
                prop_assert_eq!(a, b, "live divergence at {:?}", op);
            }
            persistent.sync().unwrap();
        }

        let (reopened, _) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::Manual,
        });
        prop_assert_eq!(reopened.subscription_epochs(), memory.subscription_epochs());
        prop_assert_eq!(reopened.epoch(), memory.epoch());
        let all_cells: Vec<usize> = (0..N_CELLS).collect();
        prop_assert_eq!(
            alert_fingerprint(&reopened, &all_cells, 11),
            alert_fingerprint(&memory, &all_cells, 11)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The persistent backend is concurrent-capable: the shared (`&self`)
/// entry points work, and shared epoch advancement both evicts and is
/// recorded durably.
#[test]
fn persistent_backend_supports_shared_mutation_and_epochs() {
    let dir = temp_dir("shared");
    {
        let (system, mut rng) = build_system(StoreBackend::Persistent {
            dir: dir.clone(),
            flush: FlushPolicy::EveryOp,
        });
        assert_eq!(
            system.subscribe_cell_shared(1, 0, &mut rng),
            Ok(UpsertOutcome::Inserted)
        );
        assert_eq!(
            system.subscribe_cell_shared(1, 2, &mut rng),
            Ok(UpsertOutcome::Replaced)
        );
        system.subscribe_cell_shared(2, 4, &mut rng).unwrap();
        system.unsubscribe_shared(2).unwrap();
        assert_eq!(
            system.unsubscribe_shared(2).unwrap_err(),
            SlaError::UnknownUser { user_id: 2 }
        );
        // TTL = 3: three shared advances evict user 1 (epoch-0 record).
        assert_eq!(system.advance_epoch_shared(), Ok(0));
        assert_eq!(system.advance_epoch_shared(), Ok(0));
        assert_eq!(system.advance_epoch_shared(), Ok(1));
        assert_eq!(system.n_subscriptions(), 0);
        system.sync().unwrap();
    }
    let (reopened, _) = build_system(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert_eq!(reopened.epoch(), 3, "shared advances recovered");
    assert_eq!(reopened.n_subscriptions(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Error surface: a corrupt snapshot refuses to open with
/// `SlaError::Corrupt`; an unusable directory surfaces
/// `SlaError::Storage`.
#[test]
fn unrecoverable_directories_surface_typed_errors() {
    // Corrupt snapshot: valid system, then flip a byte mid-snapshot.
    let dir = temp_dir("corrupt");
    std::fs::write(dir.join("snapshot.bin"), b"not a snapshot at all").unwrap();
    let err = build_system_err(StoreBackend::Persistent {
        dir: dir.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert!(
        matches!(err, SlaError::Corrupt { .. }),
        "expected Corrupt, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // A file where the directory should be.
    let blocker = temp_dir("blocked").join("occupied");
    std::fs::write(&blocker, b"file, not dir").unwrap();
    let err = build_system_err(StoreBackend::Persistent {
        dir: blocker.clone(),
        flush: FlushPolicy::EveryOp,
    });
    assert!(
        matches!(err, SlaError::Storage { .. }),
        "expected Storage, got {err:?}"
    );
    std::fs::remove_dir_all(blocker.parent().unwrap()).unwrap();
}

fn build_system_err(backend: StoreBackend) -> SlaError {
    let mut rng = StdRng::seed_from_u64(SEED);
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 3, 3);
    let probs = ProbabilityMap::new(vec![0.2, 0.1, 0.05, 0.15, 0.1, 0.1, 0.1, 0.1, 0.1]);
    SystemBuilder::new(grid)
        .group_bits(32)
        .store(backend)
        .build(&probs, &mut rng)
        .unwrap_err()
}
