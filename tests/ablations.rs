//! Ablation studies for the design choices recorded in DESIGN.md §9:
//! don't-cares in the boolean baseline, the likelihood floor, and the
//! deterministic-vs-boolean minimization trade-off the paper's §3.3
//! discusses.

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::encoding::minimize::{minimize_to_patterns, pairing_cost};
use secure_location_alerts::encoding::qm::minimize_boolean;
use secure_location_alerts::encoding::{CellCodebook, CodingScheme, EncoderKind};
use secure_location_alerts::grid::{Grid, ProbabilityMap, SigmoidParams, ZoneSampler};

/// Don't-cares can only help the fixed-length baseline (and therefore can
/// only make our reported Huffman gains conservative).
#[test]
fn ablation_dont_cares_never_hurt_boolean_minimization() {
    // 3-bit domain with 5 valid codes: 5..8 are unused (don't-cares).
    let dont_cares: Vec<u64> = vec![5, 6, 7];
    for mask in 1u32..32 {
        let minterms: Vec<u64> = (0..5).filter(|&b| (mask >> b) & 1 == 1).collect();
        let with_dc = minimize_boolean(&minterms, &dont_cares, 3);
        let without_dc = minimize_boolean(&minterms, &[], 3);
        let cost = |tokens: &[secure_location_alerts::encoding::Codeword]| -> u64 {
            tokens
                .iter()
                .map(|t| 1 + 2 * t.non_star_count() as u64)
                .sum()
        };
        assert!(
            cost(&with_dc) <= cost(&without_dc),
            "mask {mask:#b}: DC cost {} > plain {}",
            cost(&with_dc),
            cost(&without_dc)
        );
    }
}

/// Deterministic minimization (Alg. 3) on the Huffman tree vs boolean
/// minimization on the *same* variable-length indexes: Alg. 3 can only
/// merge full subtrees, so boolean minimization is at least as strong on
/// any fixed zone — the paper's §7.2 observation that "the improvement
/// achieved by deterministic minimization lags behind the logic
/// minimization approach". What Huffman buys is the short codes, not a
/// stronger minimizer.
#[test]
fn ablation_deterministic_vs_boolean_on_same_tree() {
    let probs = [0.30, 0.05, 0.20, 0.10, 0.02, 0.08, 0.15, 0.10];
    let tree = secure_location_alerts::encoding::huffman::build_huffman_tree(&probs);
    let scheme = CodingScheme::from_tree(&tree);
    let width = scheme.width_bits();

    for mask in 1u32..256 {
        let zone: Vec<usize> = (0..8).filter(|&c| (mask >> c) & 1 == 1).collect();
        let alg3 = minimize_to_patterns(&scheme, &zone);
        // Boolean minimization over the (variable-length, padded) indexes.
        let minterms: Vec<u64> = zone.iter().map(|&c| scheme.index_of(c).to_u64()).collect();
        let unused: Vec<u64> = (0..(1u64 << width))
            .filter(|v| (0..scheme.n_cells()).all(|c| scheme.index_of(c).to_u64() != *v))
            .collect();
        let boolean = minimize_boolean(&minterms, &unused, width);

        // Boolean minimization with unused-code don't-cares is a lower
        // bound for Alg. 3 on the same index assignment...
        assert!(
            pairing_cost(&boolean, 1) <= pairing_cost(&alg3, 1),
            "mask {mask:#b}: boolean {} > alg3 {}",
            pairing_cost(&boolean, 1),
            pairing_cost(&alg3, 1)
        );
        // ...but Alg. 3 runs on the tree in O(zone · RL) and never
        // produces false positives (exactness checked in sla-encoding).
    }
}

/// The likelihood floor's role (DESIGN.md D2): with the floor, cold cells
/// are equal-weight and multi-cell zones stay affordable; dropping the
/// floor (raw f64 sigmoid) inflates the Huffman width dramatically.
#[test]
fn ablation_likelihood_floor_controls_code_width() {
    let n = 1024;
    let params = SigmoidParams { a: 0.99, b: 100.0 };

    let mut rng = StdRng::seed_from_u64(404);
    let clamped = ProbabilityMap::sigmoid_synthetic(n, params, &mut rng);
    let cb_clamped = CellCodebook::build(EncoderKind::Huffman, clamped.raw());

    // Raw (unclamped) surface, same draws.
    let mut rng = StdRng::seed_from_u64(404);
    let raw: Vec<f64> = (0..n)
        .map(|_| params.eval(rand::Rng::gen::<f64>(&mut rng)))
        .collect();
    let cb_raw = CellCodebook::build(EncoderKind::Huffman, &raw);

    assert!(
        cb_raw.width_bits() > 2 * cb_clamped.width_bits(),
        "raw width {} should dwarf clamped width {}",
        cb_raw.width_bits(),
        cb_clamped.width_bits()
    );
}

/// End-to-end ablation: Huffman's compact-zone advantage persists across
/// encoder lineups on the same seeded workload (a regression guard for
/// the Fig. 9/10 headline).
#[test]
fn ablation_headline_gain_is_stable() {
    let grid = Grid::chicago_downtown_32();
    let mut rng = StdRng::seed_from_u64(2021);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.99, b: 200.0 },
        &mut rng,
    );
    let sampler = ZoneSampler::new(grid, &probs);
    let zones: Vec<Vec<usize>> = (0..40)
        .map(|_| sampler.sample_zone(20.0, &mut rng).cell_indices())
        .collect();

    let cost = |kind: EncoderKind| -> u64 {
        let cb = CellCodebook::build(kind, probs.raw());
        zones.iter().map(|z| cb.pairing_cost(z, 1)).sum()
    };
    let huffman = cost(EncoderKind::Huffman);
    let basic = cost(EncoderKind::BasicFixed);
    let sgo = cost(EncoderKind::GraySgo);
    let balanced = cost(EncoderKind::Balanced);

    let improvement = 100.0 * (basic as f64 - huffman as f64) / basic as f64;
    assert!(
        improvement > 30.0,
        "compact-zone improvement {improvement:.1}% below the expected band"
    );
    assert_eq!(basic, sgo, "single-cell zones: SGO cannot aggregate");
    assert_eq!(
        basic, balanced,
        "single-cell zones: balanced tree is fixed-length-equivalent"
    );
}
