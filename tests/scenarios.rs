//! Scenario-engine equivalence: incremental token regeneration
//! (`issue_alert_tracked` with a [`ZoneTracker`]) must produce exactly
//! the same alert outcome — notified set, token count, pairing counters
//! — as full per-epoch regeneration, for random moving-zone
//! trajectories across **all four** store backends. The property is the
//! soundness argument for the delta path: a cached token matches the
//! same ciphertexts with the same pairing count as a fresh one, because
//! both are determined by the search pattern alone.
//!
//! Also pins the boundary case the matrix bench never hits: a zone that
//! leaves the grid entirely yields an empty cell set, zero tokens, an
//! empty notified set, and a fully evicted cache.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{
    AlertSystem, FlushPolicy, StoreBackend, SystemBuilder, ZoneTracker,
};
use secure_location_alerts::grid::{BoundingBox, Grid, Point, ProbabilityMap};
use secure_location_alerts::scenarios::ZoneTrajectory;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const ROWS: usize = 6;
const COLS: usize = 6;
const N_CELLS: usize = ROWS * COLS;
const EPOCHS: usize = 4;

/// A fresh unique scratch directory for one persistent-backend system.
fn temp_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sla-scenario-equiv-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backends(persist_dir: &std::path::Path) -> [StoreBackend; 4] {
    [
        StoreBackend::Contiguous,
        StoreBackend::Sharded { shards: 4 },
        StoreBackend::ConcurrentSharded { shards: 4 },
        StoreBackend::Persistent {
            dir: persist_dir.to_path_buf(),
            flush: FlushPolicy::Manual,
        },
    ]
}

fn test_grid() -> Grid {
    Grid::new(BoundingBox::new(0.0, 0.0, 0.06, 0.06), ROWS, COLS)
}

/// Two identically-seeded systems over the same backend flavor: same
/// group, same keys, same ciphertexts — so any divergence between the
/// tracked and full alert paths is the regen cache's fault.
fn build_system(backend: StoreBackend, seed: u64) -> (AlertSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let grid = test_grid();
    let probs = ProbabilityMap::uniform(N_CELLS);
    let system = SystemBuilder::new(grid)
        .group_bits(32)
        .store(backend)
        .build(&probs, &mut rng)
        .expect("valid configuration");
    (system, rng)
}

/// Decodes raw proptest input into a trajectory over the test grid:
/// start anywhere inside, drift up to ±2 cells/epoch on each axis,
/// radius 0.5–2.5 cells growing or shrinking by up to half a cell.
fn decode_trajectory(grid: &Grid, raw: [u64; 5]) -> ZoneTrajectory {
    let (cell_h, cell_w) = grid.cell_size_m();
    let bbox = grid.bbox();
    let frac = |r: u64| (r % 1_000) as f64 / 1_000.0;
    let signed = |r: u64| frac(r) * 2.0 - 1.0;
    ZoneTrajectory {
        start: Point::new(
            bbox.min_lat + (bbox.max_lat - bbox.min_lat) * frac(raw[0]),
            bbox.min_lon + (bbox.max_lon - bbox.min_lon) * frac(raw[1]),
        ),
        north_m_per_epoch: signed(raw[2]) * 2.0 * cell_h,
        east_m_per_epoch: signed(raw[3]) * 2.0 * cell_w,
        start_radius_m: (0.5 + frac(raw[4]) * 2.0) * cell_w,
        radius_delta_m: signed(raw[4]) * 0.5 * cell_w,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn tracked_regen_equals_full_regen_on_every_backend(
        raw in prop::collection::vec(any::<u64>(), 5..6),
        seed in any::<u64>(),
    ) {
        let grid = test_grid();
        let trajectory = decode_trajectory(&grid, [raw[0], raw[1], raw[2], raw[3], raw[4]]);
        let persist_dir = temp_dir();
        for backend in backends(&persist_dir) {
            let (mut sys_delta, mut rng_d) = build_system(backend.clone(), seed);
            let (mut sys_full, mut rng_f) = build_system(backend.clone(), seed);
            for user in 0..12u64 {
                let cell = (user as usize * 7) % N_CELLS;
                sys_delta.subscribe_cell(user, cell, &mut rng_d).unwrap();
                sys_full.subscribe_cell(user, cell, &mut rng_f).unwrap();
            }
            let mut tracker = ZoneTracker::new();
            for epoch in 0..EPOCHS {
                let cells = trajectory.cells_at(&grid, epoch);
                let tracked = sys_delta
                    .issue_alert_tracked(&mut tracker, &cells, &mut rng_d)
                    .unwrap();
                let full = sys_full.issue_alert(&cells, &mut rng_f).unwrap();
                prop_assert_eq!(
                    &tracked.alert,
                    &full,
                    "{:?}: delta vs full diverged at epoch {} over {:?}",
                    backend,
                    epoch,
                    cells
                );
                prop_assert_eq!(
                    tracked.regen.tokens_generated + tracked.regen.tokens_reused,
                    tracked.alert.tokens_issued as u64,
                    "regen accounting must cover every issued token"
                );
            }
            // The tracked system's counters saw the deltas; the full
            // system's regen counters never moved.
            prop_assert_eq!(sys_full.service_stats().tokens_regenerated, 0);
        }
        std::fs::remove_dir_all(&persist_dir).ok();
    }
}

#[test]
fn zone_exiting_the_grid_empties_tokens_and_cache() {
    let grid = test_grid();
    let (_, cell_w) = grid.cell_size_m();
    // Storm track scaled to the small grid, sped up so it leaves the
    // east edge within a few epochs.
    let mut trajectory = ZoneTrajectory::storm_track(&grid);
    trajectory.east_m_per_epoch = 4.0 * cell_w;
    trajectory.radius_delta_m = 0.0;
    let exit_epoch = (0..32)
        .find(|&e| trajectory.cells_at(&grid, e).is_empty())
        .expect("trajectory must exit the grid");

    let (mut sys_delta, mut rng_d) = build_system(StoreBackend::Contiguous, 0x51a7e);
    let (mut sys_full, mut rng_f) = build_system(StoreBackend::Contiguous, 0x51a7e);
    for user in 0..10u64 {
        let cell = (user as usize * 5) % N_CELLS;
        sys_delta.subscribe_cell(user, cell, &mut rng_d).unwrap();
        sys_full.subscribe_cell(user, cell, &mut rng_f).unwrap();
    }

    let mut tracker = ZoneTracker::new();
    for epoch in 0..=exit_epoch {
        let cells = trajectory.cells_at(&grid, epoch);
        let tracked = sys_delta
            .issue_alert_tracked(&mut tracker, &cells, &mut rng_d)
            .unwrap();
        let full = sys_full.issue_alert(&cells, &mut rng_f).unwrap();
        assert_eq!(tracked.alert, full, "epoch {epoch} over {cells:?}");
    }

    // After the zone leaves the grid: no cells, no tokens, nobody
    // notified, and the cache holds nothing worth keeping.
    let cells = trajectory.cells_at(&grid, exit_epoch);
    assert!(cells.is_empty());
    let tracked = sys_delta
        .issue_alert_tracked(&mut tracker, &cells, &mut rng_d)
        .unwrap();
    assert!(tracked.alert.notified.is_empty());
    assert_eq!(tracked.alert.tokens_issued, 0);
    assert_eq!(tracked.alert.pairings_used, 0);
    assert_eq!(tracker.cached_tokens(), 0, "empty zone evicts the cache");
    assert!(tracker.prev_cells().is_empty());
}
