//! Full-stack integration: crime pipeline → risk model → codebooks →
//! live encrypted alerting, checking cross-encoder agreement and the
//! analytic cost model against the real engine.

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::SystemBuilder;
use secure_location_alerts::datasets::{
    CrimeDataset, CrimeGeneratorConfig, CrimeRiskModel, TrainConfig,
};
use secure_location_alerts::encoding::EncoderKind;
use secure_location_alerts::grid::{AlertZone, Grid, ProbabilityMap, ZoneSampler};

fn tiny_risk_surface() -> (Grid, ProbabilityMap) {
    // Small grid keeps live HVE fast in CI; the pipeline is the same as
    // the 32x32 experiments.
    let mut rng = StdRng::seed_from_u64(77);
    let grid = Grid::new(
        secure_location_alerts::grid::BoundingBox::chicago_downtown(),
        8,
        8,
    );
    let dataset = CrimeDataset::generate(
        &CrimeGeneratorConfig {
            volume_scale: 0.5,
            ..CrimeGeneratorConfig::default()
        },
        &mut rng,
    );
    let model = CrimeRiskModel::train(
        &dataset,
        &grid,
        TrainConfig {
            epochs: 120,
            ..TrainConfig::default()
        },
    );
    (grid, model.likelihood_map())
}

#[test]
fn all_encoders_agree_on_notifications() {
    let (grid, probs) = tiny_risk_surface();
    let mut rng = StdRng::seed_from_u64(5);
    let sampler = ZoneSampler::new(grid.clone(), &probs);

    // Shared population and zones.
    let population: Vec<(u64, usize)> = (0..30u64)
        .map(|u| (u, sampler.sample_epicenter_cell(&mut rng).0))
        .collect();
    let zones: Vec<AlertZone> = (0..3)
        .map(|_| sampler.sample_zone(1_200.0, &mut rng))
        .collect();

    let mut reference: Option<Vec<Vec<u64>>> = None;
    for encoder in [
        EncoderKind::Huffman,
        EncoderKind::Balanced,
        EncoderKind::BasicFixed,
        EncoderKind::GraySgo,
        EncoderKind::BaryHuffman(3),
    ] {
        let mut sys_rng = StdRng::seed_from_u64(6);
        let mut system = SystemBuilder::new(grid.clone())
            .encoder(encoder)
            .group_bits(40)
            .build(&probs, &mut sys_rng)
            .expect("valid configuration");
        for &(user, cell) in &population {
            system.subscribe_cell(user, cell, &mut sys_rng).unwrap();
        }
        let results: Vec<Vec<u64>> = zones
            .iter()
            .map(|z| {
                let outcome = system.issue_alert(&z.cell_indices(), &mut sys_rng).unwrap();
                assert_eq!(
                    outcome.pairings_used, outcome.analytic_pairings,
                    "{encoder:?}: analytic cost model must match live counters"
                );
                outcome.notified
            })
            .collect();
        match &reference {
            None => reference = Some(results),
            Some(expected) => assert_eq!(
                &results, expected,
                "{encoder:?} notified a different user set"
            ),
        }
    }
}

#[test]
fn notifications_match_plaintext_ground_truth() {
    let (grid, probs) = tiny_risk_surface();
    let mut rng = StdRng::seed_from_u64(9);
    let sampler = ZoneSampler::new(grid.clone(), &probs);

    let mut system = SystemBuilder::new(grid.clone())
        .encoder(EncoderKind::Huffman)
        .group_bits(40)
        .build(&probs, &mut rng)
        .expect("valid configuration");
    let population: Vec<(u64, usize)> = (0..25u64)
        .map(|u| (u, sampler.sample_epicenter_cell(&mut rng).0))
        .collect();
    for &(user, cell) in &population {
        system.subscribe_cell(user, cell, &mut rng).unwrap();
    }

    for _ in 0..4 {
        let zone = sampler.sample_zone(900.0, &mut rng);
        let outcome = system.issue_alert(&zone.cell_indices(), &mut rng).unwrap();
        let mut expected: Vec<u64> = population
            .iter()
            .filter(|(_, c)| zone.cell_indices().contains(c))
            .map(|(u, _)| *u)
            .collect();
        expected.sort_unstable();
        assert_eq!(outcome.notified, expected);
    }
}

#[test]
fn huffman_cheaper_on_compact_zones_live() {
    // The paper's headline, verified on live counters rather than the
    // analytic model: compact zones on a skewed surface cost fewer
    // pairings under Huffman than under the basic fixed scheme. (The
    // 8x8 crime surface is too small/smooth to show a reliable gap —
    // the 32x32 version is exercised analytically in sla-bench::fig09 —
    // so this live test uses the paper's skewed sigmoid surface.)
    let mut srng = StdRng::seed_from_u64(123);
    let grid = Grid::new(
        secure_location_alerts::grid::BoundingBox::chicago_downtown(),
        8,
        8,
    );
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        secure_location_alerts::grid::SigmoidParams { a: 0.9, b: 100.0 },
        &mut srng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);

    let mut costs = Vec::new();
    for encoder in [EncoderKind::Huffman, EncoderKind::BasicFixed] {
        let mut rng = StdRng::seed_from_u64(11);
        let mut system = SystemBuilder::new(grid.clone())
            .encoder(encoder)
            .group_bits(40)
            .build(&probs, &mut rng)
            .expect("valid configuration");
        for user in 0..10u64 {
            let cell = sampler.sample_epicenter_cell(&mut rng).0;
            system.subscribe_cell(user, cell, &mut rng).unwrap();
        }
        // 6 compact (single-cell) zones at popular spots
        let mut total = 0u64;
        for _ in 0..6 {
            let cell = sampler.sample_epicenter_cell(&mut rng).0;
            total += system.issue_alert(&[cell], &mut rng).unwrap().pairings_used;
        }
        costs.push(total);
    }
    assert!(
        costs[0] < costs[1],
        "huffman {} should beat basic {} on compact zones",
        costs[0],
        costs[1]
    );
}
