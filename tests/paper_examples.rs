//! Integration tests reproducing the paper's worked examples end-to-end
//! across crates, with live HVE cryptography.

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{codeword_to_pattern, index_to_attribute};
use secure_location_alerts::encoding::{BitString, CellCodebook, EncoderKind};
use secure_location_alerts::hve::HveScheme;
use secure_location_alerts::pairing::{BilinearGroup, SimulatedGroup};

/// §2.2 / Fig. 1: alert cells with indexes {100, 000} aggregate to the
/// single token `*00`; matching it against user B (000) succeeds and
/// against user A (110) fails, with the 6-pairings-to-2 ... actually
/// 1+2·2 = 5 pairings per ciphertext instead of 2·(1+2·3) = 14.
#[test]
fn fig1_token_aggregation_live() {
    let mut rng = StdRng::seed_from_u64(1);

    // A fixed-length 3-bit codebook over 5 cells reproduces Fig. 1's
    // indexes 000..110 (basic scheme; aggregation via boolean
    // minimization as in [14]).
    let cb = CellCodebook::build(EncoderKind::BasicFixed, &[1.0; 5]);
    assert_eq!(cb.index_of(0), &BitString::parse("000"));
    assert_eq!(cb.index_of(4), &BitString::parse("100"));

    // Alert zone = cells 0 (000) and 4 (100) -> one token *00.
    let tokens = cb.tokens_for(&[0, 4]);
    assert_eq!(tokens.len(), 1);
    assert_eq!(tokens[0].to_string(), "*00");

    // Live HVE: encrypt user A at 110 (cell 6 doesn't exist; emulate via
    // attribute directly) and user B at 000.
    let group = SimulatedGroup::generate(48, &mut rng);
    let scheme = HveScheme::new(&group, 3);
    let (pk, sk) = scheme.setup(&mut rng);

    let token = scheme.gen_token(&sk, &codeword_to_pattern(&tokens[0]), &mut rng);
    assert_eq!(token.pairing_cost(), 5);

    let ct_b = scheme.encrypt(
        &pk,
        &index_to_attribute(&BitString::parse("000")),
        &scheme.encode_message(2),
        &mut rng,
    );
    let ct_a = scheme.encrypt(
        &pk,
        &index_to_attribute(&BitString::parse("110")),
        &scheme.encode_message(1),
        &mut rng,
    );
    assert_eq!(
        scheme.query_decode(&token, &ct_b),
        Some(2),
        "user B matches"
    );
    assert_eq!(
        scheme.query_decode(&token, &ct_a),
        None,
        "user A must not match"
    );

    // Cost comparison of §2.2: aggregated token evaluates with 5 pairings
    // per ciphertext vs 2 tokens x 7 pairings without aggregation.
    let before = group.counters().snapshot();
    let _ = scheme.query(&token, &ct_b);
    let delta = group.counters().snapshot() - before;
    assert_eq!(delta.pairings, 5);
}

/// §3.2/§3.3 running example on the Huffman codebook, with live HVE:
/// alert indexes {001, 100, 110} produce tokens {001, 1**}, and exactly
/// the right cells match.
#[test]
fn fig4_running_example_live() {
    let mut rng = StdRng::seed_from_u64(2);
    let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
    let cb = CellCodebook::build(EncoderKind::Huffman, &probs);

    let alert = vec![1usize, 2, 4]; // indexes 001, 100, 110
    let tokens = cb.tokens_for(&alert);
    let strs: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
    assert_eq!(strs, vec!["001", "1**"]);

    let group = SimulatedGroup::generate(48, &mut rng);
    let scheme = HveScheme::new(&group, cb.width_bits());
    let (pk, sk) = scheme.setup(&mut rng);
    let hve_tokens: Vec<_> = tokens
        .iter()
        .map(|t| scheme.gen_token(&sk, &codeword_to_pattern(t), &mut rng))
        .collect();

    for cell in 0..5 {
        let ct = scheme.encrypt(
            &pk,
            &index_to_attribute(cb.index_of(cell)),
            &scheme.encode_message(cell as u64),
            &mut rng,
        );
        let matched = hve_tokens
            .iter()
            .any(|tk| scheme.query_decode(tk, &ct) == Some(cell as u64));
        assert_eq!(matched, alert.contains(&cell), "cell {cell}");
    }
}

/// §3.3's cost claim: the aggregated Fig. 4 tokens cost 10 pairings per
/// ciphertext; naive per-cell tokens would cost 21.
#[test]
fn fig4_cost_accounting() {
    let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
    let cb = CellCodebook::build(EncoderKind::Huffman, &probs);
    assert_eq!(cb.pairing_cost(&[1, 2, 4], 1), 10);
    let naive: u64 = [1usize, 2, 4]
        .iter()
        .map(|&c| 1 + 2 * cb.index_of(c).len() as u64)
        .sum();
    assert_eq!(naive, 21);
}
