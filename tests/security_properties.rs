//! Observable security properties from §6 of the paper, checked against
//! the simulation. (The group backend is a simulation — see README — so
//! these tests verify *protocol-level* properties: what the SP's
//! interface exposes, padding uniformity, and leakage shape.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_location_alerts::core::{codeword_to_pattern, index_to_attribute};
use secure_location_alerts::encoding::{CellCodebook, EncoderKind};
use secure_location_alerts::hve::{Ciphertext, HveScheme};
use secure_location_alerts::pairing::SimulatedGroup;

/// §2: "All indexes must have the same length for security purposes (to
/// prevent an adversary from distinguishing cells based on length)" —
/// and the resulting ciphertexts must be structurally identical in size.
#[test]
fn ciphertexts_are_length_uniform_across_cells() {
    let mut rng = StdRng::seed_from_u64(1);
    let probs = [0.5, 0.2, 0.1, 0.1, 0.05, 0.05]; // skewed: codes differ in length
    for kind in [
        EncoderKind::Huffman,
        EncoderKind::BaryHuffman(3),
        EncoderKind::Balanced,
    ] {
        let cb = CellCodebook::build(kind, &probs);
        let group = SimulatedGroup::generate(40, &mut rng);
        let scheme = HveScheme::new(&group, cb.width_bits());
        let (pk, _) = scheme.setup(&mut rng);

        let sizes: Vec<(usize, usize)> = (0..cb.n_cells())
            .map(|cell| {
                let ct = scheme.encrypt(
                    &pk,
                    &index_to_attribute(cb.index_of(cell)),
                    &scheme.encode_message(cell as u64),
                    &mut rng,
                );
                (ct.width(), serialized_len(&ct))
            })
            .collect();
        // identical widths and identical serialized sizes modulo the
        // variable-length integer encodings (same component count)
        assert!(
            sizes.iter().all(|(w, _)| *w == sizes[0].0),
            "{kind:?}: ciphertext widths differ: {sizes:?}"
        );
    }
}

fn serialized_len(ct: &Ciphertext) -> usize {
    serde_json::to_vec(ct).map(|v| v.len()).unwrap_or(0)
}

/// §6: "the SP learns only whether the user is included in the alert
/// zone ... conversely, if the match is not successful, the SP learns
/// only that the user is not inside" — a non-matching query must yield
/// ⊥ for *every* non-matching cell, with no distinction between
/// different non-matching cells.
#[test]
fn non_match_outcomes_are_uniform_bot() {
    let mut rng = StdRng::seed_from_u64(2);
    let probs = [0.3, 0.3, 0.2, 0.1, 0.1];
    let cb = CellCodebook::build(EncoderKind::Huffman, &probs);
    let group = SimulatedGroup::generate(40, &mut rng);
    let scheme = HveScheme::new(&group, cb.width_bits());
    let (pk, sk) = scheme.setup(&mut rng);

    // token for a single-cell zone {0}
    let tokens = cb.tokens_for(&[0]);
    let tk = scheme.gen_token(&sk, &codeword_to_pattern(&tokens[0]), &mut rng);

    for cell in 1..cb.n_cells() {
        let ct = scheme.encrypt(
            &pk,
            &index_to_attribute(cb.index_of(cell)),
            &scheme.encode_message(7),
            &mut rng,
        );
        // ⊥: decode fails, regardless of *which* non-matching cell
        assert_eq!(
            scheme.query_decode(&tk, &ct),
            None,
            "cell {cell} must look like every other non-match"
        );
    }
}

/// §6: "our technique is guided by statistical information that is
/// derived solely from public data ... No private information regarding
/// any system user is included in the encoding process." The codebook is
/// a deterministic function of the public likelihoods alone — no user
/// state, no RNG.
#[test]
fn codebook_is_deterministic_in_public_likelihoods_only() {
    let probs = [0.25, 0.1, 0.4, 0.15, 0.1];
    for kind in [
        EncoderKind::Huffman,
        EncoderKind::GraySgo,
        EncoderKind::Balanced,
        EncoderKind::BasicFixed,
        EncoderKind::BaryHuffman(3),
    ] {
        let a = CellCodebook::build(kind, &probs);
        let b = CellCodebook::build(kind, &probs);
        assert_eq!(a.indexes(), b.indexes(), "{kind:?}");
        assert_eq!(a.tokens_for(&[1, 3]), b.tokens_for(&[1, 3]), "{kind:?}");
    }
}

/// The token reveals its pattern (inherent to HVE), but the pattern for
/// an aggregated zone does not reveal *which* of the covered cells
/// triggered the alert: the §3.3 token {1**} is identical whether the
/// alert originated in v3 or v5.
#[test]
fn aggregated_tokens_hide_the_triggering_cell() {
    let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
    let cb = CellCodebook::build(EncoderKind::Huffman, &probs);
    // zone {2, 4} = subtree 1**
    let zone_tokens = cb.tokens_for(&[2, 4]);
    assert_eq!(zone_tokens.len(), 1);
    assert_eq!(zone_tokens[0].to_string(), "1**");
    // the same token would have been issued for any superset ordering
    let reordered = cb.tokens_for(&[4, 2]);
    assert_eq!(zone_tokens, reordered);
}
