//! Times one Fig. 10 panel (synthetic sigmoid sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use sla_bench::{fig10, SEED};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for (a, b_param) in [(0.9, 100.0), (0.99, 100.0)] {
        g.bench_function(format!("panel_a{a}_b{b_param}_5zones"), |bch| {
            bch.iter(|| fig10::run_panel(a, b_param, SEED, 5, 1_000))
        });
        g.bench_function(format!("panel_a{a}_b{b_param}_5zones_parallel"), |bch| {
            bch.iter(|| fig10::run_panel_with(a, b_param, SEED, 5, 1_000, true))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
