//! Times the Fig. 12 granularity sweep at reduced workload size.

use criterion::{criterion_group, criterion_main, Criterion};
use sla_bench::{fig12, SEED};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("granularity_3zones", |b| {
        b.iter(|| fig12::run(SEED, 3, 1_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
