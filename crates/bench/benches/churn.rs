//! `churn` bench group: subscription lifecycle under load. Replays the
//! datasets churn workload (moves / unsubscribes / re-subscriptions plus
//! one alert per epoch) against every store backend — the contiguous
//! `Vec` pays O(n) upserts, the sharded store O(1) plus per-shard
//! parallel matching, the concurrent store per-shard `RwLock`s, and the
//! persistent store a WAL append per mutation (group commit, so the
//! fsync amortizes across a burst). The `churn_while_matching` entry
//! overlaps writer threads with a running batch match on the concurrent
//! backend — the regime the exclusive backends cannot serve at all.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_bench::SEED;
use sla_core::{AlertSystem, FlushPolicy, StoreBackend, SystemBuilder};
use sla_datasets::{ChurnConfig, ChurnEvent, ChurnWorkload};
use sla_grid::{BoundingBox, Grid, ProbabilityMap, SigmoidParams, ZoneSampler};
use std::time::Duration;

fn fixture() -> (Grid, ProbabilityMap, ChurnWorkload) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 8, 8);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.9, b: 100.0 },
        &mut rng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);
    let workload = ChurnConfig {
        users: 48,
        epochs: 6,
        ..ChurnConfig::default()
    }
    .generate(&sampler, &mut rng);
    (grid, probs, workload)
}

fn build(grid: &Grid, probs: &ProbabilityMap, backend: StoreBackend) -> (AlertSystem, StdRng) {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let system = SystemBuilder::new(grid.clone())
        .group_bits(48)
        .store(backend)
        .build(probs, &mut rng)
        .expect("valid configuration");
    (system, rng)
}

/// Applies one epoch's events; unsubscribes of already-departed users
/// (possible when an epoch replays more than once) are ignored.
fn apply_epoch(system: &mut AlertSystem, epoch: &sla_datasets::ChurnEpoch, rng: &mut StdRng) {
    for event in &epoch.events {
        match *event {
            ChurnEvent::Subscribe { user_id, cell } | ChurnEvent::Move { user_id, cell } => {
                system
                    .subscribe_cell(user_id, cell, rng)
                    .expect("workload cells are in range");
            }
            ChurnEvent::Unsubscribe { user_id } => {
                let _ = system.unsubscribe(user_id);
            }
        }
    }
}

fn bench_churn(c: &mut Criterion) {
    let (grid, probs, workload) = fixture();
    let mut g = c.benchmark_group("churn");
    g.sample_size(10);

    let persist_dir =
        std::env::temp_dir().join(format!("sla-bench-churn-epoch-{}", std::process::id()));
    for (name, backend) in [
        ("contiguous", StoreBackend::Contiguous),
        ("sharded8", StoreBackend::Sharded { shards: 8 }),
        ("concurrent8", StoreBackend::ConcurrentSharded { shards: 8 }),
        (
            "persistent",
            StoreBackend::Persistent {
                dir: persist_dir.clone(),
                flush: FlushPolicy::Every(Duration::from_millis(5)),
            },
        ),
    ] {
        let (mut system, mut rng) = build(&grid, &probs, backend);
        apply_epoch(&mut system, &workload.epochs[0], &mut rng);

        let mut next = 1usize;
        g.bench_function(format!("epoch_replay_{name}"), |b| {
            b.iter(|| {
                let epoch = &workload.epochs[next];
                next = 1 + next % (workload.epochs.len() - 1);
                apply_epoch(&mut system, epoch, &mut rng);
                system.advance_epoch();
                system
                    .issue_alert_batch(&epoch.alert_cells, None, &mut rng)
                    .expect("workload cells are in range")
            });
        });
    }
    if persist_dir.exists() {
        std::fs::remove_dir_all(&persist_dir).expect("bench scratch cleanup");
    }
    g.finish();
}

/// The churn-while-matching regime: `WRITERS` threads replay an epoch's
/// writer streams through `subscribe_cell_shared`/`unsubscribe_shared`
/// while the measuring thread runs the epoch's batch match concurrently.
/// Served by both concurrent-capable backends: the volatile sharded
/// store and the persistent store, whose per-shard durability lanes let
/// the four writers log without serializing on a single WAL gate.
fn bench_churn_while_matching(c: &mut Criterion) {
    const WRITERS: usize = 4;
    let (grid, probs, workload) = fixture();
    let mut g = c.benchmark_group("churn");
    g.sample_size(10);

    let persist_dir =
        std::env::temp_dir().join(format!("sla-bench-churn-wm-{}", std::process::id()));
    for (name, backend) in [
        ("concurrent8", StoreBackend::ConcurrentSharded { shards: 8 }),
        (
            "persistent_sharded",
            StoreBackend::Persistent {
                dir: persist_dir.clone(),
                flush: FlushPolicy::Every(Duration::from_millis(5)),
            },
        ),
    ] {
        let (system, mut rng) = {
            let mut rng = StdRng::seed_from_u64(SEED ^ 2);
            let system = SystemBuilder::new(grid.clone())
                .group_bits(48)
                .store(backend)
                .build(&probs, &mut rng)
                .expect("valid configuration");
            (system, rng)
        };
        // Seed the population, then interleave epoch replays with
        // matching.
        for event in &workload.epochs[0].events {
            if let ChurnEvent::Subscribe { user_id, cell } = *event {
                system
                    .subscribe_cell_shared(user_id, cell, &mut rng)
                    .expect("workload cells are in range");
            }
        }

        let mut next = 1usize;
        g.bench_function(format!("while_matching_{name}_w{WRITERS}"), |b| {
            b.iter(|| {
                let epoch = &workload.epochs[next];
                next = 1 + next % (workload.epochs.len() - 1);
                let streams = epoch.writer_streams(WRITERS);
                std::thread::scope(|scope| {
                    for (w, stream) in streams.iter().enumerate() {
                        let system = &system;
                        scope.spawn(move || {
                            let mut rng = StdRng::seed_from_u64(SEED ^ (0x100 + w as u64));
                            for event in stream {
                                match *event {
                                    ChurnEvent::Subscribe { user_id, cell }
                                    | ChurnEvent::Move { user_id, cell } => {
                                        system
                                            .subscribe_cell_shared(user_id, cell, &mut rng)
                                            .expect("workload cells are in range");
                                    }
                                    ChurnEvent::Unsubscribe { user_id } => {
                                        let _ = system.unsubscribe_shared(user_id);
                                    }
                                }
                            }
                        });
                    }
                    let mut match_rng = StdRng::seed_from_u64(SEED ^ 3);
                    system
                        .issue_alert_batch(&epoch.alert_cells, Some(8), &mut match_rng)
                        .expect("workload cells are in range")
                })
            });
        });
    }
    if persist_dir.exists() {
        std::fs::remove_dir_all(&persist_dir).expect("bench scratch cleanup");
    }
    g.finish();
}

criterion_group!(benches, bench_churn, bench_churn_while_matching);
criterion_main!(benches);
