//! Times one Fig. 11 mixed-workload panel.

use criterion::{criterion_group, criterion_main, Criterion};
use sla_bench::{fig11, SEED};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("mixed_panel_40zones", |b| {
        b.iter(|| fig11::run_panel(0.99, 100.0, SEED, 40, 1_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
