//! Times the Fig. 9 pipeline at a reduced workload size (the full run is
//! the `repro` binary's job; here we time the cost-evaluation machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use sla_bench::{fig09, SEED};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("crime_pipeline_5zones", |b| {
        b.iter(|| fig09::run(SEED, 5, 1_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
