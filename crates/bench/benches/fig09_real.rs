//! Times the Fig. 9 pipeline at a reduced workload size (the full run is
//! the `repro` binary's job; here we time the cost-evaluation machinery),
//! plus the live alert path serial-vs-batch (the batch variant fans
//! ciphertext chunks out across cores).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_bench::{fig09, SEED};
use sla_core::{StoreBackend, SystemBuilder};
use sla_encoding::EncoderKind;
use sla_grid::{BoundingBox, Grid, ProbabilityMap, SigmoidParams, ZoneSampler};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("crime_pipeline_5zones", |b| {
        b.iter(|| fig09::run(SEED, 5, 1_000))
    });
    g.bench_function("crime_pipeline_5zones_parallel", |b| {
        b.iter(|| fig09::run_with(SEED, 5, 1_000, true))
    });
    g.finish();
}

fn bench_live_alert(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let grid = Grid::new(BoundingBox::chicago_downtown(), 8, 8);
    let probs = ProbabilityMap::sigmoid_synthetic(
        grid.n_cells(),
        SigmoidParams { a: 0.9, b: 100.0 },
        &mut rng,
    );
    let sampler = ZoneSampler::new(grid.clone(), &probs);
    let mut system = SystemBuilder::new(grid)
        .encoder(EncoderKind::Huffman)
        .group_bits(48)
        .store(StoreBackend::Sharded { shards: 8 })
        .build(&probs, &mut rng)
        .expect("valid configuration");
    for user in 0..64u64 {
        let cell = sampler.sample_epicenter_cell(&mut rng).0;
        system
            .subscribe_cell(user, cell, &mut rng)
            .expect("sampled cells are in range");
    }
    let zone = sampler.sample_zone(600.0, &mut rng);
    let cells = zone.cell_indices();

    let mut g = c.benchmark_group("fig09_live");
    g.sample_size(10);
    g.bench_function("issue_alert_serial", |b| {
        let mut r = StdRng::seed_from_u64(1);
        b.iter(|| system.issue_alert(&cells, &mut r).unwrap());
    });
    g.bench_function("issue_alert_batch", |b| {
        let mut r = StdRng::seed_from_u64(1);
        b.iter(|| system.issue_alert_batch(&cells, None, &mut r).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench, bench_live_alert);
criterion_main!(benches);
