//! Times the Fig. 7 pipeline (Huffman construction + LE bound analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use sla_bench::{fig07, SEED};

fn bench(c: &mut Criterion) {
    c.bench_function("fig07_le_bound", |b| b.iter(|| fig07::run(SEED)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
