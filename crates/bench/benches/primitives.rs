//! Primitive benchmarks: HVE phases and core encoding operations. These
//! time the building blocks the figures are made of (the paper's cost
//! driver is `query`, whose pairing count scales with non-star bits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_bigint::{gen_prime, BigUint, FixedBaseTable, MontgomeryCtx, Reducer};
use sla_encoding::{CellCodebook, EncoderKind};
use sla_hve::{AttributeVector, HveScheme, SearchPattern};
use sla_pairing::{BilinearGroup, SimulatedGroup};
use std::sync::Arc;

/// Montgomery fast path vs the seed's division-based arithmetic, at the
/// modulus sizes the group engine actually uses (48/64-bit primes give
/// 96/128-bit composite orders). The acceptance bar for the Montgomery
/// work is >= 2x on 96-bit `mod_pow`.
fn bench_modular(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut g = c.benchmark_group("modular");
    for prime_bits in [32usize, 48, 64] {
        let p = gen_prime(prime_bits, &mut rng);
        let q = gen_prime(prime_bits, &mut rng);
        let n = &p * &q;
        let bits = n.bit_len();
        let ctx = MontgomeryCtx::new(&n).expect("odd modulus");
        let a = &n - &BigUint::from_u64(12345);
        let b = &n - &BigUint::from_u64(6789);
        let e = &n - &BigUint::from_u64(2);

        g.bench_with_input(BenchmarkId::new("mod_mul_naive", bits), &bits, |bch, _| {
            bch.iter(|| a.mod_mul(&b, &n));
        });
        g.bench_with_input(BenchmarkId::new("mod_mul_mont", bits), &bits, |bch, _| {
            bch.iter(|| ctx.mod_mul(&a, &b));
        });
        g.bench_with_input(BenchmarkId::new("mod_pow_naive", bits), &bits, |bch, _| {
            bch.iter(|| a.mod_pow_naive(&e, &n));
        });
        g.bench_with_input(BenchmarkId::new("mod_pow_mont", bits), &bits, |bch, _| {
            bch.iter(|| a.mod_pow(&e, &n));
        });
    }
    g.finish();
}

/// Fixed-base tables vs the generic windowed ladder — the repeated-base
/// regime of Setup/Encrypt/GenToken, where one base is exponentiated with
/// many fresh exponents. Includes the engine-level analogue: `pow_g` on a
/// cached generator vs on an arbitrary element.
fn bench_fixed_base(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(43);
    let mut g = c.benchmark_group("fixed_base_vs_generic");
    for prime_bits in [32usize, 48, 64] {
        let p = gen_prime(prime_bits, &mut rng);
        let q = gen_prime(prime_bits, &mut rng);
        let n = &p * &q;
        let bits = n.bit_len();
        let reducer = Arc::new(Reducer::new(&n).expect("N > 1"));
        let base = &n - &BigUint::from_u64(98765);
        let table = FixedBaseTable::with_default_window(reducer, &base, bits);
        let e = &n - &BigUint::from_u64(2);

        g.bench_with_input(
            BenchmarkId::new("generic_mod_pow", bits),
            &bits,
            |bch, _| {
                bch.iter(|| base.mod_pow(&e, &n));
            },
        );
        g.bench_with_input(BenchmarkId::new("fixed_base_pow", bits), &bits, |bch, _| {
            bch.iter(|| table.pow(&e));
        });

        let group = SimulatedGroup::new(sla_pairing::GroupParams::from_factors(p, q));
        let arb = group.random_gp(&mut rng);
        let gen = group.gp_generator();
        g.bench_with_input(BenchmarkId::new("pow_g_generic", bits), &bits, |bch, _| {
            bch.iter(|| group.pow_g(&arb, &e));
        });
        g.bench_with_input(
            BenchmarkId::new("pow_g_generator", bits),
            &bits,
            |bch, _| {
                bch.iter(|| group.pow_g(&gen, &e));
            },
        );
    }
    g.finish();
}

fn bench_hve_phases(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let group = SimulatedGroup::generate(64, &mut rng);

    let mut g = c.benchmark_group("hve");
    for width in [8usize, 16, 32] {
        let scheme = HveScheme::new(&group, width);
        let (pk, sk) = scheme.setup(&mut rng);
        let bits: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        let index = AttributeVector::from_bits(&bits);
        let msg = scheme.encode_message(7);
        let ct = scheme.encrypt(&pk, &index, &msg, &mut rng);
        // half the positions non-star
        let symbols: Vec<Option<bool>> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| if i % 2 == 0 { Some(b) } else { None })
            .collect();
        let token = scheme.gen_token(&sk, &SearchPattern::from_symbols(&symbols), &mut rng);

        let ppk = scheme.prepare_public_key(&pk);
        let psk = scheme.prepare_secret_key(&sk);
        g.bench_with_input(BenchmarkId::new("encrypt", width), &width, |bch, _| {
            let mut r = StdRng::seed_from_u64(2);
            bch.iter(|| scheme.encrypt(&pk, &index, &msg, &mut r));
        });
        g.bench_with_input(
            BenchmarkId::new("encrypt_prepared", width),
            &width,
            |bch, _| {
                let mut r = StdRng::seed_from_u64(2);
                bch.iter(|| scheme.encrypt_prepared(&ppk, &index, &msg, &mut r));
            },
        );
        g.bench_with_input(BenchmarkId::new("gen_token", width), &width, |bch, _| {
            let mut r = StdRng::seed_from_u64(3);
            bch.iter(|| scheme.gen_token(&sk, &SearchPattern::from_symbols(&symbols), &mut r));
        });
        g.bench_with_input(
            BenchmarkId::new("gen_token_prepared", width),
            &width,
            |bch, _| {
                let mut r = StdRng::seed_from_u64(3);
                bch.iter(|| {
                    scheme.gen_token_prepared(&psk, &SearchPattern::from_symbols(&symbols), &mut r)
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("query", width), &width, |bch, _| {
            bch.iter(|| scheme.query(&token, &ct));
        });
    }
    g.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding");
    for n in [256usize, 1024, 4096] {
        let probs: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        g.bench_with_input(BenchmarkId::new("huffman_build", n), &n, |bch, _| {
            bch.iter(|| CellCodebook::build(EncoderKind::Huffman, &probs));
        });
        let cb = CellCodebook::build(EncoderKind::Huffman, &probs);
        let zone: Vec<usize> = (0..16).map(|i| (i * 37) % n).collect();
        g.bench_with_input(BenchmarkId::new("minimize_alg3", n), &n, |bch, _| {
            bch.iter(|| cb.tokens_for(&zone));
        });
        let fixed = CellCodebook::build(EncoderKind::BasicFixed, &probs);
        g.bench_with_input(BenchmarkId::new("minimize_qm", n), &n, |bch, _| {
            bch.iter(|| fixed.tokens_for(&zone));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_modular,
    bench_fixed_base,
    bench_hve_phases,
    bench_encoding
);
criterion_main!(benches);
