//! Times codebook initialization per grid size and encoder (the Fig. 14
//! quantity, measured properly under Criterion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sla_bench::common::sigmoid_probs;
use sla_bench::SEED;
use sla_encoding::{CellCodebook, EncoderKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_init");
    for side in [16usize, 32, 64] {
        let probs = sigmoid_probs(side * side, 0.95, 20.0, SEED);
        for kind in [
            EncoderKind::Huffman,
            EncoderKind::Balanced,
            EncoderKind::BasicFixed,
        ] {
            g.bench_with_input(
                BenchmarkId::new(kind.name(), format!("{side}x{side}")),
                &side,
                |b, _| b.iter(|| CellCodebook::build(kind, probs.raw())),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
