//! **Figure 11** — mixed workloads: W1 (90 % short / 10 % long) through
//! W4 (10 % / 90 %), short = 20 m, long = 300 m, for sigmoid
//! `(a, b) ∈ {(0.9, 100), (0.99, 100)}`; improvement vs \[14\].

use crate::common::sigmoid_probs;
use crate::fig09::sweep_encoders_with;
use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_core::metrics::WorkloadCost;
use sla_datasets::MixedWorkload;
use sla_encoding::EncoderKind;
use sla_grid::{Grid, ZoneSampler};

/// Result for one sigmoid configuration.
pub struct Fig11Panel {
    /// Sigmoid inflection.
    pub a: f64,
    /// Sigmoid gradient.
    pub b: f64,
    /// Mix labels (`W1`…`W4`).
    pub labels: Vec<String>,
    /// Costs indexed `[encoder][mix]`.
    pub costs: Vec<Vec<WorkloadCost>>,
    /// Encoder lineup.
    pub encoders: Vec<EncoderKind>,
}

impl Fig11Panel {
    /// Improvement of encoder `ei` over the basic baseline on mix `mi`.
    pub fn improvement(&self, ei: usize, mi: usize) -> f64 {
        let bi = self
            .encoders
            .iter()
            .position(|k| *k == EncoderKind::BasicFixed)
            .expect("baseline present");
        self.costs[ei][mi].improvement_vs(&self.costs[bi][mi])
    }
}

/// Runs both panels.
pub fn run(seed: u64, zones_per_mix: usize, n_ciphertexts: u64) -> Vec<Fig11Panel> {
    run_with(seed, zones_per_mix, n_ciphertexts, false)
}

/// [`run`] with the parallel-evaluation knob (`repro --parallel`).
pub fn run_with(
    seed: u64,
    zones_per_mix: usize,
    n_ciphertexts: u64,
    parallel: bool,
) -> Vec<Fig11Panel> {
    [(0.9, 100.0), (0.99, 100.0)]
        .iter()
        .map(|&(a, b)| run_panel_with(a, b, seed, zones_per_mix, n_ciphertexts, parallel))
        .collect()
}

/// Runs one sigmoid configuration.
pub fn run_panel(
    a: f64,
    b: f64,
    seed: u64,
    zones_per_mix: usize,
    n_ciphertexts: u64,
) -> Fig11Panel {
    run_panel_with(a, b, seed, zones_per_mix, n_ciphertexts, false)
}

/// [`run_panel`] with the parallel-evaluation knob.
pub fn run_panel_with(
    a: f64,
    b: f64,
    seed: u64,
    zones_per_mix: usize,
    n_ciphertexts: u64,
    parallel: bool,
) -> Fig11Panel {
    let grid = Grid::chicago_downtown_32();
    let probs = sigmoid_probs(grid.n_cells(), a, b, seed);
    let sampler = ZoneSampler::new(grid, &probs);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11f1 ^ ((a * 100.0) as u64));

    let mixes = MixedWorkload::paper_mixes(zones_per_mix);
    let workloads: Vec<_> = mixes
        .iter()
        .map(|m| m.generate(&sampler, &mut rng))
        .collect();

    // The (encoder × workload) cost grid is exactly fig09's sweep; reuse
    // it so the parallel path and its guards live in one place.
    let sweep = sweep_encoders_with(probs.raw(), &workloads, n_ciphertexts, parallel);
    Fig11Panel {
        a,
        b,
        labels: sweep.labels,
        costs: sweep.costs,
        encoders: sweep.encoders,
    }
}

/// Improvement table for one panel.
pub fn table_improvement(panel: &Fig11Panel) -> Table {
    let mut headers = vec!["workload".to_string()];
    headers.extend(
        panel
            .encoders
            .iter()
            .filter(|k| **k != EncoderKind::BasicFixed)
            .map(|k| format!("{}_impr_%", k.name())),
    );
    let mut t = Table::new(
        format!("Fig 11: mixed workloads, a={}, b={}", panel.a, panel.b),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (mi, label) in panel.labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        for (ei, k) in panel.encoders.iter().enumerate() {
            if *k == EncoderKind::BasicFixed {
                continue;
            }
            row.push(format!("{:.1}", panel.improvement(ei, mi)));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huffman_outperforms_sgo_on_compact_mixes() {
        // §7.2: "Our proposed technique outperforms SGO ... For
        // mostly-compact alert zones (W1), the improvement is much
        // higher". Our reproduction confirms this for the compact-
        // dominated mixes W1/W2; on long-dominated mixes (W3/W4) the
        // exact-QM fixed-length baselines aggregate large zones better
        // and overtake — a documented deviation (see EXPERIMENTS.md).
        let panel = run_panel(0.99, 100.0, 31, 200, 100);
        let hi = panel
            .encoders
            .iter()
            .position(|k| *k == EncoderKind::Huffman)
            .unwrap();
        let si = panel
            .encoders
            .iter()
            .position(|k| *k == EncoderKind::GraySgo)
            .unwrap();
        for mi in 0..2 {
            // W1, W2
            assert!(
                panel.improvement(hi, mi) >= panel.improvement(si, mi),
                "{}: huffman {:.1}% < sgo {:.1}%",
                panel.labels[mi],
                panel.improvement(hi, mi),
                panel.improvement(si, mi)
            );
        }
        // W1: strong absolute improvement over the [14] baseline (the
        // paper reports up to 40%).
        assert!(
            panel.improvement(hi, 0) > 15.0,
            "W1 improvement {:.1}% too small",
            panel.improvement(hi, 0)
        );
        // W1 (mostly short) gain exceeds W4 (mostly long) gain for Huffman.
        assert!(panel.improvement(hi, 0) > panel.improvement(hi, 3));
    }

    #[test]
    fn both_panels_run() {
        let panels = run(31, 20, 50);
        assert_eq!(panels.len(), 2);
        for p in &panels {
            assert_eq!(p.labels, vec!["W1", "W2", "W3", "W4"]);
            let t = table_improvement(p);
            assert_eq!(t.rows.len(), 4);
        }
    }
}
