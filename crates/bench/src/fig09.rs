//! **Figure 9** — evaluation on the (synthetic stand-in) Chicago crime
//! dataset: absolute pairing operations and percentage improvement over
//! the basic fixed-length scheme \[14\], as a function of the alert-zone
//! radius, for Huffman, SGO (gray), and balanced-tree encodings.

use crate::common::zones_to_cells;
use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_core::metrics::{evaluate_workload, WorkloadCost};
use sla_datasets::{
    CrimeDataset, CrimeGeneratorConfig, CrimeRiskModel, RadiusSweep, TrainConfig, Workload,
};
use sla_encoding::{CellCodebook, EncoderKind};
use sla_grid::{Grid, ZoneSampler};

/// One (radius × encoder) measurement grid.
pub struct SweepResult {
    /// Workload labels (one per radius).
    pub labels: Vec<String>,
    /// Mean zone size (cells) per radius.
    pub mean_cells: Vec<f64>,
    /// Costs indexed `[encoder][radius]`.
    pub costs: Vec<Vec<WorkloadCost>>,
    /// Encoder lineup (same order as `costs`).
    pub encoders: Vec<EncoderKind>,
}

impl SweepResult {
    /// Index of the baseline (\[14\]) in the lineup.
    pub fn baseline_idx(&self) -> usize {
        self.encoders
            .iter()
            .position(|k| *k == EncoderKind::BasicFixed)
            .expect("lineup includes the basic baseline")
    }

    /// Improvement (%) of `encoder` over the baseline at `radius_idx`.
    pub fn improvement(&self, encoder_idx: usize, radius_idx: usize) -> f64 {
        let base = &self.costs[self.baseline_idx()][radius_idx];
        self.costs[encoder_idx][radius_idx].improvement_vs(base)
    }
}

/// Evaluates the paper's encoder lineup on a shared workload sweep.
pub fn sweep_encoders(probs: &[f64], workloads: &[Workload], n_ciphertexts: u64) -> SweepResult {
    sweep_encoders_with(probs, workloads, n_ciphertexts, false)
}

/// Like [`sweep_encoders`], with an explicit parallelism knob: when
/// `parallel` is set, codebook construction and the (encoder × workload)
/// cost grid are evaluated with rayon. Results are identical either way —
/// parallel evaluation preserves ordering.
pub fn sweep_encoders_with(
    probs: &[f64],
    workloads: &[Workload],
    n_ciphertexts: u64,
    parallel: bool,
) -> SweepResult {
    let encoders = EncoderKind::paper_lineup();
    let codebooks: Vec<CellCodebook> = if parallel {
        use rayon::prelude::*;
        encoders
            .par_iter()
            .map(|&k| CellCodebook::build(k, probs))
            .collect()
    } else {
        encoders
            .iter()
            .map(|&k| CellCodebook::build(k, probs))
            .collect()
    };
    let eval = |cb: &CellCodebook, w: &Workload| {
        evaluate_workload(cb, &w.label, &zones_to_cells(w), n_ciphertexts)
    };
    let costs: Vec<Vec<WorkloadCost>> = if workloads.is_empty() {
        // chunks(0) below would panic; an empty sweep has an empty cost
        // row per encoder on both paths.
        codebooks.iter().map(|_| Vec::new()).collect()
    } else if parallel {
        use rayon::prelude::*;
        // Flatten the (encoder × workload) grid so every cell is an
        // independent parallel task, then regroup per encoder.
        let pairs: Vec<(usize, &Workload)> = codebooks
            .iter()
            .enumerate()
            .flat_map(|(ci, _)| workloads.iter().map(move |w| (ci, w)))
            .collect();
        let flat: Vec<WorkloadCost> = pairs
            .par_iter()
            .map(|&(ci, w)| eval(&codebooks[ci], w))
            .collect();
        flat.chunks(workloads.len()).map(<[_]>::to_vec).collect()
    } else {
        codebooks
            .iter()
            .map(|cb| workloads.iter().map(|w| eval(cb, w)).collect())
            .collect()
    };
    SweepResult {
        labels: workloads.iter().map(|w| w.label.clone()).collect(),
        mean_cells: workloads.iter().map(|w| w.mean_zone_cells()).collect(),
        costs,
        encoders,
    }
}

/// Runs the full Fig. 9 pipeline.
pub fn run(seed: u64, zones_per_radius: usize, n_ciphertexts: u64) -> SweepResult {
    run_with(seed, zones_per_radius, n_ciphertexts, false)
}

/// [`run`] with the parallel-evaluation knob (`repro --parallel`).
pub fn run_with(
    seed: u64,
    zones_per_radius: usize,
    n_ciphertexts: u64,
    parallel: bool,
) -> SweepResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = CrimeDataset::generate(&CrimeGeneratorConfig::default(), &mut rng);
    let grid = Grid::chicago_downtown_32();
    let model = CrimeRiskModel::train(&dataset, &grid, TrainConfig::default());
    let probs = model.likelihood_map();

    let sampler = ZoneSampler::new(grid, &probs);
    let sweep = RadiusSweep {
        zones_per_radius,
        ..RadiusSweep::default()
    };
    let workloads = sweep.generate(&sampler, &mut rng);
    sweep_encoders_with(&probs.normalized(), &workloads, n_ciphertexts, parallel)
}

/// Absolute pairing counts table (Fig. 9a).
pub fn table_absolute(result: &SweepResult, title: &str) -> Table {
    let mut headers = vec!["radius".to_string(), "mean_cells".to_string()];
    headers.extend(result.encoders.iter().map(|k| k.name()));
    let mut t = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (ri, label) in result.labels.iter().enumerate() {
        let mut row = vec![label.clone(), format!("{:.1}", result.mean_cells[ri])];
        for (ei, _) in result.encoders.iter().enumerate() {
            row.push(result.costs[ei][ri].pairings.to_string());
        }
        t.push_row(row);
    }
    t
}

/// Improvement-over-basic table (Fig. 9b).
pub fn table_improvement(result: &SweepResult, title: &str) -> Table {
    let mut headers = vec!["radius".to_string()];
    headers.extend(
        result
            .encoders
            .iter()
            .filter(|k| **k != EncoderKind::BasicFixed)
            .map(|k| format!("{}_impr_%", k.name())),
    );
    let mut t = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (ri, label) in result.labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        for (ei, k) in result.encoders.iter().enumerate() {
            if *k == EncoderKind::BasicFixed {
                continue;
            }
            row.push(format!("{:.1}", result.improvement(ei, ri)));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huffman_wins_at_small_radii() {
        // The paper's headline: for compact zones, Huffman beats SGO and
        // the balanced tree; SGO provides little at small radii.
        let result = run(99, 20, 1_000);
        let hi = result
            .encoders
            .iter()
            .position(|k| *k == EncoderKind::Huffman)
            .unwrap();
        let si = result
            .encoders
            .iter()
            .position(|k| *k == EncoderKind::GraySgo)
            .unwrap();
        // smallest radius (20 m): Huffman improvement must be positive and
        // beat SGO's.
        let h0 = result.improvement(hi, 0);
        let s0 = result.improvement(si, 0);
        assert!(h0 > 0.0, "huffman improvement at 20m: {h0:.1}%");
        assert!(h0 > s0, "huffman {h0:.1}% should beat sgo {s0:.1}% at 20m");
    }

    #[test]
    fn empty_workload_sweep_is_empty_on_both_paths() {
        for parallel in [false, true] {
            let result = sweep_encoders_with(&[0.5, 0.5], &[], 100, parallel);
            assert!(result.labels.is_empty());
            assert!(
                result.costs.iter().all(Vec::is_empty),
                "parallel={parallel}"
            );
        }
    }

    #[test]
    fn tables_well_formed() {
        let result = run(99, 5, 100);
        let abs = table_absolute(&result, "fig9a");
        let imp = table_improvement(&result, "fig9b");
        assert_eq!(abs.rows.len(), result.labels.len());
        assert_eq!(imp.rows.len(), result.labels.len());
        assert_eq!(abs.headers.len(), 2 + result.encoders.len());
    }
}
