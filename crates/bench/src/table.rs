//! Minimal table rendering + CSV output shared by the experiments.

use std::fmt::Write as _;
use std::path::Path;

/// A rectangular results table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (figure id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// CSV serialization.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV under `dir` with the given file stem.
    pub fn write_csv(&self, dir: &Path, stem: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["10".into(), "20".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("10  20"));
        assert_eq!(t.to_csv(), "x,y\n1,2\n10,20\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_row(vec!["1".into()]);
    }
}
