//! **Figure 13** — ratio of average to maximum Huffman code length for
//! various grid sizes (`a = 0.95`, `b = 20`), the paper's explanation for
//! why the small-zone improvement shrinks at high granularity.

use crate::common::sigmoid_probs;
use crate::table::Table;
use sla_encoding::huffman::build_huffman_tree;
use sla_encoding::theory::{code_length_stats, CodeLengthStats};

/// One grid-size measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Grid side (side×side cells).
    pub side: usize,
    /// Code-length statistics of the Huffman tree.
    pub stats: CodeLengthStats,
}

/// Grid sides evaluated (8×8 … 128×128).
pub const SIDES: [usize; 5] = [8, 16, 32, 64, 128];

/// Runs the sweep.
pub fn run(seed: u64) -> Vec<Fig13Row> {
    SIDES
        .iter()
        .map(|&side| {
            let probs = sigmoid_probs(side * side, 0.95, 20.0, seed);
            let tree = build_huffman_tree(&probs.normalized());
            Fig13Row {
                side,
                stats: code_length_stats(&tree),
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Fig13Row]) -> Table {
    let mut t = Table::new(
        "Fig 13: average-to-maximum code length ratio (sigmoid a=0.95, b=20)",
        &[
            "grid",
            "n",
            "mean_len",
            "max_len(RL)",
            "avg_to_max",
            "weighted_avg",
        ],
    );
    for r in rows {
        t.push_row(vec![
            format!("{0}x{0}", r.side),
            (r.side * r.side).to_string(),
            format!("{:.2}", r.stats.mean),
            r.stats.max.to_string(),
            format!("{:.3}", r.stats.avg_to_max_ratio),
            format!("{:.2}", r.stats.weighted_average),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_grows_with_grid_size() {
        let rows = run(13);
        for w in rows.windows(2) {
            assert!(
                w[1].stats.max >= w[0].stats.max,
                "RL should grow: {}x{} -> {}x{}",
                w[0].side,
                w[0].side,
                w[1].side,
                w[1].side
            );
        }
        // Ratio stays strictly inside (0, 1): trees are skewed at every
        // size (the paper's premise for deterministic minimization).
        for r in &rows {
            assert!(r.stats.avg_to_max_ratio > 0.0 && r.stats.avg_to_max_ratio < 1.0);
        }
    }

    #[test]
    fn table_shape() {
        let rows = run(13);
        assert_eq!(table(&rows).rows.len(), SIDES.len());
    }
}
