//! Primitive-operation timings: the data behind `BENCH_primitives.json`.
//!
//! Measures the modular building blocks every HVE phase bottoms out in —
//! `mod_mul`, `mod_pow` (naive division-based vs Montgomery fast path)
//! and the simulated `pair` — so the performance trajectory of the
//! arithmetic layer is tracked across PRs as a machine-readable artifact.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_bigint::{gen_prime, BigUint, MontgomeryCtx};
use sla_pairing::{BilinearGroup, SimulatedGroup};
use std::time::Instant;

/// Timings (ns/op medians) for one modulus size.
#[derive(Debug, Clone)]
pub struct PrimitiveTimings {
    /// Bit length of the composite modulus `N = P·Q`.
    pub modulus_bits: usize,
    /// `(a·b) mod N` via multiply + Knuth division.
    pub mod_mul_naive_ns: f64,
    /// `(a·b) mod N` via the Montgomery context.
    pub mod_mul_mont_ns: f64,
    /// `a^e mod N` via square-and-multiply with division per step.
    pub mod_pow_naive_ns: f64,
    /// `a^e mod N` via the windowed Montgomery ladder (what
    /// `BigUint::mod_pow` now dispatches to for odd moduli).
    pub mod_pow_mont_ns: f64,
    /// One simulated pairing on a `SimulatedGroup` of this order.
    pub pairing_ns: f64,
}

impl PrimitiveTimings {
    /// Montgomery-vs-naive speedup on `mod_pow`.
    pub fn mod_pow_speedup(&self) -> f64 {
        self.mod_pow_naive_ns / self.mod_pow_mont_ns
    }

    /// Montgomery-vs-naive speedup on `mod_mul`.
    pub fn mod_mul_speedup(&self) -> f64 {
        self.mod_mul_naive_ns / self.mod_mul_mont_ns
    }
}

/// Median ns/op of `f` over `iters` iterations, with warmup.
fn time_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let samples = 5;
    let mut medians = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        medians.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    medians[samples / 2]
}

/// Measures all primitives for a group whose prime factors have
/// `prime_bits` bits (modulus `N` has `2·prime_bits` bits).
pub fn measure(prime_bits: usize, seed: u64) -> PrimitiveTimings {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = gen_prime(prime_bits, &mut rng);
    let q = gen_prime(prime_bits, &mut rng);
    let n = &p * &q;
    let ctx = MontgomeryCtx::new(&n).expect("N = P·Q is odd");

    // Full-width reduced operands — group elements occupy all of [0, N).
    let a = &n - &BigUint::from_u64(12345);
    let b = &n - &BigUint::from_u64(6789);
    let e = &n - &BigUint::from_u64(2); // full-length exponent

    let mod_mul_naive_ns = time_ns(2_000, || a.mod_mul(&b, &n));
    let mod_mul_mont_ns = time_ns(2_000, || ctx.mod_mul(&a, &b));
    let mod_pow_naive_ns = time_ns(50, || a.mod_pow_naive(&e, &n));
    let mod_pow_mont_ns = time_ns(50, || a.mod_pow(&e, &n));

    let group = SimulatedGroup::new(sla_pairing::GroupParams::from_factors(p, q));
    let x = group.random_gp(&mut rng);
    let y = group.random_gp(&mut rng);
    let pairing_ns = time_ns(2_000, || group.pair(&x, &y));

    PrimitiveTimings {
        modulus_bits: n.bit_len(),
        mod_mul_naive_ns,
        mod_mul_mont_ns,
        mod_pow_naive_ns,
        mod_pow_mont_ns,
        pairing_ns,
    }
}

/// Renders the timing series as the `BENCH_primitives.json` artifact.
pub fn to_json(rows: &[PrimitiveTimings]) -> String {
    let mut out = String::from("{\n  \"schema\": \"sla-bench/primitives/v1\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"modulus_bits\": {}, \"mod_mul_naive_ns\": {:.1}, \"mod_mul_mont_ns\": {:.1}, \
             \"mod_pow_naive_ns\": {:.1}, \"mod_pow_mont_ns\": {:.1}, \"pairing_ns\": {:.1}, \
             \"mod_mul_speedup\": {:.2}, \"mod_pow_speedup\": {:.2}}}{}\n",
            r.modulus_bits,
            r.mod_mul_naive_ns,
            r.mod_mul_mont_ns,
            r.mod_pow_naive_ns,
            r.mod_pow_mont_ns,
            r.pairing_ns,
            r.mod_mul_speedup(),
            r.mod_pow_speedup(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_numbers() {
        let t = measure(32, 7);
        assert_eq!(t.modulus_bits, 64);
        for v in [
            t.mod_mul_naive_ns,
            t.mod_mul_mont_ns,
            t.mod_pow_naive_ns,
            t.mod_pow_mont_ns,
            t.pairing_ns,
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
        let json = to_json(&[t]);
        assert!(json.contains("\"modulus_bits\": 64"));
        assert!(json.contains("mod_pow_speedup"));
    }
}
