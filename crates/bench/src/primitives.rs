//! Primitive-operation timings: the data behind `BENCH_primitives.json`.
//!
//! Measures the modular building blocks every HVE phase bottoms out in —
//! `mod_mul`, `mod_pow` (naive division-based vs Montgomery vs fixed-base
//! table) and the simulated `pair` — plus the HVE phases themselves
//! (Setup / Encrypt / GenToken, plain and prepared), so the performance
//! trajectory of the arithmetic layer is tracked across PRs as a
//! machine-readable artifact.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_bigint::{gen_prime, BigUint, FixedBaseTable, MontgomeryCtx, Reducer};
use sla_core::{
    ConcurrentShardedStore, ConcurrentSubscriptionStore, FlushPolicy, PersistentStore,
    ShardedStore, StoredSubscription, SubscriptionStore, VecStore,
};
use sla_hve::{AttributeVector, HveScheme, SearchPattern};
use sla_pairing::{BilinearGroup, SimulatedGroup};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timings (ns/op medians) for one modulus size.
#[derive(Debug, Clone)]
pub struct PrimitiveTimings {
    /// Bit length of the composite modulus `N = P·Q`.
    pub modulus_bits: usize,
    /// `(a·b) mod N` via multiply + Knuth division.
    pub mod_mul_naive_ns: f64,
    /// `(a·b) mod N` via the Montgomery context.
    pub mod_mul_mont_ns: f64,
    /// `a^e mod N` via square-and-multiply with division per step.
    pub mod_pow_naive_ns: f64,
    /// `a^e mod N` via the windowed Montgomery ladder (what
    /// `BigUint::mod_pow` dispatches to for odd moduli).
    pub mod_pow_mont_ns: f64,
    /// `a^e mod N` via a per-base [`FixedBaseTable`] (the repeated-base
    /// regime of Setup/Encrypt/GenToken).
    pub mod_pow_fixed_ns: f64,
    /// One simulated pairing on a `SimulatedGroup` of this order (a single
    /// residue-domain product under the Montgomery representation).
    pub pairing_ns: f64,
}

impl PrimitiveTimings {
    /// Montgomery-vs-naive speedup on `mod_pow`.
    pub fn mod_pow_speedup(&self) -> f64 {
        self.mod_pow_naive_ns / self.mod_pow_mont_ns
    }

    /// Montgomery-vs-naive speedup on `mod_mul`.
    pub fn mod_mul_speedup(&self) -> f64 {
        self.mod_mul_naive_ns / self.mod_mul_mont_ns
    }

    /// Fixed-base-table-vs-generic-Montgomery speedup on `mod_pow`.
    pub fn fixed_base_speedup(&self) -> f64 {
        self.mod_pow_mont_ns / self.mod_pow_fixed_ns
    }
}

/// Lockstep batch-multiplication timings (ns **per product**, medians)
/// for one (modulus size, batch width) — the `lockstep` rows of
/// `BENCH_primitives.json`. Serial drives each product one at a time
/// through the active single-op kernel; lockstep hands the whole batch
/// to `MontgomeryCtx::mont_mul_batch`, which advances four products per
/// instruction through the SoA SIMD kernels. Both paths are
/// byte-identical by the kernel contract, so the delta is pure
/// throughput.
#[derive(Debug, Clone)]
pub struct LockstepTimings {
    /// Bit length of the composite modulus `N = P·Q`.
    pub modulus_bits: usize,
    /// Number of independent products per batch call.
    pub batch: usize,
    /// Active kernel name (`scalar`, `portable`, `avx2`, `neon`) — what
    /// `SLA_SIMD`/runtime detection resolved to during the measurement.
    pub kernel: &'static str,
    /// ns per product, one `mont_mul` at a time.
    pub serial_ns: f64,
    /// ns per product through `mont_mul_batch`.
    pub lockstep_ns: f64,
}

impl LockstepTimings {
    /// Lockstep-vs-serial speedup per product.
    pub fn speedup(&self) -> f64 {
        self.serial_ns / self.lockstep_ns
    }
}

/// Measures serial vs lockstep Montgomery products for a modulus with
/// `prime_bits`-bit factors at each batch width in `batch_widths`.
pub fn measure_lockstep(
    prime_bits: usize,
    batch_widths: &[usize],
    seed: u64,
) -> Vec<LockstepTimings> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10c5);
    let p = gen_prime(prime_bits, &mut rng);
    let q = gen_prime(prime_bits, &mut rng);
    let n = &p * &q;
    let ctx = MontgomeryCtx::new(&n).expect("N = P·Q is odd");
    let kernel = ctx.kernel().name();

    // Full-width residue-domain operands, as the pairing engine holds.
    let elems: Vec<BigUint> = (1..=16u64)
        .map(|i| ctx.to_mont(&(&n - &BigUint::from_u64(i * 977 + 5))))
        .collect();

    batch_widths
        .iter()
        .map(|&w| {
            let width = w.max(1);
            let pairs: Vec<(&BigUint, &BigUint)> = (0..width)
                .map(|i| (&elems[i % elems.len()], &elems[(i * 5 + 3) % elems.len()]))
                .collect();
            let iters = (4_000 / width).max(500);
            let serial_ns = time_ns(iters, || {
                pairs
                    .iter()
                    .map(|(a, b)| ctx.mont_mul(a, b))
                    .collect::<Vec<_>>()
            }) / width as f64;
            let lockstep_ns = time_ns(iters, || ctx.mont_mul_batch(&pairs)) / width as f64;
            LockstepTimings {
                modulus_bits: n.bit_len(),
                batch: width,
                kernel,
                serial_ns,
                lockstep_ns,
            }
        })
        .collect()
}

/// End-to-end lockstep-exponentiation timings (ns **per operation**,
/// medians) for one HVE phase at one (modulus size, batch width) — the
/// `exp_batch` rows of `BENCH_primitives.json`. Serial drives the
/// prepared path one call at a time; batch hands the whole slice to
/// `encrypt_prepared_batch` / `gen_token_prepared_batch`, whose
/// exponentiations run as 4/8-wide lockstep ladders through the SIMD
/// kernels. Both paths are byte-identical against the same RNG, so the
/// delta is pure throughput.
#[derive(Debug, Clone)]
pub struct ExpBatchTimings {
    /// `"encrypt"` or `"gen_token"`.
    pub phase: &'static str,
    /// Bit length of the composite modulus `N = P·Q`.
    pub modulus_bits: usize,
    /// HVE width `l`.
    pub width: usize,
    /// Items per batch call.
    pub batch: usize,
    /// Active kernel name during the measurement.
    pub kernel: &'static str,
    /// ns per operation through the serial prepared path.
    pub serial_ns: f64,
    /// ns per operation through the batch entry point.
    pub batch_ns: f64,
}

impl ExpBatchTimings {
    /// Batch-vs-serial speedup per operation.
    pub fn speedup(&self) -> f64 {
        self.serial_ns / self.batch_ns
    }
}

/// Measures serial vs batched prepared Encrypt/GenToken for a modulus
/// with `prime_bits`-bit factors at each batch width in `batch_widths`
/// (HVE width 16, a mid-range codebook).
pub fn measure_exp_batch(
    prime_bits: usize,
    batch_widths: &[usize],
    seed: u64,
) -> Vec<ExpBatchTimings> {
    let width = 16usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xeb47);
    let p = gen_prime(prime_bits, &mut rng);
    let q = gen_prime(prime_bits, &mut rng);
    let n = &p * &q;
    let kernel = MontgomeryCtx::new(&n)
        .expect("N = P·Q is odd")
        .kernel()
        .name();
    let group = SimulatedGroup::new(sla_pairing::GroupParams::from_factors(p, q));
    let scheme = HveScheme::new(&group, width);
    let (pk, sk) = scheme.setup(&mut rng);
    let ppk = scheme.prepare_public_key(&pk);
    let psk = scheme.prepare_secret_key(&sk);

    let indexes: Vec<AttributeVector> = (0..16usize)
        .map(|i| {
            AttributeVector::from_bits(&(0..width).map(|j| (i + j) % 3 == 0).collect::<Vec<_>>())
        })
        .collect();
    let msgs: Vec<sla_pairing::GtElem> = (0..16u64).map(|i| scheme.encode_message(i)).collect();
    let patterns: Vec<SearchPattern> = (0..16usize)
        .map(|i| {
            let symbols: Vec<Option<bool>> = (0..width)
                .map(|j| ((i + j) % 2 == 0).then_some((i + j) % 3 == 0))
                .collect();
            SearchPattern::from_symbols(&symbols)
        })
        .collect();

    let mut out = Vec::new();
    for &w in batch_widths {
        let w = w.max(1);
        let enc_items: Vec<(&AttributeVector, &sla_pairing::GtElem)> = (0..w)
            .map(|i| (&indexes[i % indexes.len()], &msgs[i % msgs.len()]))
            .collect();
        let pats: Vec<&SearchPattern> = (0..w).map(|i| &patterns[i % patterns.len()]).collect();
        let iters = (60 / w).max(8);

        let serial_ns = time_ns(iters, || {
            enc_items
                .iter()
                .map(|(idx, msg)| scheme.encrypt_prepared(&ppk, idx, msg, &mut rng))
                .collect::<Vec<_>>()
        }) / w as f64;
        let batch_ns = time_ns(iters, || {
            scheme.encrypt_prepared_batch(&ppk, &enc_items, &mut rng)
        }) / w as f64;
        out.push(ExpBatchTimings {
            phase: "encrypt",
            modulus_bits: n.bit_len(),
            width,
            batch: w,
            kernel,
            serial_ns,
            batch_ns,
        });

        let serial_ns = time_ns(iters, || {
            pats.iter()
                .map(|pat| scheme.gen_token_prepared(&psk, pat, &mut rng))
                .collect::<Vec<_>>()
        }) / w as f64;
        let batch_ns = time_ns(iters, || {
            scheme.gen_token_prepared_batch(&psk, &pats, &mut rng)
        }) / w as f64;
        out.push(ExpBatchTimings {
            phase: "gen_token",
            modulus_bits: n.bit_len(),
            width,
            batch: w,
            kernel,
            serial_ns,
            batch_ns,
        });
    }
    out
}

/// Timings (ns/op medians) for the HVE phases at one (modulus, width).
#[derive(Debug, Clone)]
pub struct PhaseTimings {
    /// Bit length of the composite modulus `N = P·Q`.
    pub modulus_bits: usize,
    /// HVE width `l`.
    pub width: usize,
    /// **Setup**: one `(PK, SK)` generation.
    pub setup_ns: f64,
    /// Building the fixed-base tables for both keys (amortized once per
    /// key over every later Encrypt/GenToken).
    pub prepare_ns: f64,
    /// **Encrypt** through the plain key.
    pub encrypt_ns: f64,
    /// **Encrypt** through the prepared key's tables.
    pub encrypt_prepared_ns: f64,
    /// **GenToken** through the plain key.
    pub gen_token_ns: f64,
    /// **GenToken** through the prepared key's tables.
    pub gen_token_prepared_ns: f64,
    /// **Query** per (token, ciphertext) pair via per-pair
    /// `query_decode`: one canonical conversion per pair, match or not.
    pub query_decode_ns: f64,
    /// **QueryBatch** per pair via `query_decode_batch`: the match
    /// decision stays in the Montgomery residue domain and the canonical
    /// conversion is paid only on match (measured on a mostly
    /// non-matching pool — the exhaustive-matching regime).
    pub query_batch_ns: f64,
}

impl PhaseTimings {
    /// Prepared-vs-plain speedup on Encrypt.
    pub fn encrypt_speedup(&self) -> f64 {
        self.encrypt_ns / self.encrypt_prepared_ns
    }

    /// Prepared-vs-plain speedup on GenToken.
    pub fn gen_token_speedup(&self) -> f64 {
        self.gen_token_ns / self.gen_token_prepared_ns
    }

    /// Residue-domain-batch-vs-per-pair speedup on Query.
    pub fn query_speedup(&self) -> f64 {
        self.query_decode_ns / self.query_batch_ns
    }
}

/// Median ns/op of `f` over `iters` iterations, with warmup.
fn time_ns<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let samples = 5;
    let mut medians = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        medians.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    medians[samples / 2]
}

/// Measures all primitives for a group whose prime factors have
/// `prime_bits` bits (modulus `N` has `2·prime_bits` bits).
pub fn measure(prime_bits: usize, seed: u64) -> PrimitiveTimings {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = gen_prime(prime_bits, &mut rng);
    let q = gen_prime(prime_bits, &mut rng);
    let n = &p * &q;
    let ctx = MontgomeryCtx::new(&n).expect("N = P·Q is odd");

    // Full-width reduced operands — group elements occupy all of [0, N).
    let a = &n - &BigUint::from_u64(12345);
    let b = &n - &BigUint::from_u64(6789);
    let e = &n - &BigUint::from_u64(2); // full-length exponent

    let reducer = Arc::new(Reducer::new(&n).expect("N > 1"));
    let table = FixedBaseTable::with_default_window(reducer, &a, n.bit_len());

    let mod_mul_naive_ns = time_ns(2_000, || a.mod_mul(&b, &n));
    let mod_mul_mont_ns = time_ns(2_000, || ctx.mod_mul(&a, &b));
    let mod_pow_naive_ns = time_ns(50, || a.mod_pow_naive(&e, &n));
    let mod_pow_mont_ns = time_ns(50, || a.mod_pow(&e, &n));
    let mod_pow_fixed_ns = time_ns(200, || table.pow(&e));

    let group = SimulatedGroup::new(sla_pairing::GroupParams::from_factors(p, q));
    let x = group.random_gp(&mut rng);
    let y = group.random_gp(&mut rng);
    let pairing_ns = time_ns(2_000, || group.pair(&x, &y));

    PrimitiveTimings {
        modulus_bits: n.bit_len(),
        mod_mul_naive_ns,
        mod_mul_mont_ns,
        mod_pow_naive_ns,
        mod_pow_mont_ns,
        mod_pow_fixed_ns,
        pairing_ns,
    }
}

/// Measures the HVE phases (plain vs prepared) for a group with
/// `prime_bits`-bit factors at HVE width `width`.
pub fn measure_phases(prime_bits: usize, width: usize, seed: u64) -> PhaseTimings {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let group = SimulatedGroup::generate(prime_bits, &mut rng);
    let scheme = HveScheme::new(&group, width);

    let setup_ns = time_ns(10, || scheme.setup(&mut rng));
    let (pk, sk) = scheme.setup(&mut rng);
    let prepare_ns = time_ns(10, || {
        (
            scheme.prepare_public_key(&pk),
            scheme.prepare_secret_key(&sk),
        )
    });
    let ppk = scheme.prepare_public_key(&pk);
    let psk = scheme.prepare_secret_key(&sk);

    let bits: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
    let index = AttributeVector::from_bits(&bits);
    let msg = scheme.encode_message(7);
    let symbols: Vec<Option<bool>> = bits
        .iter()
        .enumerate()
        .map(|(i, &b)| if i % 2 == 0 { Some(b) } else { None })
        .collect();
    let pattern = SearchPattern::from_symbols(&symbols);

    let encrypt_ns = time_ns(40, || scheme.encrypt(&pk, &index, &msg, &mut rng));
    let encrypt_prepared_ns = time_ns(40, || scheme.encrypt_prepared(&ppk, &index, &msg, &mut rng));
    let gen_token_ns = time_ns(40, || scheme.gen_token(&sk, &pattern, &mut rng));
    let gen_token_prepared_ns = time_ns(40, || scheme.gen_token_prepared(&psk, &pattern, &mut rng));

    // Query: one token against a pool of 16 (ciphertext, expected
    // payload) pairs with a single match — the exhaustive-matching
    // regime, where almost every pair is ⊥. The per-pair path converts
    // every candidate out of the residue domain; the batch path decides
    // in-domain and converts on match only.
    let token = scheme.gen_token(&sk, &pattern, &mut rng);
    let pool: Vec<(sla_hve::Ciphertext, sla_pairing::GtElem)> = (0..16u64)
        .map(|i| {
            let pool_bits: Vec<bool> = if i == 0 {
                bits.clone()
            } else {
                // Flip a non-star position so the token misses.
                bits.iter().map(|b| !b).collect()
            };
            let pool_index = AttributeVector::from_bits(&pool_bits);
            let pool_msg = scheme.encode_message(i + 1);
            let ct = scheme.encrypt(&pk, &pool_index, &pool_msg, &mut rng);
            (ct, pool_msg)
        })
        .collect();
    let per_pair = pool.len() as f64;
    let query_decode_ns = time_ns(10, || {
        pool.iter()
            .map(|(ct, _)| scheme.query_decode(&token, ct))
            .collect::<Vec<_>>()
    }) / per_pair;
    let query_batch_ns = time_ns(10, || {
        scheme.query_decode_batch(&token, pool.iter().map(|(ct, msg)| (ct, msg)))
    }) / per_pair;

    PhaseTimings {
        modulus_bits: group.params().order_bits(),
        width,
        setup_ns,
        prepare_ns,
        encrypt_ns,
        encrypt_prepared_ns,
        gen_token_ns,
        gen_token_prepared_ns,
        query_decode_ns,
        query_batch_ns,
    }
}

/// Store-lifecycle timings (ns/op medians) for one store backend — the
/// `churn` rows of `BENCH_primitives.json`. Measured at the store seam
/// (pre-encrypted records), so the deltas isolate what each backend
/// itself costs: the persistent rows show the WAL append (group-commit
/// vs per-op fsync) that durability adds to mutations, and that
/// **matching cost is unchanged** (reads never touch the log).
#[derive(Debug, Clone)]
pub struct ChurnTimings {
    /// Backend label (`contiguous`, `sharded8`, `concurrent8`,
    /// `persistent`, `persistent_fsync`, `persistent_sharded` — the
    /// last measured under four concurrent writers).
    pub backend: &'static str,
    /// Store population during the measurement.
    pub users: usize,
    /// Re-subscribe (replace) one existing record.
    pub upsert_ns: f64,
    /// One unsubscribe + fresh subscribe cycle.
    pub remove_insert_ns: f64,
    /// One full-store token evaluation, per record.
    pub match_per_record_ns: f64,
}

/// A store under measurement: exclusive (`&mut self`) and concurrent
/// (`&self`) backends behind one face.
enum BenchStore {
    Exclusive(Box<dyn SubscriptionStore>),
    Concurrent(Box<dyn ConcurrentSubscriptionStore>),
}

impl BenchStore {
    fn upsert(&mut self, record: StoredSubscription) {
        match self {
            BenchStore::Exclusive(s) => {
                s.upsert(record);
            }
            BenchStore::Concurrent(s) => {
                s.upsert(record);
            }
        }
    }

    fn remove(&mut self, user_id: u64) -> bool {
        match self {
            BenchStore::Exclusive(s) => s.remove(user_id),
            BenchStore::Concurrent(s) => s.remove(user_id),
        }
    }

    /// Evaluates `token` against every stored record, returning the
    /// match count (a live data dependency so the loop cannot be
    /// optimized away).
    fn match_all<G: BilinearGroup>(
        &self,
        scheme: &HveScheme<'_, G>,
        token: &sla_hve::Token,
    ) -> usize {
        let mut hits = 0;
        let mut scan = |records: &[StoredSubscription]| {
            for r in records {
                if scheme.match_token(token, &r.ciphertext, &r.expected) {
                    hits += 1;
                }
            }
        };
        match self {
            BenchStore::Exclusive(s) => {
                for shard in s.shards() {
                    scan(shard);
                }
            }
            BenchStore::Concurrent(s) => {
                for shard in 0..s.shard_count() {
                    s.read_shard(shard, &mut scan);
                }
            }
        }
        hits
    }
}

/// Measures the subscription-lifecycle cost of every store backend,
/// including the persistent (WAL-backed) one under group commit and
/// under per-op fsync. Scratch directories live under the OS temp dir
/// and are removed before returning.
pub fn measure_churn(seed: u64) -> Vec<ChurnTimings> {
    const USERS: u64 = 256;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc44c);
    let group = SimulatedGroup::generate(32, &mut rng);
    let scheme = HveScheme::new(&group, 4);
    let (pk, sk) = scheme.setup(&mut rng);
    let index: AttributeVector = "1010".parse().expect("valid bits");
    let expected = scheme.encode_message(1);
    let ct = scheme.encrypt(&pk, &index, &expected, &mut rng);
    let token = scheme.gen_token(&sk, &"1**0".parse().expect("valid pattern"), &mut rng);
    let record = |user_id: u64| StoredSubscription {
        user_id,
        ciphertext: ct.clone(),
        expected: expected.clone(),
        epoch: 0,
    };

    let tmp_base =
        std::env::temp_dir().join(format!("sla-bench-churn-{}-{seed:x}", std::process::id()));
    let persistent = |name: &str, flush: FlushPolicy| {
        let dir = tmp_base.join(name);
        BenchStore::Concurrent(Box::new(
            PersistentStore::open(&dir, flush).expect("scratch dir is writable"),
        ))
    };

    let backends: Vec<(&'static str, BenchStore)> = vec![
        (
            "contiguous",
            BenchStore::Exclusive(Box::new(VecStore::new())),
        ),
        (
            "sharded8",
            BenchStore::Exclusive(Box::new(ShardedStore::new(8))),
        ),
        (
            "concurrent8",
            BenchStore::Concurrent(Box::new(ConcurrentShardedStore::new(8))),
        ),
        (
            "persistent",
            persistent("grouped", FlushPolicy::Every(Duration::from_millis(5))),
        ),
        (
            "persistent_fsync",
            persistent("fsync", FlushPolicy::EveryOp),
        ),
    ];

    let mut out = Vec::with_capacity(backends.len());
    for (name, mut store) in backends {
        for user in 0..USERS {
            store.upsert(record(user));
        }
        let mut cursor = 0u64;
        let upsert_ns = time_ns(256, || {
            cursor = (cursor + 1) % USERS;
            store.upsert(record(cursor)); // replace path
        });
        let remove_insert_ns = time_ns(128, || {
            cursor = (cursor + 1) % USERS;
            store.remove(cursor);
            store.upsert(record(cursor));
        });
        let match_per_record_ns = time_ns(16, || store.match_all(&scheme, &token)) / USERS as f64;
        out.push(ChurnTimings {
            backend: name,
            users: USERS as usize,
            upsert_ns,
            remove_insert_ns,
            match_per_record_ns,
        });
        // Drop the store (flushes + joins the persistent machinery)
        // before its directory is removed below.
        drop(store);
    }
    // The sharded-durability row: the same persistent store, but churned
    // by four writer threads at once — the per-shard WAL lanes are what
    // keeps those writers from serializing on a single log gate.
    out.push(measure_persistent_sharded_churn(
        &tmp_base.join("sharded4w"),
        &record,
        &scheme,
        &token,
    ));
    if tmp_base.exists() {
        std::fs::remove_dir_all(&tmp_base).expect("scratch cleanup");
    }
    out
}

/// The `persistent_sharded` churn row: four writer threads drive the
/// persistent store's shared (`&self`) mutation surface concurrently,
/// each over its own user stripe so the churn spreads across the
/// durability lanes, and the full-store token evaluation is timed
/// **while the writers keep churning**. Mutation costs are wall-clock
/// over total ops (the throughput view — per-lane group commit lets the
/// four writers overlap their log appends), and the match figure pins
/// the read-path claim that matching never touches the log.
fn measure_persistent_sharded_churn(
    dir: &std::path::Path,
    record: &(dyn Fn(u64) -> StoredSubscription + Sync),
    scheme: &HveScheme<'_, SimulatedGroup>,
    token: &sla_hve::Token,
) -> ChurnTimings {
    use std::sync::atomic::{AtomicBool, Ordering};
    const WRITERS: usize = 4;
    const USERS: u64 = 256;
    const OPS_PER_WRITER: usize = 192;

    let store = PersistentStore::open(dir, FlushPolicy::Every(Duration::from_millis(5)))
        .expect("scratch dir is writable");
    for user in 0..USERS {
        store.upsert(record(user));
    }

    // Each writer walks its own residue class mod WRITERS, so no two
    // writers ever touch the same user (or, with a lane count that is a
    // multiple of WRITERS, contend on the same gate by accident).
    let striped = |writer: usize, churn: &dyn Fn(u64)| {
        let mut user = writer as u64;
        for _ in 0..OPS_PER_WRITER {
            user = (user + WRITERS as u64) % USERS;
            churn(user);
        }
    };
    let four_writer_ns = |churn: &(dyn Fn(u64) + Sync)| {
        let t = Instant::now();
        std::thread::scope(|s| {
            for writer in 0..WRITERS {
                s.spawn(move || striped(writer, churn));
            }
        });
        t.elapsed().as_nanos() as f64 / (WRITERS * OPS_PER_WRITER) as f64
    };

    let upsert_ns = four_writer_ns(&|user| {
        store.upsert(record(user));
    });
    let remove_insert_ns = four_writer_ns(&|user| {
        store.remove(user);
        store.upsert(record(user));
    });

    // Churn-while-matching: the writers loop until the measured match
    // pass finishes, then are signalled to stop.
    let stop = AtomicBool::new(false);
    let match_per_record_ns = std::thread::scope(|s| {
        for writer in 0..WRITERS {
            let (store, stop) = (&store, &stop);
            s.spawn(move || {
                let mut user = writer as u64;
                while !stop.load(Ordering::Relaxed) {
                    user = (user + WRITERS as u64) % USERS;
                    store.upsert(record(user));
                }
            });
        }
        let per_scan = time_ns(8, || {
            let mut hits = 0usize;
            let mut scan = |records: &[StoredSubscription]| {
                for r in records {
                    if scheme.match_token(token, &r.ciphertext, &r.expected) {
                        hits += 1;
                    }
                }
            };
            for shard in 0..store.shard_count() {
                store.read_shard(shard, &mut scan);
            }
            hits
        });
        stop.store(true, Ordering::Relaxed);
        per_scan / USERS as f64
    });
    drop(store);

    ChurnTimings {
        backend: "persistent_sharded",
        users: USERS as usize,
        upsert_ns,
        remove_insert_ns,
        match_per_record_ns,
    }
}

/// Renders the timing series as the `BENCH_primitives.json` artifact
/// (schema v6: primitive rows, per-phase HVE timings, per-backend store
/// churn timings — including the four-writer `persistent_sharded` row —
/// serial-vs-lockstep kernel timings, and end-to-end batched
/// Encrypt/GenToken timings).
pub fn to_json(
    rows: &[PrimitiveTimings],
    phases: &[PhaseTimings],
    churn: &[ChurnTimings],
    lockstep: &[LockstepTimings],
    exp_batch: &[ExpBatchTimings],
) -> String {
    let mut out = String::from("{\n  \"schema\": \"sla-bench/primitives/v6\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"modulus_bits\": {}, \"mod_mul_naive_ns\": {:.1}, \"mod_mul_mont_ns\": {:.1}, \
             \"mod_pow_naive_ns\": {:.1}, \"mod_pow_mont_ns\": {:.1}, \
             \"mod_pow_fixed_ns\": {:.1}, \"pairing_ns\": {:.1}, \
             \"mod_mul_speedup\": {:.2}, \"mod_pow_speedup\": {:.2}, \
             \"fixed_base_speedup\": {:.2}}}{}\n",
            r.modulus_bits,
            r.mod_mul_naive_ns,
            r.mod_mul_mont_ns,
            r.mod_pow_naive_ns,
            r.mod_pow_mont_ns,
            r.mod_pow_fixed_ns,
            r.pairing_ns,
            r.mod_mul_speedup(),
            r.mod_pow_speedup(),
            r.fixed_base_speedup(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"modulus_bits\": {}, \"width\": {}, \"setup_ns\": {:.0}, \
             \"prepare_ns\": {:.0}, \"encrypt_ns\": {:.0}, \"encrypt_prepared_ns\": {:.0}, \
             \"gen_token_ns\": {:.0}, \"gen_token_prepared_ns\": {:.0}, \
             \"query_decode_ns\": {:.0}, \"query_batch_ns\": {:.0}, \
             \"encrypt_speedup\": {:.2}, \"gen_token_speedup\": {:.2}, \
             \"query_speedup\": {:.2}}}{}\n",
            p.modulus_bits,
            p.width,
            p.setup_ns,
            p.prepare_ns,
            p.encrypt_ns,
            p.encrypt_prepared_ns,
            p.gen_token_ns,
            p.gen_token_prepared_ns,
            p.query_decode_ns,
            p.query_batch_ns,
            p.encrypt_speedup(),
            p.gen_token_speedup(),
            p.query_speedup(),
            if i + 1 == phases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"churn\": [\n");
    for (i, c) in churn.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"users\": {}, \"upsert_ns\": {:.0}, \
             \"remove_insert_ns\": {:.0}, \"match_per_record_ns\": {:.0}}}{}\n",
            c.backend,
            c.users,
            c.upsert_ns,
            c.remove_insert_ns,
            c.match_per_record_ns,
            if i + 1 == churn.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"lockstep\": [\n");
    for (i, l) in lockstep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"modulus_bits\": {}, \"batch\": {}, \"kernel\": \"{}\", \
             \"serial_ns\": {:.1}, \"lockstep_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            l.modulus_bits,
            l.batch,
            l.kernel,
            l.serial_ns,
            l.lockstep_ns,
            l.speedup(),
            if i + 1 == lockstep.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"exp_batch\": [\n");
    for (i, e) in exp_batch.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"phase\": \"{}\", \"modulus_bits\": {}, \"width\": {}, \"batch\": {}, \
             \"kernel\": \"{}\", \"serial_ns\": {:.0}, \"batch_ns\": {:.0}, \
             \"speedup\": {:.2}}}{}\n",
            e.phase,
            e.modulus_bits,
            e.width,
            e.batch,
            e.kernel,
            e.serial_ns,
            e.batch_ns,
            e.speedup(),
            if i + 1 == exp_batch.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_numbers() {
        let t = measure(32, 7);
        assert_eq!(t.modulus_bits, 64);
        for v in [
            t.mod_mul_naive_ns,
            t.mod_mul_mont_ns,
            t.mod_pow_naive_ns,
            t.mod_pow_mont_ns,
            t.mod_pow_fixed_ns,
            t.pairing_ns,
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
        let json = to_json(&[t], &[], &[], &[], &[]);
        assert!(json.contains("\"schema\": \"sla-bench/primitives/v6\""));
        assert!(json.contains("\"modulus_bits\": 64"));
        assert!(json.contains("fixed_base_speedup"));
    }

    #[test]
    fn measure_lockstep_produces_sane_rows() {
        let rows = measure_lockstep(32, &[1, 4, 8], 7);
        let batches: Vec<usize> = rows.iter().map(|l| l.batch).collect();
        assert_eq!(batches, vec![1, 4, 8]);
        for l in &rows {
            assert_eq!(l.modulus_bits, 64);
            assert!(
                ["scalar", "portable", "avx2", "neon"].contains(&l.kernel),
                "unknown kernel name {}",
                l.kernel
            );
            assert!(l.serial_ns.is_finite() && l.serial_ns > 0.0);
            assert!(l.lockstep_ns.is_finite() && l.lockstep_ns > 0.0);
        }
        let json = to_json(&[], &[], &[], &rows, &[]);
        assert!(json.contains("\"lockstep\""));
        assert!(json.contains("\"batch\": 8"));
        assert!(json.contains("\"kernel\""));
    }

    #[test]
    fn measure_phases_produces_sane_numbers() {
        let p = measure_phases(24, 8, 7);
        assert_eq!(p.width, 8);
        for v in [
            p.setup_ns,
            p.prepare_ns,
            p.encrypt_ns,
            p.encrypt_prepared_ns,
            p.gen_token_ns,
            p.gen_token_prepared_ns,
            p.query_decode_ns,
            p.query_batch_ns,
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
        let json = to_json(&[], &[p], &[], &[], &[]);
        assert!(json.contains("\"phases\""));
        assert!(json.contains("gen_token_speedup"));
        assert!(json.contains("query_batch_ns"));
        assert!(json.contains("query_speedup"));
    }

    #[test]
    fn measure_exp_batch_produces_sane_rows() {
        let rows = measure_exp_batch(24, &[1, 4], 7);
        let phases: Vec<&str> = rows.iter().map(|e| e.phase).collect();
        assert_eq!(phases, vec!["encrypt", "gen_token", "encrypt", "gen_token"]);
        let batches: Vec<usize> = rows.iter().map(|e| e.batch).collect();
        assert_eq!(batches, vec![1, 1, 4, 4]);
        for e in &rows {
            assert_eq!(e.modulus_bits, 48);
            assert_eq!(e.width, 16);
            assert!(
                ["scalar", "portable", "avx2", "neon"].contains(&e.kernel),
                "unknown kernel name {}",
                e.kernel
            );
            assert!(e.serial_ns.is_finite() && e.serial_ns > 0.0);
            assert!(e.batch_ns.is_finite() && e.batch_ns > 0.0);
            assert!(e.speedup().is_finite() && e.speedup() > 0.0);
        }
        let json = to_json(&[], &[], &[], &[], &rows);
        assert!(json.contains("\"exp_batch\""));
        assert!(json.contains("\"phase\": \"gen_token\""));
        assert!(json.contains("\"batch\": 4"));
    }

    #[test]
    fn measure_churn_covers_every_backend_and_cleans_up() {
        let churn = measure_churn(7);
        let names: Vec<&str> = churn.iter().map(|c| c.backend).collect();
        assert_eq!(
            names,
            vec![
                "contiguous",
                "sharded8",
                "concurrent8",
                "persistent",
                "persistent_fsync",
                "persistent_sharded"
            ]
        );
        for c in &churn {
            assert!(
                c.upsert_ns > 0.0 && c.remove_insert_ns > 0.0 && c.match_per_record_ns > 0.0,
                "{}: non-positive timing",
                c.backend
            );
        }
        let json = to_json(&[], &[], &churn, &[], &[]);
        assert!(json.contains("\"churn\""));
        assert!(json.contains("persistent_fsync"));
        assert!(json.contains("persistent_sharded"));
        // Tmpdir hygiene: the scratch directories are gone.
        let leaked = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name().to_str().is_some_and(|n| {
                    n.starts_with(&format!("sla-bench-churn-{}", std::process::id()))
                })
            })
            .count();
        assert_eq!(leaked, 0, "scratch directories leaked");
    }
}
