//! Helpers shared by the figure experiments.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_datasets::Workload;
use sla_grid::{ProbabilityMap, SigmoidParams};

/// Synthetic sigmoid probability map, seeded per (n, a, b) so every
/// experiment touching the same configuration sees the same surface.
pub fn sigmoid_probs(n: usize, a: f64, b: f64, seed: u64) -> ProbabilityMap {
    let mut rng = StdRng::seed_from_u64(
        seed ^ (n as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add((a * 1000.0) as u64)
            .wrapping_add((b * 7.0) as u64),
    );
    ProbabilityMap::sigmoid_synthetic(n, SigmoidParams { a, b }, &mut rng)
}

/// Extracts the cell-index lists of a workload's zones.
pub fn zones_to_cells(workload: &Workload) -> Vec<Vec<usize>> {
    workload.zones.iter().map(|z| z.cell_indices()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_probs_deterministic() {
        let a = sigmoid_probs(64, 0.9, 100.0, 1);
        let b = sigmoid_probs(64, 0.9, 100.0, 1);
        assert_eq!(a, b);
        let c = sigmoid_probs(64, 0.99, 100.0, 1);
        assert_ne!(a, c);
    }
}
