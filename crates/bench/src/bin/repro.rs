//! `repro` — regenerates every figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p sla-bench --bin repro --release             # everything
//! cargo run -p sla-bench --bin repro --release -- fig9     # one figure
//! cargo run -p sla-bench --bin repro --release -- fig10 --quick
//! cargo run -p sla-bench --bin repro --release -- --smoke  # CI smoke test
//! cargo run -p sla-bench --bin repro --release -- --smoke --store persistent
//! ```
//!
//! Tables are printed to stdout and written as CSV under `results/`.

use sla_bench::{fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14, primitives};
use sla_bench::{N_CIPHERTEXTS, SEED};
use std::path::PathBuf;

struct Opts {
    figures: Vec<String>,
    zones: usize,
    out_dir: PathBuf,
    parallel: bool,
    smoke: bool,
    /// Store backend for the smoke's end-to-end alert round
    /// (`contiguous` | `sharded` | `concurrent` | `persistent`).
    store: String,
    /// Batch widths for the serial-vs-lockstep kernel rows of the
    /// `primitives` figure (`--batch-width`, comma-separated).
    batch_widths: Vec<usize>,
}

fn parse_args() -> Opts {
    let mut figures = Vec::new();
    let mut zones = 50usize;
    let mut out_dir = PathBuf::from("results");
    let mut parallel = false;
    let mut smoke = false;
    let mut store = "sharded".to_string();
    let mut batch_widths = vec![1usize, 4, 8];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batch-width" => {
                let spec = args.next().expect("--batch-width needs a number or list");
                batch_widths = spec
                    .split(',')
                    .map(|w| w.trim().parse().expect("--batch-width entries are numbers"))
                    .collect();
                assert!(
                    !batch_widths.is_empty(),
                    "--batch-width needs at least one width"
                );
            }
            "--quick" => zones = 10,
            "--parallel" => parallel = true,
            "--smoke" => smoke = true,
            "--zones" => {
                zones = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--zones needs a number");
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--store" => {
                store = args.next().expect("--store needs a backend name");
            }
            "all" => figures.clear(),
            other => figures.push(other.trim_start_matches("--").to_string()),
        }
    }
    if figures.is_empty() {
        figures = (7..=14).map(|i| format!("fig{i}")).collect();
        figures.push("primitives".to_string());
    }
    Opts {
        figures,
        zones,
        out_dir,
        parallel,
        smoke,
        store,
        batch_widths,
    }
}

/// Resolves a `--store` name; the persistent backend gets a scratch
/// directory under the OS temp dir (returned so the caller can clean it
/// up — repro runs must not leak files into the workspace).
fn resolve_store(name: &str) -> (sla_core::StoreBackend, Option<PathBuf>) {
    match name {
        "contiguous" => (sla_core::StoreBackend::Contiguous, None),
        "sharded" => (sla_core::StoreBackend::Sharded { shards: 4 }, None),
        "concurrent" => (
            sla_core::StoreBackend::ConcurrentSharded { shards: 4 },
            None,
        ),
        "persistent" => {
            let dir = std::env::temp_dir().join(format!("sla-repro-store-{}", std::process::id()));
            (
                sla_core::StoreBackend::Persistent {
                    dir: dir.clone(),
                    flush: sla_core::FlushPolicy::EveryOp,
                },
                Some(dir),
            )
        }
        other => panic!("unknown --store '{other}' (contiguous|sharded|concurrent|persistent)"),
    }
}

/// Fast end-to-end exercise of the bench/repro path for CI: primitives at
/// the smallest size, one HVE phase measurement, and a miniature alert
/// round with the live-vs-analytic invariants asserted. Panics (failing
/// the CI step) on any mismatch; writes a side artifact so it never
/// clobbers the tracked `BENCH_primitives.json`.
fn run_smoke(out_dir: &std::path::Path, store: &str, batch_widths: &[usize]) {
    println!("# smoke: primitives");
    let rows = vec![primitives::measure(32, SEED)];
    let phases = vec![primitives::measure_phases(24, 8, SEED)];
    let churn = primitives::measure_churn(SEED);
    let lockstep = primitives::measure_lockstep(32, batch_widths, SEED);
    for r in &rows {
        println!(
            "primitives[{} bit N]: mod_pow {:.0} -> {:.0} ns ({:.2}x), fixed-base {:.0} ns ({:.2}x)",
            r.modulus_bits,
            r.mod_pow_naive_ns,
            r.mod_pow_mont_ns,
            r.mod_pow_speedup(),
            r.mod_pow_fixed_ns,
            r.fixed_base_speedup(),
        );
    }
    for p in &phases {
        println!(
            "phases[{} bit N, l={}]: encrypt {:.0} -> {:.0} ns, gen_token {:.0} -> {:.0} ns",
            p.modulus_bits,
            p.width,
            p.encrypt_ns,
            p.encrypt_prepared_ns,
            p.gen_token_ns,
            p.gen_token_prepared_ns,
        );
    }
    for c in &churn {
        println!(
            "churn[{}]: upsert {:.0} ns, remove+insert {:.0} ns, match {:.0} ns/record",
            c.backend, c.upsert_ns, c.remove_insert_ns, c.match_per_record_ns
        );
    }
    for l in &lockstep {
        println!(
            "lockstep[{} bit N, batch {}]: {:.0} -> {:.0} ns/product ({:.2}x, kernel {})",
            l.modulus_bits,
            l.batch,
            l.serial_ns,
            l.lockstep_ns,
            l.speedup(),
            l.kernel,
        );
    }
    let path = out_dir.join("BENCH_primitives_smoke.json");
    let write = std::fs::create_dir_all(out_dir)
        .and_then(|()| {
            std::fs::write(
                &path,
                primitives::to_json(&rows, &phases, &churn, &lockstep),
            )
        })
        .map(|()| path);
    report(write);

    println!("# smoke: end-to-end alert round (store = {store})");
    use rand::{rngs::StdRng, SeedableRng};
    let (backend, scratch) = resolve_store(store);
    let build = |rng: &mut StdRng| {
        let grid = sla_grid::Grid::new(sla_grid::BoundingBox::new(0.0, 0.0, 0.1, 0.1), 4, 4);
        let probs = sla_grid::ProbabilityMap::new(vec![1.0 / 16.0; 16]);
        sla_core::SystemBuilder::new(grid)
            .encoder(sla_encoding::EncoderKind::Huffman)
            .group_bits(32)
            .store(backend.clone())
            .build(&probs, rng)
            .expect("smoke: valid configuration")
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut system = build(&mut rng);
    for cell in 0..16 {
        system
            .subscribe_cell(100 + cell as u64, cell, &mut rng)
            .expect("smoke: cells are in range");
    }
    let serial = system
        .issue_alert(&[2, 3, 6], &mut rng)
        .expect("smoke: alert");
    let batch = system
        .issue_alert_batch(&[2, 3, 6], Some(4), &mut rng)
        .expect("smoke: batch alert");
    assert_eq!(serial.notified, vec![102, 103, 106], "smoke: wrong matches");
    assert_eq!(serial.notified, batch.notified, "smoke: batch != serial");
    assert_eq!(
        serial.pairings_used, serial.analytic_pairings,
        "smoke: live counters diverge from the analytic model"
    );
    println!(
        "smoke OK: {} users notified, {} pairings (= analytic), batch identical",
        serial.notified.len(),
        serial.pairings_used
    );

    // The persistent backend additionally smokes the restart path: the
    // same directory reopened (same seed ⇒ same group and keys) must
    // serve the identical alert outcome from the recovered store.
    if let Some(dir) = scratch {
        system.sync().expect("smoke: durable flush");
        drop(system);
        let mut rng = StdRng::seed_from_u64(SEED);
        let reopened = build(&mut rng);
        assert_eq!(
            reopened.n_subscriptions(),
            16,
            "smoke: restart lost subscriptions"
        );
        let recovered = reopened
            .issue_alert(&[2, 3, 6], &mut rng)
            .expect("smoke: alert after restart");
        assert_eq!(
            (recovered.notified, recovered.pairings_used),
            (serial.notified, serial.pairings_used),
            "smoke: restart changed the match outcome"
        );
        drop(reopened);
        std::fs::remove_dir_all(&dir).expect("smoke: scratch cleanup");
        println!("smoke OK: persistent store survived a restart byte-identically");
    }
}

fn main() {
    let opts = parse_args();
    if opts.smoke {
        run_smoke(&opts.out_dir, &opts.store, &opts.batch_widths);
        return;
    }
    println!("# Reproducing EDBT 2021 'Location-based Alert Protocol using SE and Huffman Codes'");
    println!(
        "# seed={SEED}, ciphertexts per alert={N_CIPHERTEXTS}, zones per point={}, parallel={}\n",
        opts.zones, opts.parallel
    );

    for fig in &opts.figures {
        match fig.as_str() {
            "fig7" | "fig07" => {
                let rows = fig07::run(SEED);
                let t = fig07::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig07"));
            }
            "fig8" | "fig08" => {
                let out = fig08::run(SEED);
                let t = fig08::table(&out);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig08"));
            }
            "fig9" | "fig09" => {
                let result = fig09::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel);
                let a = fig09::table_absolute(
                    &result,
                    "Fig 9a: pairings on crime dataset (32x32, 10k users)",
                );
                let b = fig09::table_improvement(
                    &result,
                    "Fig 9b: improvement (%) vs basic fixed-length [14]",
                );
                print!("{}", a.render());
                print!("{}", b.render());
                report(a.write_csv(&opts.out_dir, "fig09a"));
                report(b.write_csv(&opts.out_dir, "fig09b"));
            }
            "fig10" => {
                for panel in fig10::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel) {
                    let tag = format!("a{:.2}_b{:.0}", panel.a, panel.b);
                    let a =
                        fig09::table_absolute(&panel.result, &format!("Fig 10 ({tag}): pairings"));
                    let b = fig09::table_improvement(
                        &panel.result,
                        &format!("Fig 10 ({tag}): improvement (%) vs [14]"),
                    );
                    print!("{}", a.render());
                    print!("{}", b.render());
                    report(a.write_csv(&opts.out_dir, &format!("fig10_{tag}_abs")));
                    report(b.write_csv(&opts.out_dir, &format!("fig10_{tag}_impr")));
                }
            }
            "fig11" => {
                for panel in
                    fig11::run_with(SEED, opts.zones.max(100), N_CIPHERTEXTS, opts.parallel)
                {
                    let t = fig11::table_improvement(&panel);
                    print!("{}", t.render());
                    report(t.write_csv(
                        &opts.out_dir,
                        &format!("fig11_a{:.2}_b{:.0}", panel.a, panel.b),
                    ));
                }
            }
            "fig12" => {
                let points = fig12::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel);
                let a = fig12::table_absolute(&points);
                let b = fig12::table_improvement(&points);
                print!("{}", a.render());
                print!("{}", b.render());
                report(a.write_csv(&opts.out_dir, "fig12a"));
                report(b.write_csv(&opts.out_dir, "fig12b"));
            }
            "fig13" => {
                let rows = fig13::run(SEED);
                let t = fig13::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig13"));
            }
            "fig14" => {
                let rows = fig14::run(SEED);
                let t = fig14::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig14"));
            }
            "primitives" => {
                // Perf trajectory of the arithmetic hot path, tracked
                // across PRs as results/BENCH_primitives.json.
                let rows: Vec<_> = [32usize, 48, 64]
                    .iter()
                    .map(|&bits| primitives::measure(bits, SEED))
                    .collect();
                for r in &rows {
                    println!(
                        "primitives[{} bit N]: mod_mul {:.0} -> {:.0} ns ({:.2}x), \
                         mod_pow {:.0} -> {:.0} ns ({:.2}x), fixed-base {:.0} ns \
                         ({:.2}x over mont), pairing {:.0} ns",
                        r.modulus_bits,
                        r.mod_mul_naive_ns,
                        r.mod_mul_mont_ns,
                        r.mod_mul_speedup(),
                        r.mod_pow_naive_ns,
                        r.mod_pow_mont_ns,
                        r.mod_pow_speedup(),
                        r.mod_pow_fixed_ns,
                        r.fixed_base_speedup(),
                        r.pairing_ns,
                    );
                }
                // Per-phase Setup/Encrypt/GenToken timings, plain vs
                // prepared, at the default simulation order (96-bit N).
                let phases: Vec<_> = [8usize, 16, 32]
                    .iter()
                    .map(|&width| primitives::measure_phases(48, width, SEED))
                    .collect();
                for p in &phases {
                    println!(
                        "phases[{} bit N, l={}]: setup {:.1} µs (+{:.1} µs prepare), \
                         encrypt {:.1} -> {:.1} µs ({:.2}x), gen_token {:.1} -> {:.1} µs ({:.2}x), \
                         query {:.2} -> {:.2} µs/pair ({:.2}x, residue-domain batch)",
                        p.modulus_bits,
                        p.width,
                        p.setup_ns / 1e3,
                        p.prepare_ns / 1e3,
                        p.encrypt_ns / 1e3,
                        p.encrypt_prepared_ns / 1e3,
                        p.encrypt_speedup(),
                        p.gen_token_ns / 1e3,
                        p.gen_token_prepared_ns / 1e3,
                        p.gen_token_speedup(),
                        p.query_decode_ns / 1e3,
                        p.query_batch_ns / 1e3,
                        p.query_speedup(),
                    );
                }
                // Store-lifecycle rows: what each backend charges for
                // churn, and what durability (WAL + fsync) adds.
                let churn = primitives::measure_churn(SEED);
                for c in &churn {
                    println!(
                        "churn[{}]: upsert {:.2} µs, remove+insert {:.2} µs, \
                         match {:.2} µs/record ({} users)",
                        c.backend,
                        c.upsert_ns / 1e3,
                        c.remove_insert_ns / 1e3,
                        c.match_per_record_ns / 1e3,
                        c.users,
                    );
                }
                // Serial-vs-lockstep kernel rows at every modulus size
                // (batch widths from --batch-width, default 1,4,8).
                let lockstep: Vec<_> = [32usize, 48, 64]
                    .iter()
                    .flat_map(|&bits| primitives::measure_lockstep(bits, &opts.batch_widths, SEED))
                    .collect();
                for l in &lockstep {
                    println!(
                        "lockstep[{} bit N, batch {}]: {:.0} -> {:.0} ns/product \
                         ({:.2}x, kernel {})",
                        l.modulus_bits,
                        l.batch,
                        l.serial_ns,
                        l.lockstep_ns,
                        l.speedup(),
                        l.kernel,
                    );
                }
                let path = opts.out_dir.join("BENCH_primitives.json");
                let write = std::fs::create_dir_all(&opts.out_dir)
                    .and_then(|()| {
                        std::fs::write(
                            &path,
                            primitives::to_json(&rows, &phases, &churn, &lockstep),
                        )
                    })
                    .map(|()| path);
                report(write);
            }
            other => eprintln!("unknown figure '{other}' (expected fig7..fig14 or primitives)"),
        }
        println!();
    }
}

fn report(result: std::io::Result<PathBuf>) {
    match result {
        Ok(path) => println!("-> wrote {}", path.display()),
        Err(e) => eprintln!("!! csv write failed: {e}"),
    }
}
