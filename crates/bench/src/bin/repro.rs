//! `repro` — regenerates every figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p sla-bench --bin repro --release             # everything
//! cargo run -p sla-bench --bin repro --release -- fig9     # one figure
//! cargo run -p sla-bench --bin repro --release -- fig10 --quick
//! ```
//!
//! Tables are printed to stdout and written as CSV under `results/`.

use sla_bench::{fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14, primitives};
use sla_bench::{N_CIPHERTEXTS, SEED};
use std::path::PathBuf;

struct Opts {
    figures: Vec<String>,
    zones: usize,
    out_dir: PathBuf,
    parallel: bool,
}

fn parse_args() -> Opts {
    let mut figures = Vec::new();
    let mut zones = 50usize;
    let mut out_dir = PathBuf::from("results");
    let mut parallel = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => zones = 10,
            "--parallel" => parallel = true,
            "--zones" => {
                zones = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--zones needs a number");
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "all" => figures.clear(),
            other => figures.push(other.trim_start_matches("--").to_string()),
        }
    }
    if figures.is_empty() {
        figures = (7..=14).map(|i| format!("fig{i}")).collect();
        figures.push("primitives".to_string());
    }
    Opts {
        figures,
        zones,
        out_dir,
        parallel,
    }
}

fn main() {
    let opts = parse_args();
    println!("# Reproducing EDBT 2021 'Location-based Alert Protocol using SE and Huffman Codes'");
    println!(
        "# seed={SEED}, ciphertexts per alert={N_CIPHERTEXTS}, zones per point={}, parallel={}\n",
        opts.zones, opts.parallel
    );

    for fig in &opts.figures {
        match fig.as_str() {
            "fig7" | "fig07" => {
                let rows = fig07::run(SEED);
                let t = fig07::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig07"));
            }
            "fig8" | "fig08" => {
                let out = fig08::run(SEED);
                let t = fig08::table(&out);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig08"));
            }
            "fig9" | "fig09" => {
                let result = fig09::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel);
                let a = fig09::table_absolute(
                    &result,
                    "Fig 9a: pairings on crime dataset (32x32, 10k users)",
                );
                let b = fig09::table_improvement(
                    &result,
                    "Fig 9b: improvement (%) vs basic fixed-length [14]",
                );
                print!("{}", a.render());
                print!("{}", b.render());
                report(a.write_csv(&opts.out_dir, "fig09a"));
                report(b.write_csv(&opts.out_dir, "fig09b"));
            }
            "fig10" => {
                for panel in fig10::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel) {
                    let tag = format!("a{:.2}_b{:.0}", panel.a, panel.b);
                    let a =
                        fig09::table_absolute(&panel.result, &format!("Fig 10 ({tag}): pairings"));
                    let b = fig09::table_improvement(
                        &panel.result,
                        &format!("Fig 10 ({tag}): improvement (%) vs [14]"),
                    );
                    print!("{}", a.render());
                    print!("{}", b.render());
                    report(a.write_csv(&opts.out_dir, &format!("fig10_{tag}_abs")));
                    report(b.write_csv(&opts.out_dir, &format!("fig10_{tag}_impr")));
                }
            }
            "fig11" => {
                for panel in
                    fig11::run_with(SEED, opts.zones.max(100), N_CIPHERTEXTS, opts.parallel)
                {
                    let t = fig11::table_improvement(&panel);
                    print!("{}", t.render());
                    report(t.write_csv(
                        &opts.out_dir,
                        &format!("fig11_a{:.2}_b{:.0}", panel.a, panel.b),
                    ));
                }
            }
            "fig12" => {
                let points = fig12::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel);
                let a = fig12::table_absolute(&points);
                let b = fig12::table_improvement(&points);
                print!("{}", a.render());
                print!("{}", b.render());
                report(a.write_csv(&opts.out_dir, "fig12a"));
                report(b.write_csv(&opts.out_dir, "fig12b"));
            }
            "fig13" => {
                let rows = fig13::run(SEED);
                let t = fig13::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig13"));
            }
            "fig14" => {
                let rows = fig14::run(SEED);
                let t = fig14::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig14"));
            }
            "primitives" => {
                // Perf trajectory of the arithmetic hot path, tracked
                // across PRs as results/BENCH_primitives.json.
                let rows: Vec<_> = [32usize, 48, 64]
                    .iter()
                    .map(|&bits| primitives::measure(bits, SEED))
                    .collect();
                for r in &rows {
                    println!(
                        "primitives[{} bit N]: mod_mul {:.0} -> {:.0} ns ({:.2}x), \
                         mod_pow {:.0} -> {:.0} ns ({:.2}x), pairing {:.0} ns",
                        r.modulus_bits,
                        r.mod_mul_naive_ns,
                        r.mod_mul_mont_ns,
                        r.mod_mul_speedup(),
                        r.mod_pow_naive_ns,
                        r.mod_pow_mont_ns,
                        r.mod_pow_speedup(),
                        r.pairing_ns,
                    );
                }
                let path = opts.out_dir.join("BENCH_primitives.json");
                let write = std::fs::create_dir_all(&opts.out_dir)
                    .and_then(|()| std::fs::write(&path, primitives::to_json(&rows)))
                    .map(|()| path);
                report(write);
            }
            other => eprintln!("unknown figure '{other}' (expected fig7..fig14 or primitives)"),
        }
        println!();
    }
}

fn report(result: std::io::Result<PathBuf>) {
    match result {
        Ok(path) => println!("-> wrote {}", path.display()),
        Err(e) => eprintln!("!! csv write failed: {e}"),
    }
}
