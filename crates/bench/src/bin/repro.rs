//! `repro` — regenerates every figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p sla-bench --bin repro --release             # everything
//! cargo run -p sla-bench --bin repro --release -- fig9     # one figure
//! cargo run -p sla-bench --bin repro --release -- fig10 --quick
//! cargo run -p sla-bench --bin repro --release -- --smoke  # CI smoke test
//! cargo run -p sla-bench --bin repro --release -- --smoke --store persistent
//! cargo run -p sla-bench --bin repro --release -- --exp-batch --batch-width 1,4,8
//! cargo run -p sla-bench --bin repro --release -- scenario --scenario moving,mixed
//! ```
//!
//! Tables are printed to stdout and written as CSV under `results/`.

use sla_bench::{fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14, primitives, scenarios};
use sla_bench::{N_CIPHERTEXTS, SEED};
use std::path::PathBuf;

struct Opts {
    figures: Vec<String>,
    zones: usize,
    out_dir: PathBuf,
    parallel: bool,
    smoke: bool,
    /// Store backend for the smoke's end-to-end alert round
    /// (`contiguous` | `sharded` | `concurrent` | `persistent`).
    store: String,
    /// Batch widths for the serial-vs-lockstep kernel rows of the
    /// `primitives` figure (`--batch-width`, comma-separated).
    batch_widths: Vec<usize>,
    /// Scenario families for the `scenario` matrix target
    /// (`--scenario`, comma-separated; defaults to all four).
    scenario_kinds: Vec<sla_scenarios::ScenarioKind>,
}

/// Typed rejection of a malformed command line. The lockstep kernels
/// group lanes 8-then-4-then-scalar, so only power-of-two batch widths
/// describe a configuration the dispatcher can actually run — anything
/// else is refused up front instead of producing a misleading bench row.
#[derive(Debug, PartialEq, Eq)]
enum ArgError {
    /// `--batch-width` with no value.
    Missing,
    /// An entry that did not parse as an integer.
    NotANumber(String),
    /// `--batch-width 0`: a zero-wide ladder measures nothing.
    Zero,
    /// A width that is not a power of two.
    NotPowerOfTwo(usize),
    /// `--scenario` with no value.
    MissingScenario,
    /// A scenario name outside `{moving, burst, mixed, zipf}`.
    UnknownScenario(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Missing => {
                write!(f, "--batch-width needs a number or comma-separated list")
            }
            ArgError::NotANumber(s) => {
                write!(f, "--batch-width entry '{s}' is not a number")
            }
            ArgError::Zero => {
                write!(
                    f,
                    "--batch-width 0 is rejected: a zero-wide batch measures nothing"
                )
            }
            ArgError::NotPowerOfTwo(w) => write!(
                f,
                "--batch-width {w} is rejected: widths must be powers of two \
                 (the lockstep kernels group lanes 8/4/1)"
            ),
            ArgError::MissingScenario => {
                write!(f, "--scenario needs a name or comma-separated list")
            }
            ArgError::UnknownScenario(s) => {
                write!(
                    f,
                    "--scenario entry '{s}' is rejected (expected moving, burst, mixed or zipf)"
                )
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses a `--batch-width` value (`"8"` or `"1,4,8"`) into validated
/// widths: every entry numeric, nonzero, and a power of two.
fn parse_batch_widths(spec: &str) -> Result<Vec<usize>, ArgError> {
    let mut widths = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let w: usize = entry
            .parse()
            .map_err(|_| ArgError::NotANumber(entry.to_string()))?;
        if w == 0 {
            return Err(ArgError::Zero);
        }
        if !w.is_power_of_two() {
            return Err(ArgError::NotPowerOfTwo(w));
        }
        widths.push(w);
    }
    if widths.is_empty() {
        return Err(ArgError::Missing);
    }
    Ok(widths)
}

/// Parses a `--scenario` value (`"moving"` or `"moving,mixed"`) into
/// validated scenario kinds — unknown names are a typed, exit-2 error
/// like the `--batch-width` validation above.
fn parse_scenarios(spec: &str) -> Result<Vec<sla_scenarios::ScenarioKind>, ArgError> {
    let mut kinds = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let kind: sla_scenarios::ScenarioKind = entry
            .parse()
            .map_err(|_| ArgError::UnknownScenario(entry.to_string()))?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err(ArgError::MissingScenario);
    }
    Ok(kinds)
}

fn parse_args() -> Result<Opts, ArgError> {
    let mut figures = Vec::new();
    let mut zones = 50usize;
    let mut out_dir = PathBuf::from("results");
    let mut parallel = false;
    let mut smoke = false;
    let mut store = "sharded".to_string();
    let mut batch_widths = vec![1usize, 4, 8];
    let mut scenario_kinds = sla_scenarios::ScenarioKind::ALL.to_vec();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--batch-width" => {
                let spec = args.next().ok_or(ArgError::Missing)?;
                batch_widths = parse_batch_widths(&spec)?;
            }
            "--scenario" => {
                let spec = args.next().ok_or(ArgError::MissingScenario)?;
                scenario_kinds = parse_scenarios(&spec)?;
            }
            "--quick" => zones = 10,
            "--parallel" => parallel = true,
            "--smoke" => smoke = true,
            "--zones" => {
                zones = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--zones needs a number");
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--store" => {
                store = args.next().expect("--store needs a backend name");
            }
            "all" => figures.clear(),
            other => figures.push(other.trim_start_matches("--").to_string()),
        }
    }
    if figures.is_empty() {
        figures = (7..=14).map(|i| format!("fig{i}")).collect();
        figures.push("primitives".to_string());
    }
    Ok(Opts {
        figures,
        zones,
        out_dir,
        parallel,
        smoke,
        store,
        batch_widths,
        scenario_kinds,
    })
}

/// Resolves a `--store` name; the persistent backend gets a scratch
/// directory under the OS temp dir (returned so the caller can clean it
/// up — repro runs must not leak files into the workspace).
fn resolve_store(name: &str) -> (sla_core::StoreBackend, Option<PathBuf>) {
    match name {
        "contiguous" => (sla_core::StoreBackend::Contiguous, None),
        "sharded" => (sla_core::StoreBackend::Sharded { shards: 4 }, None),
        "concurrent" => (
            sla_core::StoreBackend::ConcurrentSharded { shards: 4 },
            None,
        ),
        "persistent" => {
            let dir = std::env::temp_dir().join(format!("sla-repro-store-{}", std::process::id()));
            (
                sla_core::StoreBackend::Persistent {
                    dir: dir.clone(),
                    flush: sla_core::FlushPolicy::EveryOp,
                },
                Some(dir),
            )
        }
        other => panic!("unknown --store '{other}' (contiguous|sharded|concurrent|persistent)"),
    }
}

/// Fast end-to-end exercise of the bench/repro path for CI: primitives at
/// the smallest size, one HVE phase measurement, and a miniature alert
/// round with the live-vs-analytic invariants asserted. Panics (failing
/// the CI step) on any mismatch; writes a side artifact so it never
/// clobbers the tracked `BENCH_primitives.json`.
/// Prints the end-to-end batched Encrypt/GenToken rows (shared by the
/// smoke, the `primitives` figure, and the standalone `--exp-batch`
/// target).
fn print_exp_batch(rows: &[primitives::ExpBatchTimings]) {
    for e in rows {
        println!(
            "exp_batch[{} bit N, l={}, {}]: batch {} at {:.1} -> {:.1} µs/op ({:.2}x, kernel {})",
            e.modulus_bits,
            e.width,
            e.phase,
            e.batch,
            e.serial_ns / 1e3,
            e.batch_ns / 1e3,
            e.speedup(),
            e.kernel,
        );
    }
}

fn print_scenarios(rows: &[scenarios::ScenarioRow]) {
    for r in rows {
        println!(
            "scenario[{} {} {}]: {} alerts, tokens {}+{} (gen+reuse), cells +{}/-{}, \
             {} pairings, notified {} ({} exact, {} spurious), \
             tracked {:.1} ms vs full {:.1} ms ({:.2}x), mismatches {}",
            r.scenario,
            r.level,
            r.store,
            r.alerts,
            r.tokens_generated,
            r.tokens_reused,
            r.cells_entered,
            r.cells_exited,
            r.pairings,
            r.notified,
            r.exact_notified,
            r.spurious,
            r.tracked_ns / 1e6,
            r.full_ns / 1e6,
            r.speedup(),
            r.mismatches,
        );
    }
}

fn run_smoke(out_dir: &std::path::Path, store: &str, batch_widths: &[usize]) {
    println!("# smoke: primitives");
    let rows = vec![primitives::measure(32, SEED)];
    let phases = vec![primitives::measure_phases(24, 8, SEED)];
    let churn = primitives::measure_churn(SEED);
    let lockstep = primitives::measure_lockstep(32, batch_widths, SEED);
    let exp_batch = primitives::measure_exp_batch(24, batch_widths, SEED);
    for r in &rows {
        println!(
            "primitives[{} bit N]: mod_pow {:.0} -> {:.0} ns ({:.2}x), fixed-base {:.0} ns ({:.2}x)",
            r.modulus_bits,
            r.mod_pow_naive_ns,
            r.mod_pow_mont_ns,
            r.mod_pow_speedup(),
            r.mod_pow_fixed_ns,
            r.fixed_base_speedup(),
        );
    }
    for p in &phases {
        println!(
            "phases[{} bit N, l={}]: encrypt {:.0} -> {:.0} ns, gen_token {:.0} -> {:.0} ns",
            p.modulus_bits,
            p.width,
            p.encrypt_ns,
            p.encrypt_prepared_ns,
            p.gen_token_ns,
            p.gen_token_prepared_ns,
        );
    }
    for c in &churn {
        println!(
            "churn[{}]: upsert {:.0} ns, remove+insert {:.0} ns, match {:.0} ns/record",
            c.backend, c.upsert_ns, c.remove_insert_ns, c.match_per_record_ns
        );
    }
    for l in &lockstep {
        println!(
            "lockstep[{} bit N, batch {}]: {:.0} -> {:.0} ns/product ({:.2}x, kernel {})",
            l.modulus_bits,
            l.batch,
            l.serial_ns,
            l.lockstep_ns,
            l.speedup(),
            l.kernel,
        );
    }
    print_exp_batch(&exp_batch);
    let path = out_dir.join("BENCH_primitives_smoke.json");
    let write = std::fs::create_dir_all(out_dir)
        .and_then(|()| {
            std::fs::write(
                &path,
                primitives::to_json(&rows, &phases, &churn, &lockstep, &exp_batch),
            )
        })
        .map(|()| path);
    report(write);

    println!("# smoke: end-to-end alert round (store = {store})");
    use rand::{rngs::StdRng, SeedableRng};
    let (backend, scratch) = resolve_store(store);
    let build = |rng: &mut StdRng| {
        let grid = sla_grid::Grid::new(sla_grid::BoundingBox::new(0.0, 0.0, 0.1, 0.1), 4, 4);
        let probs = sla_grid::ProbabilityMap::new(vec![1.0 / 16.0; 16]);
        sla_core::SystemBuilder::new(grid)
            .encoder(sla_encoding::EncoderKind::Huffman)
            .group_bits(32)
            .store(backend.clone())
            .build(&probs, rng)
            .expect("smoke: valid configuration")
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut system = build(&mut rng);
    for cell in 0..16 {
        system
            .subscribe_cell(100 + cell as u64, cell, &mut rng)
            .expect("smoke: cells are in range");
    }
    let serial = system
        .issue_alert(&[2, 3, 6], &mut rng)
        .expect("smoke: alert");
    let batch = system
        .issue_alert_batch(&[2, 3, 6], Some(4), &mut rng)
        .expect("smoke: batch alert");
    assert_eq!(serial.notified, vec![102, 103, 106], "smoke: wrong matches");
    assert_eq!(serial.notified, batch.notified, "smoke: batch != serial");
    assert_eq!(
        serial.pairings_used, serial.analytic_pairings,
        "smoke: live counters diverge from the analytic model"
    );
    println!(
        "smoke OK: {} users notified, {} pairings (= analytic), batch identical",
        serial.notified.len(),
        serial.pairings_used
    );

    // The persistent backend additionally smokes the restart path: the
    // same directory reopened (same seed ⇒ same group and keys) must
    // serve the identical alert outcome from the recovered store.
    if let Some(dir) = scratch {
        system.sync().expect("smoke: durable flush");
        drop(system);
        let mut rng = StdRng::seed_from_u64(SEED);
        let reopened = build(&mut rng);
        assert_eq!(
            reopened.n_subscriptions(),
            16,
            "smoke: restart lost subscriptions"
        );
        let recovered = reopened
            .issue_alert(&[2, 3, 6], &mut rng)
            .expect("smoke: alert after restart");
        assert_eq!(
            (recovered.notified, recovered.pairings_used),
            (serial.notified, serial.pairings_used),
            "smoke: restart changed the match outcome"
        );
        drop(reopened);
        std::fs::remove_dir_all(&dir).expect("smoke: scratch cleanup");
        println!("smoke OK: persistent store survived a restart byte-identically");
    }

    // One miniature moving-zone scenario row: the tracked (incremental
    // token regeneration) path replayed against full regeneration and
    // the plaintext oracle — any disagreement fails the smoke.
    println!("# smoke: scenario matrix row (moving, L0, store = {store})");
    // Four epochs is the smallest replay in which the storm track's
    // minimized cover repeats a pattern, i.e. the cache demonstrably
    // reuses a token (asserted below).
    let config = sla_scenarios::ScenarioConfig {
        users: 12,
        epochs: 4,
        seed: SEED,
    };
    let row = scenarios::run_uniform(
        sla_scenarios::ScenarioKind::Moving,
        sla_scenarios::GranularityLevel::EXACT,
        store,
        &config,
    );
    print_scenarios(std::slice::from_ref(&row));
    assert_eq!(row.mismatches, 0, "smoke: tracked alert path diverged");
    assert!(
        row.tokens_reused > 0,
        "smoke: delta regen never reused a token"
    );
    println!(
        "smoke OK: scenario row reused {} of {} tokens across {} alerts",
        row.tokens_reused,
        row.tokens_generated + row.tokens_reused,
        row.alerts
    );
}

fn main() {
    let opts = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if opts.smoke {
        run_smoke(&opts.out_dir, &opts.store, &opts.batch_widths);
        return;
    }
    println!("# Reproducing EDBT 2021 'Location-based Alert Protocol using SE and Huffman Codes'");
    println!(
        "# seed={SEED}, ciphertexts per alert={N_CIPHERTEXTS}, zones per point={}, parallel={}\n",
        opts.zones, opts.parallel
    );

    for fig in &opts.figures {
        match fig.as_str() {
            "fig7" | "fig07" => {
                let rows = fig07::run(SEED);
                let t = fig07::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig07"));
            }
            "fig8" | "fig08" => {
                let out = fig08::run(SEED);
                let t = fig08::table(&out);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig08"));
            }
            "fig9" | "fig09" => {
                let result = fig09::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel);
                let a = fig09::table_absolute(
                    &result,
                    "Fig 9a: pairings on crime dataset (32x32, 10k users)",
                );
                let b = fig09::table_improvement(
                    &result,
                    "Fig 9b: improvement (%) vs basic fixed-length [14]",
                );
                print!("{}", a.render());
                print!("{}", b.render());
                report(a.write_csv(&opts.out_dir, "fig09a"));
                report(b.write_csv(&opts.out_dir, "fig09b"));
            }
            "fig10" => {
                for panel in fig10::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel) {
                    let tag = format!("a{:.2}_b{:.0}", panel.a, panel.b);
                    let a =
                        fig09::table_absolute(&panel.result, &format!("Fig 10 ({tag}): pairings"));
                    let b = fig09::table_improvement(
                        &panel.result,
                        &format!("Fig 10 ({tag}): improvement (%) vs [14]"),
                    );
                    print!("{}", a.render());
                    print!("{}", b.render());
                    report(a.write_csv(&opts.out_dir, &format!("fig10_{tag}_abs")));
                    report(b.write_csv(&opts.out_dir, &format!("fig10_{tag}_impr")));
                }
            }
            "fig11" => {
                for panel in
                    fig11::run_with(SEED, opts.zones.max(100), N_CIPHERTEXTS, opts.parallel)
                {
                    let t = fig11::table_improvement(&panel);
                    print!("{}", t.render());
                    report(t.write_csv(
                        &opts.out_dir,
                        &format!("fig11_a{:.2}_b{:.0}", panel.a, panel.b),
                    ));
                }
            }
            "fig12" => {
                let points = fig12::run_with(SEED, opts.zones, N_CIPHERTEXTS, opts.parallel);
                let a = fig12::table_absolute(&points);
                let b = fig12::table_improvement(&points);
                print!("{}", a.render());
                print!("{}", b.render());
                report(a.write_csv(&opts.out_dir, "fig12a"));
                report(b.write_csv(&opts.out_dir, "fig12b"));
            }
            "fig13" => {
                let rows = fig13::run(SEED);
                let t = fig13::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig13"));
            }
            "fig14" => {
                let rows = fig14::run(SEED);
                let t = fig14::table(&rows);
                print!("{}", t.render());
                report(t.write_csv(&opts.out_dir, "fig14"));
            }
            "primitives" => {
                // Perf trajectory of the arithmetic hot path, tracked
                // across PRs as results/BENCH_primitives.json.
                let rows: Vec<_> = [32usize, 48, 64]
                    .iter()
                    .map(|&bits| primitives::measure(bits, SEED))
                    .collect();
                for r in &rows {
                    println!(
                        "primitives[{} bit N]: mod_mul {:.0} -> {:.0} ns ({:.2}x), \
                         mod_pow {:.0} -> {:.0} ns ({:.2}x), fixed-base {:.0} ns \
                         ({:.2}x over mont), pairing {:.0} ns",
                        r.modulus_bits,
                        r.mod_mul_naive_ns,
                        r.mod_mul_mont_ns,
                        r.mod_mul_speedup(),
                        r.mod_pow_naive_ns,
                        r.mod_pow_mont_ns,
                        r.mod_pow_speedup(),
                        r.mod_pow_fixed_ns,
                        r.fixed_base_speedup(),
                        r.pairing_ns,
                    );
                }
                // Per-phase Setup/Encrypt/GenToken timings, plain vs
                // prepared, at the default simulation order (96-bit N).
                let phases: Vec<_> = [8usize, 16, 32]
                    .iter()
                    .map(|&width| primitives::measure_phases(48, width, SEED))
                    .collect();
                for p in &phases {
                    println!(
                        "phases[{} bit N, l={}]: setup {:.1} µs (+{:.1} µs prepare), \
                         encrypt {:.1} -> {:.1} µs ({:.2}x), gen_token {:.1} -> {:.1} µs ({:.2}x), \
                         query {:.2} -> {:.2} µs/pair ({:.2}x, residue-domain batch)",
                        p.modulus_bits,
                        p.width,
                        p.setup_ns / 1e3,
                        p.prepare_ns / 1e3,
                        p.encrypt_ns / 1e3,
                        p.encrypt_prepared_ns / 1e3,
                        p.encrypt_speedup(),
                        p.gen_token_ns / 1e3,
                        p.gen_token_prepared_ns / 1e3,
                        p.gen_token_speedup(),
                        p.query_decode_ns / 1e3,
                        p.query_batch_ns / 1e3,
                        p.query_speedup(),
                    );
                }
                // Store-lifecycle rows: what each backend charges for
                // churn, and what durability (WAL + fsync) adds.
                let churn = primitives::measure_churn(SEED);
                for c in &churn {
                    println!(
                        "churn[{}]: upsert {:.2} µs, remove+insert {:.2} µs, \
                         match {:.2} µs/record ({} users)",
                        c.backend,
                        c.upsert_ns / 1e3,
                        c.remove_insert_ns / 1e3,
                        c.match_per_record_ns / 1e3,
                        c.users,
                    );
                }
                // Serial-vs-lockstep kernel rows at every modulus size
                // (batch widths from --batch-width, default 1,4,8).
                let lockstep: Vec<_> = [32usize, 48, 64]
                    .iter()
                    .flat_map(|&bits| primitives::measure_lockstep(bits, &opts.batch_widths, SEED))
                    .collect();
                for l in &lockstep {
                    println!(
                        "lockstep[{} bit N, batch {}]: {:.0} -> {:.0} ns/product \
                         ({:.2}x, kernel {})",
                        l.modulus_bits,
                        l.batch,
                        l.serial_ns,
                        l.lockstep_ns,
                        l.speedup(),
                        l.kernel,
                    );
                }
                // End-to-end lockstep rows: the batched prepared
                // Encrypt/GenToken entry points vs their serial loops,
                // at every modulus size and --batch-width.
                let exp_batch: Vec<_> = [32usize, 48, 64]
                    .iter()
                    .flat_map(|&bits| primitives::measure_exp_batch(bits, &opts.batch_widths, SEED))
                    .collect();
                print_exp_batch(&exp_batch);
                let path = opts.out_dir.join("BENCH_primitives.json");
                let write = std::fs::create_dir_all(&opts.out_dir)
                    .and_then(|()| {
                        std::fs::write(
                            &path,
                            primitives::to_json(&rows, &phases, &churn, &lockstep, &exp_batch),
                        )
                    })
                    .map(|()| path);
                report(write);
            }
            "exp-batch" | "exp_batch" => {
                // Standalone Encrypt/GenToken batching rows — the fast
                // way to re-measure the lockstep-ladder win without
                // rerunning the full primitives sweep. Writes a side
                // artifact so it never clobbers BENCH_primitives.json.
                let exp_batch: Vec<_> = [32usize, 48, 64]
                    .iter()
                    .flat_map(|&bits| primitives::measure_exp_batch(bits, &opts.batch_widths, SEED))
                    .collect();
                print_exp_batch(&exp_batch);
                let path = opts.out_dir.join("BENCH_exp_batch.json");
                let write = std::fs::create_dir_all(&opts.out_dir)
                    .and_then(|()| {
                        std::fs::write(&path, primitives::to_json(&[], &[], &[], &[], &exp_batch))
                    })
                    .map(|()| path);
                report(write);
            }
            "scenario" | "scenarios" => {
                // The scenario matrix: scenario family x privacy level x
                // store backend, tracked (incremental regen) vs full
                // regeneration vs plaintext oracle. Mismatches fail the
                // run loudly -- these rows are correctness fixtures as
                // much as they are measurements.
                let config = sla_scenarios::ScenarioConfig::default();
                let levels = [
                    sla_scenarios::GranularityLevel(0),
                    sla_scenarios::GranularityLevel(2),
                ];
                let stores = ["sharded", "concurrent"];
                let rows =
                    scenarios::run_matrix(&opts.scenario_kinds, &levels, &stores, &config);
                print_scenarios(&rows);
                let mismatches: u64 = rows.iter().map(|r| r.mismatches).sum();
                assert_eq!(
                    mismatches, 0,
                    "scenario matrix: tracked vs full vs oracle divergence"
                );
                let path = opts.out_dir.join("BENCH_scenarios.json");
                let write = std::fs::create_dir_all(&opts.out_dir)
                    .and_then(|()| std::fs::write(&path, scenarios::to_json(&config, &rows)))
                    .map(|()| path);
                report(write);
            }
            other => eprintln!(
                "unknown figure '{other}' (expected fig7..fig14, primitives, exp-batch, or scenario)"
            ),
        }
        println!();
    }
}

fn report(result: std::io::Result<PathBuf>) {
    match result {
        Ok(path) => println!("-> wrote {}", path.display()),
        Err(e) => eprintln!("!! csv write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_widths_accept_powers_of_two() {
        assert_eq!(parse_batch_widths("8"), Ok(vec![8]));
        assert_eq!(parse_batch_widths("1, 4,8"), Ok(vec![1, 4, 8]));
        assert_eq!(parse_batch_widths("16"), Ok(vec![16]));
    }

    #[test]
    fn batch_width_zero_is_a_typed_error() {
        assert_eq!(parse_batch_widths("0"), Err(ArgError::Zero));
        assert_eq!(parse_batch_widths("4,0,8"), Err(ArgError::Zero));
    }

    #[test]
    fn scenarios_parse_and_dedupe() {
        use sla_scenarios::ScenarioKind;
        assert_eq!(parse_scenarios("moving"), Ok(vec![ScenarioKind::Moving]));
        assert_eq!(
            parse_scenarios("moving, mixed,moving"),
            Ok(vec![ScenarioKind::Moving, ScenarioKind::Mixed])
        );
        assert_eq!(
            parse_scenarios("burst,zipf"),
            Ok(vec![ScenarioKind::Burst, ScenarioKind::Zipf])
        );
    }

    #[test]
    fn unknown_scenario_is_a_typed_error() {
        assert_eq!(
            parse_scenarios("tornado"),
            Err(ArgError::UnknownScenario("tornado".into()))
        );
        assert_eq!(parse_scenarios(""), Err(ArgError::MissingScenario));
        assert_eq!(parse_scenarios(" , "), Err(ArgError::MissingScenario));
    }

    #[test]
    fn batch_width_non_power_of_two_is_a_typed_error() {
        assert_eq!(parse_batch_widths("6"), Err(ArgError::NotPowerOfTwo(6)));
        assert_eq!(parse_batch_widths("1,4,7"), Err(ArgError::NotPowerOfTwo(7)));
    }

    #[test]
    fn batch_width_garbage_is_a_typed_error() {
        assert_eq!(
            parse_batch_widths("four"),
            Err(ArgError::NotANumber("four".to_string()))
        );
        assert_eq!(
            parse_batch_widths(""),
            Err(ArgError::NotANumber(String::new()))
        );
        // The messages are what the operator sees — keep them loud.
        assert!(ArgError::Zero.to_string().contains("rejected"));
        assert!(ArgError::NotPowerOfTwo(6)
            .to_string()
            .contains("powers of two"));
    }
}
