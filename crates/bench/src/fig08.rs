//! **Figure 8** — Chicago crime dataset statistics: incidents per
//! category per month (synthetic stand-in for the CLEAR 2015 extract; see
//! DESIGN.md §5), plus the logistic-regression accuracy the paper quotes
//! alongside (92.9 %).

use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_datasets::{CrimeDataset, CrimeGeneratorConfig, CrimeRiskModel, TrainConfig};
use sla_grid::Grid;

/// The generated dataset plus trained model artifacts.
pub struct Fig08Output {
    /// The synthetic dataset.
    pub dataset: CrimeDataset,
    /// Incidents per (category, month).
    pub monthly: Vec<(sla_datasets::CrimeCategory, [usize; 12])>,
    /// Held-out December accuracy of the risk model.
    pub model_accuracy: f64,
}

/// Generates the dataset and trains the §7.1 risk model.
pub fn run(seed: u64) -> Fig08Output {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = CrimeDataset::generate(&CrimeGeneratorConfig::default(), &mut rng);
    let monthly = dataset.monthly_counts();
    let grid = Grid::chicago_downtown_32();
    let model = CrimeRiskModel::train(&dataset, &grid, TrainConfig::default());
    Fig08Output {
        dataset,
        monthly,
        model_accuracy: model.test_accuracy(),
    }
}

/// Renders the statistics table.
pub fn table(out: &Fig08Output) -> Table {
    let mut headers = vec!["category".to_string()];
    headers.extend((1..=12).map(|m| format!("m{m:02}")));
    headers.push("total".to_string());
    let mut t = Table::new(
        format!(
            "Fig 8: crime dataset statistics (synthetic CLEAR stand-in); model accuracy {:.1}%",
            out.model_accuracy * 100.0
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (cat, months) in &out.monthly {
        let mut row = vec![cat.name().to_string()];
        row.extend(months.iter().map(|c| c.to_string()));
        row.push(months.iter().sum::<usize>().to_string());
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_cover_all_categories_and_months() {
        let out = run(42);
        assert_eq!(out.monthly.len(), 4);
        let t = table(&out);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.headers.len(), 14);
        assert!(out.model_accuracy > 0.8);
    }
}
