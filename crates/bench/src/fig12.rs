//! **Figure 12** — varying grid granularity (`a = 0.95`, `b = 20`):
//! absolute pairings and improvement vs \[14\] for the Huffman scheme, per
//! grid size and alert radius. Shows that higher granularity raises
//! absolute cost and shrinks the small-zone improvement (§7.2).

use crate::common::{sigmoid_probs, zones_to_cells};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_core::metrics::evaluate_workload;
use sla_datasets::RadiusSweep;
use sla_encoding::{CellCodebook, EncoderKind};
use sla_grid::{BoundingBox, Grid, ZoneSampler};

/// One (grid size × radius) cell of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Point {
    /// Grid side (grid is side×side).
    pub side: usize,
    /// Radius label.
    pub radius: String,
    /// Huffman pairing count.
    pub huffman_pairings: u64,
    /// Basic fixed-length pairing count.
    pub basic_pairings: u64,
    /// Improvement (%) of Huffman over basic.
    pub improvement: f64,
}

/// Grid sides evaluated (8×8 … 64×64).
pub const SIDES: [usize; 4] = [8, 16, 32, 64];

/// Radii evaluated (meters).
pub const RADII: [f64; 5] = [20.0, 100.0, 300.0, 1_000.0, 2_000.0];

/// Runs the granularity sweep.
pub fn run(seed: u64, zones_per_radius: usize, n_ciphertexts: u64) -> Vec<Fig12Point> {
    run_with(seed, zones_per_radius, n_ciphertexts, false)
}

/// [`run`] with the parallel-evaluation knob (`repro --parallel`).
pub fn run_with(
    seed: u64,
    zones_per_radius: usize,
    n_ciphertexts: u64,
    parallel: bool,
) -> Vec<Fig12Point> {
    let mut out = Vec::new();
    for &side in &SIDES {
        let grid = Grid::new(BoundingBox::chicago_downtown(), side, side);
        let probs = sigmoid_probs(grid.n_cells(), 0.95, 20.0, seed);
        let sampler = ZoneSampler::new(grid, &probs);
        let mut rng = StdRng::seed_from_u64(seed ^ (side as u64) << 4);
        let workloads = RadiusSweep {
            radii_m: RADII.to_vec(),
            zones_per_radius,
        }
        .generate(&sampler, &mut rng);

        let huffman = CellCodebook::build(EncoderKind::Huffman, probs.raw());
        let basic = CellCodebook::build(EncoderKind::BasicFixed, probs.raw());
        let eval_point = |w: &sla_datasets::Workload| {
            let zones = zones_to_cells(w);
            let hc = evaluate_workload(&huffman, &w.label, &zones, n_ciphertexts);
            let bc = evaluate_workload(&basic, &w.label, &zones, n_ciphertexts);
            Fig12Point {
                side,
                radius: w.label.clone(),
                huffman_pairings: hc.pairings,
                basic_pairings: bc.pairings,
                improvement: hc.improvement_vs(&bc),
            }
        };
        if parallel {
            use rayon::prelude::*;
            out.extend(workloads.par_iter().map(eval_point).collect::<Vec<_>>());
        } else {
            out.extend(workloads.iter().map(eval_point));
        }
    }
    out
}

/// Absolute-cost table: rows = radius, columns = grid side.
pub fn table_absolute(points: &[Fig12Point]) -> Table {
    pivot(points, "Fig 12a: Huffman pairings by granularity", |p| {
        p.huffman_pairings.to_string()
    })
}

/// Improvement table: rows = radius, columns = grid side.
pub fn table_improvement(points: &[Fig12Point]) -> Table {
    pivot(
        points,
        "Fig 12b: improvement (%) vs basic by granularity",
        |p| format!("{:.1}", p.improvement),
    )
}

fn pivot(points: &[Fig12Point], title: &str, cell: impl Fn(&Fig12Point) -> String) -> Table {
    let mut headers = vec!["radius".to_string()];
    headers.extend(SIDES.iter().map(|s| format!("{s}x{s}")));
    let mut t = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &r in &RADII {
        let label = format!("r={r:.0}m");
        let mut row = vec![label.clone()];
        for &side in &SIDES {
            let p = points
                .iter()
                .find(|p| p.side == side && p.radius == label)
                .expect("complete sweep");
            row.push(cell(p));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_cost_grows_with_granularity() {
        // §7.2: "higher grid granularities lead to higher performance
        // overhead ... since more cells need to be encoded and encrypted,
        // and thus code lengths increase."
        let points = run(3, 10, 100);
        for &r in &RADII {
            let label = format!("r={r:.0}m");
            let costs: Vec<u64> = SIDES
                .iter()
                .map(|&s| {
                    points
                        .iter()
                        .find(|p| p.side == s && p.radius == label)
                        .unwrap()
                        .huffman_pairings
                })
                .collect();
            assert!(
                costs.windows(2).all(|w| w[1] >= w[0]),
                "{label}: costs not monotone {costs:?}"
            );
        }
    }

    #[test]
    fn tables_complete() {
        let points = run(3, 3, 10);
        let a = table_absolute(&points);
        let b = table_improvement(&points);
        assert_eq!(a.rows.len(), RADII.len());
        assert_eq!(b.rows.len(), RADII.len());
        assert_eq!(a.headers.len(), 1 + SIDES.len());
    }
}
