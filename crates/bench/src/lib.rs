//! # sla-bench
//!
//! Experiment harness reproducing **every figure of §7** of the paper.
//! Each `figNN` module exposes a pure function returning the figure's data
//! series; the `repro` binary prints them as tables and writes
//! `results/figNN.csv`, and the Criterion benches time the underlying
//! computations.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig07`] | LE (length excess) numeric vs analytic bound |
//! | [`fig08`] | Chicago crime dataset statistics |
//! | [`fig09`] | Real-dataset evaluation (pairings & improvement vs radius) |
//! | [`fig10`] | Synthetic sweep over sigmoid (a, b) |
//! | [`fig11`] | Mixed workloads W1–W4 |
//! | [`fig12`] | Varying grid granularity |
//! | [`fig13`] | Average-to-maximum code length ratio |
//! | [`fig14`] | System initialization time |

#![forbid(unsafe_code)]

pub mod common;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod histogram;
pub mod primitives;
pub mod scenarios;
pub mod table;

/// Number of stored ciphertexts the cost model charges each alert against
/// (a population size; improvement percentages are invariant to it).
pub const N_CIPHERTEXTS: u64 = 10_000;

/// Master seed for every experiment (reproducibility).
pub const SEED: u64 = 20_210_323; // EDBT 2021 conference date
