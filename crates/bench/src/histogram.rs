//! A fixed-bucket latency histogram for the service-plane load
//! generator (`sla-loadgen`) and any other consumer that needs cheap
//! high-dynamic-range quantiles.
//!
//! ## Layout
//!
//! Values are bucketed HdrHistogram-style with a 4-bit mantissa: values
//! below 16 get one exact bucket each; above that, each power-of-two
//! range is split into 16 linear sub-buckets, so every recorded value
//! lands in a bucket whose width is at most 1/16 (≈ 6.25 %) of the
//! value. The whole `u64` range fits in [`N_BUCKETS`] buckets
//! (< 8 KiB), `record` is branch-light integer arithmetic with **no
//! allocation**, and merging two histograms is element-wise addition —
//! exactly what per-thread recording needs.
//!
//! Quantiles report the **upper bound** of the bucket holding the
//! requested rank (conservative: a reported p99 is never below the true
//! p99), except the maximum, which is tracked exactly.

/// Number of exact unit buckets at the bottom (values `0..16`).
const UNIT_BUCKETS: usize = 16;

/// Sub-buckets per power-of-two range (the 4-bit mantissa).
const SUB_BUCKETS: usize = 16;

/// Total bucket count covering the whole `u64` range: 16 exact unit
/// buckets plus 16 sub-buckets for each exponent 4..=63.
pub const N_BUCKETS: usize = UNIT_BUCKETS + SUB_BUCKETS * 60;

/// A fixed-bucket histogram over `u64` samples (nanoseconds, by
/// convention, but the structure is unit-agnostic).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; N_BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// The bucket a value lands in.
fn bucket_of(v: u64) -> usize {
    if v < UNIT_BUCKETS as u64 {
        return v as usize;
    }
    // Exponent of the value's power-of-two range (>= 4 here) and the 4
    // mantissa bits below the leading bit.
    let e = 63 - v.leading_zeros() as usize;
    let mantissa = ((v >> (e - 4)) & 0xF) as usize;
    UNIT_BUCKETS + SUB_BUCKETS * (e - 4) + mantissa
}

/// The largest value mapping to `bucket` (the inverse of [`bucket_of`]'s
/// upper edge) — what quantiles report.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < UNIT_BUCKETS {
        return bucket as u64;
    }
    let e = (bucket - UNIT_BUCKETS) / SUB_BUCKETS + 4;
    let mantissa = ((bucket - UNIT_BUCKETS) % SUB_BUCKETS) as u128;
    // Range start 2^e, sub-bucket width 2^(e-4); upper edge is the last
    // value of the sub-bucket (in u128: the top bucket's edge is
    // 2^63 + 16·2^59 - 1 = 2^64 - 1, which overflows u64 mid-formula).
    let upper = (1u128 << e) + (mantissa + 1) * (1u128 << (e - 4)) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; N_BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, exact (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact sum, not
    /// bucket-approximated; 0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `ceil(q · count)` (so the true
    /// quantile is never above the reported one by more than the bucket
    /// width, ≈ 6.25 %). `q >= 1` returns the exact maximum; an empty
    /// histogram returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The exact extremes beat the bucket edge when the rank
                // falls in the first or last occupied bucket.
                return bucket_upper(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Element-wise merge of another histogram into this one — how
    /// per-thread recordings combine into the report.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b < N_BUCKETS, "{v} -> {b}");
            assert!(b >= prev, "bucket must not decrease at {v}");
            assert!(bucket_upper(b) >= v, "upper edge below the value {v}");
            prev = b;
        }
        // The top bucket's upper edge is u64::MAX.
        assert_eq!(bucket_upper(bucket_of(u64::MAX)), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100ns .. 1ms
        }
        for (q, exact) in [(0.50, 500_000u64), (0.99, 990_000), (0.999, 999_000)] {
            let got = h.quantile(q);
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            assert!(
                got as f64 <= exact as f64 * 1.0626,
                "q={q}: {got} overshoots {exact} by more than a bucket"
            );
        }
        assert_eq!(h.quantile(1.0), 1_000_000);
        let mean = h.mean();
        assert!((mean - 500_050.0).abs() < 1.0, "{mean}");
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let v = i * i + 17;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
