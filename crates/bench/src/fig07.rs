//! **Figure 7** — upper bound of `LE` (length excess of variable-length
//! over fixed-length encoding) for binary Huffman codes: numeric values vs
//! the analytic golden-ratio bound (Eq. 13). Grid probabilities use the
//! paper's footnote-1 parameters: sigmoid `a = 0.95`, `b = 20`.

use crate::common::sigmoid_probs;
use crate::table::Table;
use sla_encoding::huffman::build_huffman_tree;
use sla_encoding::theory::{fixed_rl, le_upper_bound_binary, length_excess};

/// One data point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07Row {
    /// Number of grid cells.
    pub n: usize,
    /// Huffman reference length.
    pub rl_huffman: usize,
    /// Fixed-length reference length `⌈log2 n⌉`.
    pub rl_fixed: usize,
    /// Numeric `LE = RL_huffman − RL_fixed`.
    pub le_numeric: i64,
    /// Analytic bound `log_φ(1/p_min) − ⌈log2 n⌉` (Eq. 13).
    pub le_bound: f64,
}

/// Computes the figure's series.
pub fn run(seed: u64) -> Vec<Fig07Row> {
    [16usize, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        .iter()
        .map(|&n| {
            let probs = sigmoid_probs(n, 0.95, 20.0, seed);
            let norm = probs.normalized();
            let tree = build_huffman_tree(norm.as_slice());
            let rl = tree.reference_length();
            let p_min = norm.iter().cloned().fold(f64::INFINITY, f64::min);
            Fig07Row {
                n,
                rl_huffman: rl,
                rl_fixed: fixed_rl(n, 2),
                le_numeric: length_excess(rl, n, 2),
                le_bound: le_upper_bound_binary(p_min, n),
            }
        })
        .collect()
}

/// Renders the series as a table.
pub fn table(rows: &[Fig07Row]) -> Table {
    let mut t = Table::new(
        "Fig 7: LE upper bound, binary Huffman (sigmoid a=0.95, b=20)",
        &["n", "RL_huffman", "RL_fixed", "LE_numeric", "LE_bound"],
    );
    for r in rows {
        t.push_row(vec![
            r.n.to_string(),
            r.rl_huffman.to_string(),
            r.rl_fixed.to_string(),
            r.le_numeric.to_string(),
            format!("{:.2}", r.le_bound),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_le_within_bound() {
        for row in run(7) {
            assert!(
                row.le_numeric as f64 <= row.le_bound + 1e-9,
                "n={}: numeric {} exceeds bound {:.2}",
                row.n,
                row.le_numeric,
                row.le_bound
            );
            assert!(
                row.le_numeric >= 0,
                "Huffman RL below fixed RL at n={}",
                row.n
            );
        }
    }

    #[test]
    fn table_shape() {
        let rows = run(7);
        let t = table(&rows);
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.headers.len(), 5);
    }
}
