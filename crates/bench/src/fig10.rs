//! **Figure 10** — synthetic-dataset evaluation: the twelve panels sweep
//! sigmoid inflection `a ∈ {0.9, 0.99}` and gradient `b ∈ {10, 100, 200}`,
//! reporting absolute pairings and improvement vs \[14\] per radius.

use crate::common::sigmoid_probs;
use crate::fig09::{sweep_encoders_with, SweepResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_datasets::RadiusSweep;
use sla_grid::{Grid, ZoneSampler};

/// One (a, b) panel.
pub struct Fig10Panel {
    /// Sigmoid inflection point.
    pub a: f64,
    /// Sigmoid gradient.
    pub b: f64,
    /// The radius sweep result.
    pub result: SweepResult,
}

/// The paper's (a, b) combinations.
pub const PANELS: [(f64, f64); 6] = [
    (0.9, 10.0),
    (0.9, 100.0),
    (0.9, 200.0),
    (0.99, 10.0),
    (0.99, 100.0),
    (0.99, 200.0),
];

/// Runs all panels on the default 32×32 grid.
pub fn run(seed: u64, zones_per_radius: usize, n_ciphertexts: u64) -> Vec<Fig10Panel> {
    run_with(seed, zones_per_radius, n_ciphertexts, false)
}

/// [`run`] with the parallel-evaluation knob (`repro --parallel`).
pub fn run_with(
    seed: u64,
    zones_per_radius: usize,
    n_ciphertexts: u64,
    parallel: bool,
) -> Vec<Fig10Panel> {
    PANELS
        .iter()
        .map(|&(a, b)| run_panel_with(a, b, seed, zones_per_radius, n_ciphertexts, parallel))
        .collect()
}

/// Runs a single (a, b) panel.
pub fn run_panel(
    a: f64,
    b: f64,
    seed: u64,
    zones_per_radius: usize,
    n_ciphertexts: u64,
) -> Fig10Panel {
    run_panel_with(a, b, seed, zones_per_radius, n_ciphertexts, false)
}

/// [`run_panel`] with the parallel-evaluation knob.
pub fn run_panel_with(
    a: f64,
    b: f64,
    seed: u64,
    zones_per_radius: usize,
    n_ciphertexts: u64,
    parallel: bool,
) -> Fig10Panel {
    let grid = Grid::chicago_downtown_32();
    let probs = sigmoid_probs(grid.n_cells(), a, b, seed);
    let sampler = ZoneSampler::new(grid, &probs);
    let mut rng = StdRng::seed_from_u64(seed ^ ((a * 100.0) as u64) ^ ((b as u64) << 8));
    let sweep = RadiusSweep {
        zones_per_radius,
        ..RadiusSweep::default()
    };
    let workloads = sweep.generate(&sampler, &mut rng);
    Fig10Panel {
        a,
        b,
        result: sweep_encoders_with(&probs.normalized(), &workloads, n_ciphertexts, parallel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_encoding::EncoderKind;

    #[test]
    fn higher_inflection_boosts_huffman_gain() {
        // §7.2: "a higher inflection point setting results in a more
        // skewed distribution ... leads to a higher performance gain for
        // Huffman encoding".
        let lo = run_panel(0.9, 100.0, 5, 20, 100);
        let hi = run_panel(0.99, 100.0, 5, 20, 100);
        let idx = |r: &SweepResult| {
            r.encoders
                .iter()
                .position(|k| *k == EncoderKind::Huffman)
                .unwrap()
        };
        // average improvement over the three smallest radii
        let avg = |p: &Fig10Panel| {
            let i = idx(&p.result);
            (0..3).map(|r| p.result.improvement(i, r)).sum::<f64>() / 3.0
        };
        let (g_lo, g_hi) = (avg(&lo), avg(&hi));
        assert!(
            g_hi > g_lo,
            "a=0.99 gain {g_hi:.1}% should exceed a=0.9 gain {g_lo:.1}%"
        );
        assert!(g_hi > 0.0);
    }

    #[test]
    fn all_panels_produce_data() {
        let panels = run(5, 3, 100);
        assert_eq!(panels.len(), 6);
        for p in &panels {
            assert_eq!(p.result.labels.len(), 10);
        }
    }
}
