//! **Figure 14** — system initialization time: building the codebook
//! (prefix tree + Algorithm 1 indexes + coding tree) for growing grid
//! sizes. A one-time setup cost ("the process is only run when
//! initializing the system", §7.2).

use crate::common::sigmoid_probs;
use crate::table::Table;
use sla_encoding::{CellCodebook, EncoderKind};
use std::time::Instant;

/// One measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Grid side.
    pub side: usize,
    /// Init time per encoder, milliseconds, in [`ENCODERS`] order.
    pub millis: Vec<f64>,
}

/// Encoders timed.
pub const ENCODERS: [EncoderKind; 3] = [
    EncoderKind::Huffman,
    EncoderKind::Balanced,
    EncoderKind::BasicFixed,
];

/// Grid sides evaluated.
pub const SIDES: [usize; 5] = [8, 16, 32, 64, 128];

/// Runs the initialization-time sweep.
pub fn run(seed: u64) -> Vec<Fig14Row> {
    SIDES
        .iter()
        .map(|&side| {
            let probs = sigmoid_probs(side * side, 0.95, 20.0, seed);
            let millis = ENCODERS
                .iter()
                .map(|&kind| {
                    let start = Instant::now();
                    let cb = CellCodebook::build(kind, probs.raw());
                    let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
                    std::hint::black_box(&cb);
                    elapsed
                })
                .collect();
            Fig14Row { side, millis }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Fig14Row]) -> Table {
    let mut headers = vec!["grid".to_string(), "n".to_string()];
    headers.extend(ENCODERS.iter().map(|k| format!("{}_ms", k.name())));
    let mut t = Table::new(
        "Fig 14: system initialization time (codebook construction)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for r in rows {
        let mut row = vec![format!("{0}x{0}", r.side), (r.side * r.side).to_string()];
        row.extend(r.millis.iter().map(|m| format!("{m:.2}")));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_completes_quickly_at_all_sizes() {
        let rows = run(14);
        assert_eq!(rows.len(), SIDES.len());
        // One-time setup stays far below the paper's "minutes" worst case
        // on modern hardware — generous bound to avoid CI flakiness.
        for r in &rows {
            for (&ms, kind) in r.millis.iter().zip(ENCODERS.iter()) {
                assert!(
                    ms < 60_000.0,
                    "{} init for {}x{} took {ms:.0} ms",
                    kind.name(),
                    r.side,
                    r.side
                );
            }
        }
    }
}
