//! Property coverage for the `StoredSubscription` binary codec:
//!
//! * arbitrary records encode → decode identically (through both the
//!   bare payload and the CRC frame), and
//! * **every** single-byte corruption of a frame is rejected by the CRC
//!   instead of being decoded (CRC-32 detects all single-byte errors by
//!   construction; this pins that the framing actually routes through
//!   it, including the length field).

use proptest::prelude::*;
use sla_bigint::BigUint;
use sla_hve::Ciphertext;
use sla_pairing::{GElem, GtElem};
use sla_persist::codec::{
    decode_op, decode_record, encode_op, encode_record, frame, read_frame, FrameRead,
};
use sla_persist::{Record, WalOp};

/// Builds a record deterministically from a pool of raw words: multi-limb
/// logs (0–3 limbs each, so zero, single-limb and wide values all occur)
/// and a width in `0..=4`.
struct Pool<'a> {
    raw: &'a [u64],
    i: usize,
}

impl Pool<'_> {
    fn next(&mut self) -> u64 {
        let v = self.raw[self.i % self.raw.len()].wrapping_add(self.i as u64);
        self.i += 1;
        v
    }

    fn big(&mut self) -> BigUint {
        let n = (self.next() % 4) as usize;
        BigUint::from_limbs((0..n).map(|_| self.next()).collect())
    }
}

fn record_from(raw: &[u64]) -> Record {
    let mut pool = Pool { raw, i: 0 };
    let user_id = pool.next();
    let epoch = pool.next();
    let expected = GtElem::from_canonical_log(pool.big());
    let width = (pool.next() % 5) as usize;
    let c_prime = GtElem::from_canonical_log(pool.big());
    let c0 = GElem::from_canonical_log(pool.big());
    let c = (0..width)
        .map(|_| {
            (
                GElem::from_canonical_log(pool.big()),
                GElem::from_canonical_log(pool.big()),
            )
        })
        .collect();
    Record {
        user_id,
        epoch,
        expected,
        ciphertext: Ciphertext::from_parts(c_prime, c0, c),
    }
}

fn op_from(raw: &[u64]) -> WalOp {
    match raw[0] % 4 {
        0 => WalOp::Upsert(record_from(&raw[1..])),
        1 => WalOp::Remove { user_id: raw[1] },
        2 => WalOp::EvictBefore { min_epoch: raw[1] },
        _ => WalOp::Epoch { epoch: raw[1] },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn records_roundtrip(raw in prop::collection::vec(any::<u64>(), 4..32)) {
        let record = record_from(&raw);
        let mut payload = Vec::new();
        encode_record(&record, &mut payload);
        prop_assert_eq!(decode_record(&payload).unwrap(), record.clone());

        // And through the frame.
        let framed = frame(&payload);
        match read_frame(&framed) {
            FrameRead::Frame { payload: p, rest } => {
                prop_assert!(rest.is_empty());
                prop_assert_eq!(decode_record(p).unwrap(), record);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn ops_roundtrip(raw in prop::collection::vec(any::<u64>(), 4..32)) {
        let op = op_from(&raw);
        let mut payload = Vec::new();
        encode_op(&op, &mut payload);
        prop_assert_eq!(decode_op(&payload).unwrap(), op);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected(
        raw in prop::collection::vec(any::<u64>(), 4..20),
        flip_seed in 1u8..,
    ) {
        let op = op_from(&raw);
        let mut payload = Vec::new();
        encode_op(&op, &mut payload);
        let framed = frame(&payload);
        for i in 0..framed.len() {
            // A nonzero XOR mask derived from the position so different
            // bit patterns are exercised across positions and cases.
            let mask = (i as u8).wrapping_mul(0x9d) ^ flip_seed;
            let mask = if mask == 0 { 0x80 } else { mask };
            let mut corrupted = framed.clone();
            corrupted[i] ^= mask;
            prop_assert!(
                matches!(read_frame(&corrupted), FrameRead::Torn { .. }),
                "byte {} mask {:#04x} was not rejected",
                i,
                mask
            );
        }
    }
}

/// Exhaustive (all 255 wrong values per byte) corruption sweep on one
/// representative frame — slower, so a plain test with a small record.
#[test]
fn exhaustive_corruption_sweep_on_one_frame() {
    let record = record_from(&[7, 1, 2, 3, 4, 5]);
    let mut payload = Vec::new();
    encode_op(&WalOp::Upsert(record), &mut payload);
    let framed = frame(&payload);
    for i in 0..framed.len() {
        for mask in 1u8..=255 {
            let mut corrupted = framed.clone();
            corrupted[i] ^= mask;
            assert!(
                matches!(read_frame(&corrupted), FrameRead::Torn { .. }),
                "byte {i} mask {mask:#04x} was not rejected"
            );
        }
    }
}
