//! Crash-recovery fault injection: a WAL truncated at **every byte
//! boundary** must recover exactly the state at the last complete frame
//! — never garbage, never an error, never a record from the torn
//! suffix. The `#[ignore]`d heavy variant sweeps every byte of a larger
//! log (CI runs it via `--include-ignored`); the default variant sweeps
//! every byte of the final record plus every frame boundary, which is
//! the window a real torn write lands in.

use sla_bigint::BigUint;
use sla_hve::Ciphertext;
use sla_pairing::{GElem, GtElem};
use sla_persist::codec::{encode_op, frame};
use sla_persist::wal::{replay_wal, wal_file_name, WalWriter};
use sla_persist::{DurableLog, FlushPolicy, LogOptions, Record, WalOp};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sla-persist-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record(user_id: u64, epoch: u64) -> Record {
    Record {
        user_id,
        epoch,
        expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
        ciphertext: Ciphertext::from_parts(
            GtElem::from_canonical_log(BigUint::from_limbs(vec![user_id, 3, user_id])),
            GElem::from_canonical_log(BigUint::from_u64(user_id * 13 + 5)),
            vec![
                (
                    GElem::from_canonical_log(BigUint::from_u64(user_id ^ 0xF0)),
                    GElem::from_canonical_log(BigUint::from_u128(u128::from(user_id) << 70)),
                ),
                (
                    GElem::from_canonical_log(BigUint::zero()),
                    GElem::from_canonical_log(BigUint::from_u64(user_id + 42)),
                ),
            ],
        ),
    }
}

fn sample_ops() -> Vec<WalOp> {
    vec![
        WalOp::Upsert(record(1, 0)),
        WalOp::Upsert(record(2, 0)),
        WalOp::Epoch { epoch: 1 },
        WalOp::Upsert(record(1, 1)),
        WalOp::Remove { user_id: 2 },
        WalOp::EvictBefore { min_epoch: 1 },
        WalOp::Upsert(record(9, 1)),
    ]
}

/// Writes `ops` as a generation-1 WAL and returns
/// `(path, frame_boundaries)` — byte offsets at which each frame
/// (header first) ends.
fn write_wal(dir: &std::path::Path, ops: &[WalOp]) -> (PathBuf, Vec<u64>) {
    let mut wal = WalWriter::create(dir, 1, FlushPolicy::Manual).unwrap();
    for op in ops {
        wal.append(op).unwrap();
    }
    wal.sync().unwrap();
    let path = wal.path().to_path_buf();
    drop(wal);

    // Recompute the framing to find each boundary: header (16-byte
    // payload => 24-byte frame) then one frame per op.
    let mut boundaries = vec![24u64];
    let mut offset = 24u64;
    for op in ops {
        let mut payload = Vec::new();
        encode_op(op, &mut payload);
        offset += frame(&payload).len() as u64;
        boundaries.push(offset);
    }
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        offset,
        "boundary bookkeeping disagrees with the file"
    );
    (path, boundaries)
}

/// Asserts that truncating the WAL to `cut` bytes recovers exactly the
/// ops whose frames are fully contained in the prefix.
fn assert_recovery_at(
    original: &[u8],
    boundaries: &[u64],
    ops: &[WalOp],
    dir: &std::path::Path,
    cut: u64,
) {
    let path = dir.join(wal_file_name(1));
    std::fs::write(&path, &original[..cut as usize]).unwrap();
    let replay = replay_wal(&path, 1).unwrap();
    // Number of op frames fully contained in the prefix (boundaries[0]
    // is the header; boundaries[i] the end of op i-1).
    let complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();
    assert_eq!(
        replay.ops,
        ops[..complete].to_vec(),
        "cut at byte {cut}: expected exactly the first {complete} ops"
    );
    // The last frame boundary at or before the cut (0 when even the
    // header frame is torn).
    let expected_valid = boundaries.iter().copied().rfind(|&b| b <= cut).unwrap_or(0);
    assert_eq!(replay.valid_len, expected_valid, "cut at byte {cut}");
    assert_eq!(
        replay.torn.is_some(),
        cut != expected_valid,
        "cut at byte {cut}: torn flag"
    );
}

#[test]
fn truncation_at_every_byte_of_the_final_record_recovers_prefix() {
    let dir = temp_dir("final-record");
    let ops = sample_ops();
    let (path, boundaries) = write_wal(&dir, &ops);
    let original = std::fs::read(&path).unwrap();

    // Every byte boundary inside the final record's frame...
    let last_start = boundaries[boundaries.len() - 2];
    let last_end = *boundaries.last().unwrap();
    for cut in last_start..=last_end {
        assert_recovery_at(&original, &boundaries, &ops, &dir, cut);
    }
    // ...plus every frame boundary of the whole log (clean cuts).
    for &cut in &boundaries {
        assert_recovery_at(&original, &boundaries, &ops, &dir, cut);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_resumes_appending_after_any_final_record_truncation() {
    let dir = temp_dir("resume");
    let ops = sample_ops();
    let (path, boundaries) = write_wal(&dir, &ops);
    let original = std::fs::read(&path).unwrap();

    let last_start = boundaries[boundaries.len() - 2];
    let last_end = *boundaries.last().unwrap();
    // A representative spread of torn positions (every 5th byte).
    for cut in (last_start..last_end).step_by(5) {
        std::fs::write(&path, &original[..cut as usize]).unwrap();
        let complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();
        // Full-subsystem recovery: DurableLog truncates the torn tail
        // and appends continue on a frame boundary.
        let (log, state) = DurableLog::open(
            &dir,
            LogOptions {
                flush: FlushPolicy::EveryOp,
                ..LogOptions::default()
            },
        )
        .unwrap();
        assert_eq!(state.replayed_ops, complete, "cut {cut}");
        // Every cut in this range lands mid-frame except the exact
        // frame boundary at `last_start`.
        assert_eq!(state.torn_tail, cut != last_start, "cut {cut}");
        log.append(&WalOp::Upsert(record(77, 9)));
        log.sync().unwrap();
        drop(log);
        let replay = replay_wal(&path, 1).unwrap();
        assert_eq!(replay.ops.len(), complete + 1, "cut {cut}");
        assert_eq!(replay.ops[complete], WalOp::Upsert(record(77, 9)));
        assert!(replay.torn.is_none());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The heavy sweep: every byte boundary of the whole file, on a longer
/// log. ~minutes of work in debug builds, so `#[ignore]`d locally; CI
/// runs it in release via `--include-ignored`.
#[test]
#[ignore = "exhaustive byte sweep; CI runs it via --include-ignored"]
fn truncation_at_every_byte_of_the_whole_wal_recovers_prefix() {
    let dir = temp_dir("whole-wal");
    let mut ops = Vec::new();
    for round in 0..6u64 {
        for id in 0..4 {
            ops.push(WalOp::Upsert(record(id, round)));
        }
        ops.push(WalOp::Epoch { epoch: round + 1 });
        if round % 2 == 1 {
            ops.push(WalOp::EvictBefore { min_epoch: round });
            ops.push(WalOp::Remove { user_id: round % 4 });
        }
    }
    let (path, boundaries) = write_wal(&dir, &ops);
    let original = std::fs::read(&path).unwrap();
    for cut in 0..=original.len() as u64 {
        assert_recovery_at(&original, &boundaries, &ops, &dir, cut);
    }
    let _ = path;
    std::fs::remove_dir_all(&dir).unwrap();
}
