//! Crash-recovery fault injection, per lane: a shard's WAL truncated at
//! **every byte boundary** must recover exactly the state at the last
//! complete frame — never garbage, never an error, never a record from
//! the torn suffix — while every *other* lane recovers in full. A
//! corrupted snapshot page in any lane must surface as a typed
//! corruption error, never as silently shorter state. The `#[ignore]`d
//! heavy variant sweeps every byte of every lane's WAL (CI runs it via
//! `--include-ignored`); the default variants sweep every byte of each
//! lane's final record plus every frame boundary, which is the window a
//! real torn write lands in.

use sla_bigint::BigUint;
use sla_hve::Ciphertext;
use sla_pairing::{GElem, GtElem};
use sla_persist::codec::{encode_op, frame};
use sla_persist::sharded::shard_dir_name;
use sla_persist::wal::{replay_wal, wal_file_name, WalWriter};
use sla_persist::{FlushPolicy, LogOptions, Record, ShardedWal, WalOp};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 3;

fn route(user_id: u64, shards: usize) -> usize {
    (user_id % shards as u64) as usize
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sla-persist-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record(user_id: u64, epoch: u64) -> Record {
    Record {
        user_id,
        epoch,
        expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
        ciphertext: Ciphertext::from_parts(
            GtElem::from_canonical_log(BigUint::from_limbs(vec![user_id, 3, user_id])),
            GElem::from_canonical_log(BigUint::from_u64(user_id * 13 + 5)),
            vec![
                (
                    GElem::from_canonical_log(BigUint::from_u64(user_id ^ 0xF0)),
                    GElem::from_canonical_log(BigUint::from_u128(u128::from(user_id) << 70)),
                ),
                (
                    GElem::from_canonical_log(BigUint::zero()),
                    GElem::from_canonical_log(BigUint::from_u64(user_id + 42)),
                ),
            ],
        ),
    }
}

/// Reference fold with the lane's replay semantics, for computing the
/// expected surviving records of an op prefix.
fn fold(ops: &[WalOp]) -> Vec<Record> {
    let mut by_user: BTreeMap<u64, Record> = BTreeMap::new();
    for op in ops {
        match op {
            WalOp::Upsert(r) => {
                by_user.insert(r.user_id, r.clone());
            }
            WalOp::Remove { user_id } => {
                by_user.remove(user_id);
            }
            WalOp::EvictBefore { min_epoch } => {
                by_user.retain(|_, r| r.epoch >= *min_epoch);
            }
            WalOp::Epoch { .. } => {}
        }
    }
    by_user.into_values().collect()
}

/// A short mixed op sequence for lane `shard` (all user ids route
/// there under `route` with [`SHARDS`] lanes).
fn lane_ops(shard: usize) -> Vec<WalOp> {
    let s = shard as u64;
    let n = SHARDS as u64;
    vec![
        WalOp::Upsert(record(s, 0)),
        WalOp::Upsert(record(s + n, 0)),
        WalOp::Remove { user_id: s },
        WalOp::Upsert(record(s + 2 * n, 1)),
        WalOp::EvictBefore { min_epoch: 1 },
        WalOp::Upsert(record(s + 3 * n, 1)),
    ]
}

fn wide_options() -> LogOptions {
    LogOptions {
        flush: FlushPolicy::EveryOp,
        // Never trigger compaction mid-test: these tests inject faults
        // into hand-positioned WAL bytes.
        compact_after_ops: 1 << 20,
    }
}

/// Opens a fresh 3-lane sharded log at `dir`, appends each lane's
/// [`lane_ops`], and returns each lane's WAL frame boundaries — byte
/// offsets at which each frame (header first) ends.
fn build_sharded(dir: &Path) -> Vec<Vec<u64>> {
    let (wal, recovered) = ShardedWal::open(dir, SHARDS, route, wide_options()).unwrap();
    assert!(recovered.records.is_empty());
    for shard in 0..SHARDS {
        for op in lane_ops(shard) {
            wal.append(shard, &op);
        }
    }
    wal.sync().unwrap();
    drop(wal);

    (0..SHARDS)
        .map(|shard| {
            // Recompute the framing to find each boundary: header
            // (16-byte payload => 24-byte frame) then one frame per op.
            let mut boundaries = vec![24u64];
            let mut offset = 24u64;
            for op in &lane_ops(shard) {
                let mut payload = Vec::new();
                encode_op(op, &mut payload);
                offset += frame(&payload).len() as u64;
                boundaries.push(offset);
            }
            let path = dir.join(shard_dir_name(shard)).join(wal_file_name(1));
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                offset,
                "lane {shard}: boundary bookkeeping disagrees with the file"
            );
            boundaries
        })
        .collect()
}

/// Truncates lane `shard`'s WAL to `cut` bytes (restoring it from
/// `original` first), reopens the whole sharded log, and asserts it
/// recovers exactly the other lanes in full plus this lane's longest
/// complete op prefix.
fn assert_sharded_recovery_at(
    dir: &Path,
    shard: usize,
    original: &[u8],
    boundaries: &[u64],
    cut: u64,
) {
    let path = dir.join(shard_dir_name(shard)).join(wal_file_name(1));
    std::fs::write(&path, &original[..cut as usize]).unwrap();

    let (wal, recovered) = ShardedWal::open(dir, SHARDS, route, wide_options()).unwrap();
    drop(wal);

    // Number of op frames fully contained in the prefix (boundaries[0]
    // is the header; boundaries[i] the end of op i-1).
    let complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();
    let mut expected: Vec<Record> = (0..SHARDS)
        .flat_map(|s| {
            let ops = lane_ops(s);
            if s == shard {
                fold(&ops[..complete])
            } else {
                fold(&ops)
            }
        })
        .collect();
    expected.sort_unstable_by_key(|r| r.user_id);
    assert_eq!(
        recovered.records, expected,
        "lane {shard} cut at byte {cut}: expected exactly the first {complete} ops"
    );
    let expected_replayed = (SHARDS - 1) * lane_ops(shard).len() + complete;
    assert_eq!(
        recovered.replayed_ops, expected_replayed,
        "lane {shard} cut at byte {cut}"
    );
    // An empty file is a clean (if early) crash point: there is no
    // partial frame to truncate, so nothing reads as torn.
    let clean = cut == 0 || boundaries.contains(&cut);
    assert_eq!(
        recovered.torn_tail, !clean,
        "lane {shard} cut at byte {cut}: torn flag"
    );
    // Recovery truncated the torn suffix away; the file now ends at the
    // last complete frame (or is recreated at the header when even the
    // header frame was torn).
    let expected_valid = boundaries
        .iter()
        .copied()
        .rfind(|&b| b <= cut)
        .unwrap_or(24);
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        expected_valid,
        "lane {shard} cut at byte {cut}: tail not truncated"
    );
}

#[test]
fn truncating_each_lane_at_every_final_record_byte_recovers_prefix() {
    let dir = temp_dir("lane-final-record");
    let all_boundaries = build_sharded(&dir);

    for (shard, boundaries) in all_boundaries.iter().enumerate() {
        let path = dir.join(shard_dir_name(shard)).join(wal_file_name(1));
        let original = std::fs::read(&path).unwrap();

        // Every byte boundary inside this lane's final record frame...
        let last_start = boundaries[boundaries.len() - 2];
        let last_end = *boundaries.last().unwrap();
        for cut in last_start..=last_end {
            assert_sharded_recovery_at(&dir, shard, &original, boundaries, cut);
        }
        // ...plus every frame boundary of the lane's whole log.
        for &cut in boundaries {
            assert_sharded_recovery_at(&dir, shard, &original, boundaries, cut);
        }
        // Restore the lane before injecting faults into the next one.
        std::fs::write(&path, &original).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_resumes_appending_after_a_torn_lane_tail() {
    let dir = temp_dir("lane-resume");
    let all_boundaries = build_sharded(&dir);

    let shard = 1;
    let boundaries = &all_boundaries[shard];
    let path = dir.join(shard_dir_name(shard)).join(wal_file_name(1));
    let original = std::fs::read(&path).unwrap();

    let last_start = boundaries[boundaries.len() - 2];
    let last_end = *boundaries.last().unwrap();
    // A representative spread of torn positions (every 5th byte).
    for cut in (last_start..last_end).step_by(5) {
        std::fs::write(&path, &original[..cut as usize]).unwrap();
        let complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();

        let (wal, recovered) = ShardedWal::open(&dir, SHARDS, route, wide_options()).unwrap();
        assert_eq!(
            recovered.replayed_ops,
            (SHARDS - 1) * lane_ops(shard).len() + complete,
            "cut {cut}"
        );
        // Every cut in this range lands mid-frame except the exact
        // frame boundary at `last_start`.
        assert_eq!(recovered.torn_tail, cut != last_start, "cut {cut}");

        // Appends continue on a frame boundary after the truncated tail.
        let resumed = record(shard as u64 + 12 * SHARDS as u64, 9);
        wal.append(shard, &WalOp::Upsert(resumed.clone()));
        wal.sync().unwrap();
        drop(wal);
        let replay = replay_wal(&path, 1).unwrap();
        assert_eq!(replay.ops.len(), complete + 1, "cut {cut}");
        assert_eq!(replay.ops[complete], WalOp::Upsert(resumed));
        assert!(replay.torn.is_none());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupting_any_lanes_snapshot_surfaces_a_typed_error() {
    let dir = temp_dir("lane-snapshot-corruption");
    build_sharded(&dir);

    // Compact every lane so each holds a paged snapshot.
    let (wal, _) = ShardedWal::open(&dir, SHARDS, route, wide_options()).unwrap();
    for shard in 0..SHARDS {
        wal.compact(shard, fold(&lane_ops(shard)), 1).unwrap();
    }
    wal.join_compactors().unwrap();
    drop(wal);

    for shard in 0..SHARDS {
        let snapshot = dir.join(shard_dir_name(shard)).join("snapshot.bin");
        let original = std::fs::read(&snapshot).unwrap();
        // A flipped byte inside the first page's body and inside the
        // final page's checksum trailer must both be caught.
        for &offset in &[64usize, original.len() - 1] {
            let mut corrupted = original.clone();
            corrupted[offset] ^= 0x40;
            std::fs::write(&snapshot, &corrupted).unwrap();
            let err = ShardedWal::open(&dir, SHARDS, route, wide_options()).unwrap_err();
            assert!(
                err.is_corrupt(),
                "lane {shard} offset {offset}: expected corruption, got {err}"
            );
        }
        // Restoring the page bytes restores the lane.
        std::fs::write(&snapshot, &original).unwrap();
        let (_, recovered) = ShardedWal::open(&dir, SHARDS, route, wide_options()).unwrap();
        assert_eq!(recovered.records.len(), 2 * SHARDS, "lane {shard}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The heavy sweep: every byte boundary of **every lane's** WAL. Minutes
/// of work in debug builds, so `#[ignore]`d locally; CI runs it in
/// release via `--include-ignored`.
#[test]
#[ignore = "exhaustive per-lane byte sweep; CI runs it via --include-ignored"]
fn truncation_at_every_byte_of_every_lane_recovers_prefix() {
    let dir = temp_dir("whole-lanes");
    let all_boundaries = build_sharded(&dir);
    for (shard, boundaries) in all_boundaries.iter().enumerate() {
        let path = dir.join(shard_dir_name(shard)).join(wal_file_name(1));
        let original = std::fs::read(&path).unwrap();
        for cut in 0..=original.len() as u64 {
            assert_sharded_recovery_at(&dir, shard, &original, boundaries, cut);
        }
        std::fs::write(&path, &original).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Raw single-WAL sweeps (the lane engine's substrate): replay_wal's
// byte-exact prefix semantics, independent of the lane/shard layers.
// ---------------------------------------------------------------------

fn sample_ops() -> Vec<WalOp> {
    vec![
        WalOp::Upsert(record(1, 0)),
        WalOp::Upsert(record(2, 0)),
        WalOp::Epoch { epoch: 1 },
        WalOp::Upsert(record(1, 1)),
        WalOp::Remove { user_id: 2 },
        WalOp::EvictBefore { min_epoch: 1 },
        WalOp::Upsert(record(9, 1)),
    ]
}

/// Writes `ops` as a generation-1 WAL and returns
/// `(path, frame_boundaries)` — byte offsets at which each frame
/// (header first) ends.
fn write_wal(dir: &Path, ops: &[WalOp]) -> (PathBuf, Vec<u64>) {
    let mut wal = WalWriter::create(dir, 1, FlushPolicy::Manual).unwrap();
    for op in ops {
        wal.append(op).unwrap();
    }
    wal.sync().unwrap();
    let path = wal.path().to_path_buf();
    drop(wal);

    let mut boundaries = vec![24u64];
    let mut offset = 24u64;
    for op in ops {
        let mut payload = Vec::new();
        encode_op(op, &mut payload);
        offset += frame(&payload).len() as u64;
        boundaries.push(offset);
    }
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        offset,
        "boundary bookkeeping disagrees with the file"
    );
    (path, boundaries)
}

/// Asserts that truncating the WAL to `cut` bytes replays exactly the
/// ops whose frames are fully contained in the prefix.
fn assert_replay_at(original: &[u8], boundaries: &[u64], ops: &[WalOp], dir: &Path, cut: u64) {
    let path = dir.join(wal_file_name(1));
    std::fs::write(&path, &original[..cut as usize]).unwrap();
    let replay = replay_wal(&path, 1).unwrap();
    let complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();
    assert_eq!(
        replay.ops,
        ops[..complete].to_vec(),
        "cut at byte {cut}: expected exactly the first {complete} ops"
    );
    let expected_valid = boundaries.iter().copied().rfind(|&b| b <= cut).unwrap_or(0);
    assert_eq!(replay.valid_len, expected_valid, "cut at byte {cut}");
    assert_eq!(
        replay.torn.is_some(),
        cut != expected_valid,
        "cut at byte {cut}: torn flag"
    );
}

#[test]
fn truncation_at_every_byte_of_the_final_record_replays_prefix() {
    let dir = temp_dir("final-record");
    let ops = sample_ops();
    let (path, boundaries) = write_wal(&dir, &ops);
    let original = std::fs::read(&path).unwrap();

    let last_start = boundaries[boundaries.len() - 2];
    let last_end = *boundaries.last().unwrap();
    for cut in last_start..=last_end {
        assert_replay_at(&original, &boundaries, &ops, &dir, cut);
    }
    for &cut in &boundaries {
        assert_replay_at(&original, &boundaries, &ops, &dir, cut);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The heavy raw-WAL sweep: every byte boundary of the whole file, on a
/// longer log. `#[ignore]`d locally; CI runs it via `--include-ignored`.
#[test]
#[ignore = "exhaustive byte sweep; CI runs it via --include-ignored"]
fn truncation_at_every_byte_of_the_whole_wal_replays_prefix() {
    let dir = temp_dir("whole-wal");
    let mut ops = Vec::new();
    for round in 0..6u64 {
        for id in 0..4 {
            ops.push(WalOp::Upsert(record(id, round)));
        }
        ops.push(WalOp::Epoch { epoch: round + 1 });
        if round % 2 == 1 {
            ops.push(WalOp::EvictBefore { min_epoch: round });
            ops.push(WalOp::Remove { user_id: round % 4 });
        }
    }
    let (path, boundaries) = write_wal(&dir, &ops);
    let original = std::fs::read(&path).unwrap();
    for cut in 0..=original.len() as u64 {
        assert_replay_at(&original, &boundaries, &ops, &dir, cut);
    }
    let _ = path;
    std::fs::remove_dir_all(&dir).unwrap();
}
