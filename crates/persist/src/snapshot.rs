//! Snapshot files: the compacted live record set, promoted atomically.
//!
//! A snapshot is written to `snapshot.tmp`, fsync'd, then renamed over
//! `snapshot.bin` (rename within one directory is atomic on POSIX), and
//! the directory is fsync'd so the rename itself is durable. Readers
//! therefore only ever observe either the old complete snapshot or the
//! new complete snapshot — a torn `snapshot.bin` is impossible by
//! construction, so any CRC failure inside it is treated as real
//! corruption rather than a tolerated torn tail.
//!
//! Layout: a header frame (`magic ‖ covered_generation ‖ epoch ‖ count`)
//! followed by `count` record frames, all CRC-framed like the WAL.

use crate::codec::{self, FrameRead, Record};
use crate::error::{PersistError, PersistResult};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every snapshot's header frame.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SLASNAP1";

/// The promoted snapshot's filename.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// The in-flight snapshot's filename (deleted on recovery if present).
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// One complete snapshot: the live record set as of the moment every WAL
/// generation `<= covered_generation` had been applied.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// WAL generations up to and including this one are folded in;
    /// recovery replays only strictly newer generations on top.
    pub covered_generation: u64,
    /// The service epoch at the snapshot point.
    pub epoch: u64,
    /// The live records.
    pub records: Vec<Record>,
}

/// Writes `snapshot` to `dir/snapshot.tmp`, fsyncs it, atomically
/// renames it over `dir/snapshot.bin`, and fsyncs the directory.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> PersistResult<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let dst = dir.join(SNAPSHOT_FILE);

    let mut header = Vec::with_capacity(32);
    header.extend_from_slice(SNAPSHOT_MAGIC);
    header.extend_from_slice(&snapshot.covered_generation.to_le_bytes());
    header.extend_from_slice(&snapshot.epoch.to_le_bytes());
    header.extend_from_slice(&(snapshot.records.len() as u64).to_le_bytes());

    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| PersistError::io("create snapshot.tmp", &tmp, e))?;
    let mut write = |bytes: &[u8]| {
        file.write_all(bytes)
            .map_err(|e| PersistError::io("write snapshot", &tmp, e))
    };
    write(&codec::frame(&header))?;
    let mut payload = Vec::new();
    for record in &snapshot.records {
        payload.clear();
        codec::encode_record(record, &mut payload);
        write(&codec::frame(&payload))?;
    }
    file.sync_all()
        .map_err(|e| PersistError::io("fsync snapshot.tmp", &tmp, e))?;
    drop(file);

    fs::rename(&tmp, &dst).map_err(|e| PersistError::io("promote snapshot", &dst, e))?;
    sync_dir(dir)
}

/// fsyncs a directory so a rename inside it is durable.
pub fn sync_dir(dir: &Path) -> PersistResult<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| PersistError::io("fsync dir", dir, e))
}

/// Loads `dir/snapshot.bin`; `Ok(None)` when no snapshot has ever been
/// promoted. Any framing or CRC failure is corruption (see the module
/// docs for why a snapshot cannot legitimately be torn).
pub fn load_snapshot(dir: &Path) -> PersistResult<Option<Snapshot>> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f
            .read_to_end(&mut bytes)
            .map(|_| ())
            .map_err(|e| PersistError::io("read snapshot", &path, e))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io("open snapshot", &path, e)),
    }

    let corrupt = |offset: u64, detail: String| PersistError::corrupt(&path, offset, detail);

    let (header, mut rest) = match codec::read_frame(&bytes) {
        FrameRead::Frame { payload, rest } => (payload, rest),
        FrameRead::End => return Err(corrupt(0, "empty snapshot file".into())),
        FrameRead::Torn { detail } => return Err(corrupt(0, detail)),
    };
    if header.len() != 32 || &header[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt(0, "bad snapshot magic".into()));
    }
    let word = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("8 bytes"));
    let covered_generation = word(8);
    let epoch = word(16);
    let count = word(24);

    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let offset = (bytes.len() - rest.len()) as u64;
        match codec::read_frame(rest) {
            FrameRead::Frame { payload, rest: r } => {
                let record =
                    codec::decode_record(payload).map_err(|e| corrupt(offset, e.to_string()))?;
                records.push(record);
                rest = r;
            }
            FrameRead::End => {
                return Err(corrupt(
                    offset,
                    format!("snapshot ends after {} of {count} records", records.len()),
                ))
            }
            FrameRead::Torn { detail } => return Err(corrupt(offset, detail)),
        }
    }
    if !rest.is_empty() {
        return Err(corrupt(
            (bytes.len() - rest.len()) as u64,
            format!("{} trailing bytes after {count} records", rest.len()),
        ));
    }
    Ok(Some(Snapshot {
        covered_generation,
        epoch,
        records,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_bigint::BigUint;
    use sla_hve::Ciphertext;
    use sla_pairing::{GElem, GtElem};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-persist-snap-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(user_id: u64) -> Record {
        Record {
            user_id,
            epoch: user_id % 3,
            expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
            ciphertext: Ciphertext::from_parts(
                GtElem::from_canonical_log(BigUint::from_u64(user_id * 7)),
                GElem::from_canonical_log(BigUint::from_u64(user_id * 11)),
                vec![(
                    GElem::from_canonical_log(BigUint::from_u64(user_id)),
                    GElem::from_canonical_log(BigUint::from_u64(user_id + 2)),
                )],
            ),
        }
    }

    #[test]
    fn roundtrip_and_promotion() {
        let dir = temp_dir("roundtrip");
        assert_eq!(load_snapshot(&dir).unwrap(), None);
        let snap = Snapshot {
            covered_generation: 4,
            epoch: 9,
            records: (0..5).map(record).collect(),
        };
        write_snapshot(&dir, &snap).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap(), Some(snap.clone()));
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp promoted away");
        // Overwrite with a newer snapshot: atomic replacement.
        let newer = Snapshot {
            covered_generation: 6,
            epoch: 12,
            records: vec![record(42)],
        };
        write_snapshot(&dir, &newer).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap(), Some(newer));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_corrupt_not_torn() {
        let dir = temp_dir("truncated");
        let snap = Snapshot {
            covered_generation: 1,
            epoch: 0,
            records: (0..3).map(record).collect(),
        };
        write_snapshot(&dir, &snap).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            load_snapshot(&dir),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
