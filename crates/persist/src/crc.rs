//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) — the frame checksum of
//! the WAL and snapshot files.
//!
//! Implemented in-repo because the workspace builds fully offline (no
//! crates.io). The standard reflected table-driven form: polynomial
//! `0xEDB88320`, initial value `!0`, final XOR `!0`.

/// The 256-entry lookup table for the reflected polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (one-shot).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The IEEE check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_byte_changes_are_detected() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupted = base.clone();
                corrupted[i] ^= flip;
                assert_ne!(crc32(&corrupted), reference, "byte {i} flip {flip:#x}");
            }
        }
    }
}
