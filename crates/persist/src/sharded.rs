//! [`ShardedWal`]: N independent durability lanes, one per store shard.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/store.meta       # layout descriptor (commit marker; atomic rename)
//! <dir>/shard.000/       # lane 0: wal.NNNNNN + snapshot.bin (paged)
//! <dir>/shard.001/       # lane 1
//! ...
//! ```
//!
//! Each lane is a complete single-log engine ([`crate::log`]): its own
//! WAL generations, rotation, torn-tail recovery, and paged snapshot.
//! Cross-lane ordering is deliberately absent — the store routes every
//! user to exactly one shard, so ops on different lanes commute and
//! recovery can replay lanes **in parallel** instead of one serial full
//! scan. Ops that span shards (`Epoch`, `EvictBefore`) are logged per
//! lane by the owner; both are idempotent and order-free across lanes
//! (`Epoch` replay takes the max, eviction is a per-record predicate).
//!
//! ## The meta file
//!
//! `store.meta` pins the layout (magic, format version, shard count)
//! and doubles as the migration commit marker: it is written with the
//! same tmp + fsync + rename + dir-fsync dance as snapshots, so a
//! directory either has a committed sharded layout (meta present) or
//! it does not — there is no in-between for recovery to misread.
//! Opening with a different shard count than the meta records is
//! corruption, not resharding: lane placement is baked into every
//! record's lane at write time.
//!
//! ## Migrating a pre-sharding directory
//!
//! A directory from the single-log era (root `wal.N` + root
//! `snapshot.bin`, no meta) is migrated on first open: the legacy state
//! is recovered read-only, routed record-by-record into freshly created
//! lanes, the lanes are fsync'd, the meta file is committed, and only
//! then are the legacy files deleted. A crash anywhere before the meta
//! rename redoes the whole migration from the untouched legacy files
//! (half-built lanes are wiped); a crash after it leaves stray legacy
//! files that the next open simply deletes, because a committed meta
//! makes the lanes authoritative.

use crate::codec::{self, FrameRead, Record, WalOp};
use crate::error::{PersistError, PersistResult};
use crate::log::{self, Lane, LogOptions};
use crate::snapshot::{sync_dir, SNAPSHOT_FILE, SNAPSHOT_TMP};
use crate::wal::{self, FlushPolicy, WalWriter};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening the `store.meta` frame.
pub const META_MAGIC: &[u8; 8] = b"SLASHRD1";

/// The layout descriptor's filename.
pub const META_FILE: &str = "store.meta";

/// The in-flight layout descriptor's filename.
pub const META_TMP: &str = "store.meta.tmp";

/// On-disk format version recorded in `store.meta` (v2 = sharded lanes
/// with paged snapshots; v1, the implicit single-log layout, has no
/// meta file).
pub const LAYOUT_VERSION: u32 = 2;

/// Routes a user id to its lane: `router(user_id, shard_count)`.
///
/// The store layer owns placement (its in-memory shard map and the
/// durability lanes must agree), so the function is injected rather
/// than defined here.
pub type ShardRouter = fn(u64, usize) -> usize;

/// The lane directory name for `shard` (`shard.000`, `shard.001`, ...).
pub fn shard_dir_name(shard: usize) -> String {
    format!("shard.{shard:03}")
}

/// Parses a lane directory name back to its shard index.
fn parse_shard_dir(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard.")?;
    if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// What recovery reconstructed from the directory, across all lanes.
#[derive(Debug)]
pub struct ShardedRecovery {
    /// The live records of every lane, one per user, in ascending
    /// `user_id` order.
    pub records: Vec<Record>,
    /// The service epoch (maximum over the lanes' views).
    pub epoch: u64,
    /// WAL ops replayed on top of the lanes' snapshots, summed.
    pub replayed_ops: usize,
    /// Whether any lane's WAL had a torn tail truncated away.
    pub torn_tail: bool,
    /// Whether this open migrated a pre-sharding directory.
    pub migrated: bool,
}

/// One lane's wait-free stats snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStatus {
    /// The lane's shard index.
    pub shard: usize,
    /// The lane's current WAL generation.
    pub generation: u64,
    /// Ops appended to the lane since its last snapshot.
    pub depth: usize,
}

/// The sharded durability front (see the module docs).
///
/// Appends are internally locked per lane, but callers that require a
/// strict correspondence between apply order and log order (the service
/// layer's store does) must serialize externally **per shard** — the
/// whole point of the lanes is that no cross-shard serialization
/// exists.
#[derive(Debug)]
pub struct ShardedWal {
    dir: PathBuf,
    lanes: Vec<Lane>,
}

impl ShardedWal {
    /// Opens (creating, or migrating a pre-sharding directory, if
    /// necessary) the sharded log at `dir` with `shards` lanes and
    /// recovers every lane in parallel.
    ///
    /// `router` must be the same placement function the owner's
    /// in-memory shard map uses; recovery validates that every
    /// recovered record lives in its home lane and reports corruption
    /// otherwise (replaying a record from the wrong lane could resurrect
    /// a user the right lane has removed).
    pub fn open(
        dir: &Path,
        shards: usize,
        router: ShardRouter,
        options: LogOptions,
    ) -> PersistResult<(Self, ShardedRecovery)> {
        assert!(shards >= 1, "a sharded log needs at least one lane");
        fs::create_dir_all(dir).map_err(|e| PersistError::io("create dir", dir, e))?;
        let meta_tmp = dir.join(META_TMP);
        if meta_tmp.exists() {
            fs::remove_file(&meta_tmp)
                .map_err(|e| PersistError::io("remove store.meta.tmp", &meta_tmp, e))?;
        }

        let mut migrated = false;
        if dir.join(META_FILE).exists() {
            read_meta(dir, shards)?;
            // A committed meta makes the lanes authoritative; legacy
            // files can only be leftovers of a migration that crashed
            // after its commit point. Finish the cleanup.
            if log::has_legacy_layout(dir)? {
                delete_legacy_files(dir)?;
            }
        } else if log::has_legacy_layout(dir)? {
            migrate_legacy(dir, shards, router, options.flush)?;
            migrated = true;
        } else if existing_shard_dirs(dir)?.is_empty() {
            write_meta(dir, shards)?;
        } else {
            return Err(PersistError::corrupt(
                dir.join(META_FILE),
                0,
                "lane directories present but store.meta is missing",
            ));
        }

        // Recover every lane in parallel — O(largest lane), not
        // O(total history).
        let mut slots: Vec<Option<PersistResult<(Lane, log::LaneRecovered)>>> =
            (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    let lane_dir = dir.join(shard_dir_name(shard));
                    scope.spawn(move || Lane::open(&lane_dir, shard, shards, options))
                })
                .collect();
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join().unwrap_or_else(|_| {
                    Err(PersistError::io(
                        "lane recovery thread",
                        dir,
                        std::io::Error::other("panicked"),
                    ))
                }));
            }
        });

        let mut lanes = Vec::with_capacity(shards);
        let mut recovered = Vec::with_capacity(shards);
        let mut failures = Vec::new();
        for (shard, slot) in slots.into_iter().enumerate() {
            match slot.expect("every lane joined") {
                Ok((lane, state)) => {
                    lanes.push(lane);
                    recovered.push(state);
                }
                Err(e) => failures.push((shard, e)),
            }
        }
        if let Some(err) = PersistError::from_lanes(failures) {
            return Err(err);
        }

        let mut records = Vec::new();
        let mut epoch = 0;
        let mut replayed_ops = 0;
        let mut torn_tail = false;
        for (shard, state) in recovered.into_iter().enumerate() {
            for r in &state.records {
                let home = router(r.user_id, shards);
                if home != shard {
                    return Err(PersistError::corrupt(
                        dir.join(shard_dir_name(shard)),
                        0,
                        format!(
                            "record for user {} routes to shard {home} but was \
                             recovered from lane {shard}",
                            r.user_id
                        ),
                    ));
                }
            }
            epoch = epoch.max(state.epoch);
            replayed_ops += state.replayed_ops;
            torn_tail |= state.torn_tail;
            records.extend(state.records);
        }
        records.sort_unstable_by_key(|r| r.user_id);

        Ok((
            ShardedWal {
                dir: dir.to_path_buf(),
                lanes,
            },
            ShardedRecovery {
                records,
                epoch,
                replayed_ops,
                torn_tail,
                migrated,
            },
        ))
    }

    /// The root directory this sharded log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The number of lanes.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Appends one op to `shard`'s lane. I/O failures are deferred to
    /// that lane's slot (surfaced by the next [`ShardedWal::sync`]) so
    /// the hot mutation path stays infallible. Returns `true` when the
    /// lane's op budget is exhausted and the owner should call
    /// [`ShardedWal::compact`] for that shard.
    pub fn append(&self, shard: usize, op: &WalOp) -> bool {
        self.lanes[shard].append(op)
    }

    /// Stashes `err` in `shard`'s deferred slot, mirroring what
    /// `append` does internally for its own I/O failures.
    pub fn defer_error(&self, shard: usize, err: PersistError) {
        self.lanes[shard].defer_error(err);
    }

    /// fsyncs every lane's outstanding appends and surfaces deferred
    /// errors from **every** failed lane, aggregated — one healthy lane
    /// can never mask a broken one (a single failed lane's error is
    /// returned as-is; two or more become [`PersistError::Lanes`]).
    pub fn sync(&self) -> PersistResult<()> {
        let mut failures = Vec::new();
        for (shard, lane) in self.lanes.iter().enumerate() {
            if let Err(e) = lane.sync() {
                failures.push((shard, e));
            }
        }
        match PersistError::from_lanes(failures) {
            None => Ok(()),
            Some(err) => Err(err),
        }
    }

    /// Rotates `shard`'s WAL and snapshots `records` (the owner's
    /// authoritative live set **for that shard only**) on a background
    /// thread; see [`crate::log`] for the rotation/skip semantics.
    pub fn compact(&self, shard: usize, records: Vec<Record>, epoch: u64) -> PersistResult<()> {
        self.lanes[shard].compact(records, epoch)
    }

    /// `true` while a background compaction of `shard`'s lane is
    /// running.
    pub fn compaction_in_flight(&self, shard: usize) -> bool {
        self.lanes[shard].compaction_in_flight()
    }

    /// Blocks until every lane's in-flight compaction finishes,
    /// surfacing every failure (aggregated like [`ShardedWal::sync`]).
    pub fn join_compactors(&self) -> PersistResult<()> {
        let mut failures = Vec::new();
        for (shard, lane) in self.lanes.iter().enumerate() {
            if let Err(e) = lane.join_compactor() {
                failures.push((shard, e));
            }
        }
        match PersistError::from_lanes(failures) {
            None => Ok(()),
            Some(err) => Err(err),
        }
    }

    /// Every lane's current WAL generation and depth, wait-free (reads
    /// atomics mirrored outside the lane locks, so a stats call never
    /// blocks behind an in-flight fsync).
    pub fn lane_status(&self) -> Vec<LaneStatus> {
        self.lanes
            .iter()
            .enumerate()
            .map(|(shard, lane)| LaneStatus {
                shard,
                generation: lane.generation(),
                depth: lane.depth(),
            })
            .collect()
    }

    /// Ops appended to `shard`'s lane since its last snapshot
    /// (diagnostics).
    pub fn ops_since_snapshot(&self, shard: usize) -> usize {
        self.lanes[shard].ops_since_snapshot()
    }
}

/// The shard indices of every `shard.NNN` directory present in `dir`.
fn existing_shard_dirs(dir: &Path) -> PersistResult<Vec<usize>> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io("list dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io("list dir", dir, e))?;
        if let Some(shard) = entry.file_name().to_str().and_then(parse_shard_dir) {
            out.push(shard);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Validates `dir/store.meta` against the expected shard count.
fn read_meta(dir: &Path, shards: usize) -> PersistResult<()> {
    let path = dir.join(META_FILE);
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes).map(|_| ()))
        .map_err(|e| PersistError::io("read store.meta", &path, e))?;
    let payload = match codec::read_frame(&bytes) {
        FrameRead::Frame { payload, rest: [] } => payload,
        FrameRead::Frame { .. } => {
            return Err(PersistError::corrupt(&path, 0, "trailing bytes after meta"))
        }
        FrameRead::End => return Err(PersistError::corrupt(&path, 0, "empty meta file")),
        FrameRead::Torn { detail } => return Err(PersistError::corrupt(&path, 0, detail)),
    };
    if payload.len() != 16 || &payload[..8] != META_MAGIC {
        return Err(PersistError::corrupt(&path, 0, "bad store.meta magic"));
    }
    let version = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    let recorded = u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")) as usize;
    if version != LAYOUT_VERSION {
        return Err(PersistError::corrupt(
            &path,
            0,
            format!("unsupported layout version {version} (expected {LAYOUT_VERSION})"),
        ));
    }
    if recorded != shards {
        return Err(PersistError::corrupt(
            &path,
            0,
            format!(
                "directory holds {recorded} lanes but was opened with {shards}; \
                 lane placement is fixed at write time"
            ),
        ));
    }
    Ok(())
}

/// Commits `dir/store.meta` atomically (tmp + fsync + rename + dir
/// fsync).
fn write_meta(dir: &Path, shards: usize) -> PersistResult<()> {
    let tmp = dir.join(META_TMP);
    let dst = dir.join(META_FILE);
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(META_MAGIC);
    payload.extend_from_slice(&LAYOUT_VERSION.to_le_bytes());
    payload.extend_from_slice(&(shards as u32).to_le_bytes());

    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| PersistError::io("create store.meta.tmp", &tmp, e))?;
    file.write_all(&codec::frame(&payload))
        .map_err(|e| PersistError::io("write store.meta", &tmp, e))?;
    file.sync_all()
        .map_err(|e| PersistError::io("fsync store.meta.tmp", &tmp, e))?;
    drop(file);
    fs::rename(&tmp, &dst).map_err(|e| PersistError::io("promote store.meta", &dst, e))?;
    sync_dir(dir)
}

/// Deletes the pre-sharding root files (snapshot, in-flight snapshot,
/// WALs) and fsyncs the directory.
fn delete_legacy_files(dir: &Path) -> PersistResult<()> {
    for name in [SNAPSHOT_FILE, SNAPSHOT_TMP] {
        let path = dir.join(name);
        if path.exists() {
            fs::remove_file(&path)
                .map_err(|e| PersistError::io("remove legacy snapshot", &path, e))?;
        }
    }
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io("list dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io("list dir", dir, e))?;
        if let Some(gen) = entry.file_name().to_str().and_then(wal::parse_wal_name) {
            let path = dir.join(wal::wal_file_name(gen));
            fs::remove_file(&path).map_err(|e| PersistError::io("remove legacy wal", &path, e))?;
        }
    }
    sync_dir(dir)
}

/// Migrates a pre-sharding directory into `shards` lanes. Crash-safe by
/// redo: until [`write_meta`]'s atomic rename commits, the legacy files
/// are untouched and every partial lane build is wiped and rebuilt from
/// them; after it, the lanes are authoritative and the legacy files are
/// disposable (deleted here, or by a later open if this one crashes
/// first).
fn migrate_legacy(
    dir: &Path,
    shards: usize,
    router: ShardRouter,
    flush: FlushPolicy,
) -> PersistResult<()> {
    // Recover the legacy state first: if it is corrupt, fail before
    // touching anything on disk.
    let fold = log::recover_legacy(dir)?;

    // Wipe half-built lanes from a previously crashed migration.
    for shard in existing_shard_dirs(dir)? {
        let lane_dir = dir.join(shard_dir_name(shard));
        fs::remove_dir_all(&lane_dir)
            .map_err(|e| PersistError::io("wipe partial lane", &lane_dir, e))?;
    }

    // Route every record into its lane's first WAL generation. The
    // epoch is broadcast to every lane so each recovers the full
    // service epoch independently (replay takes the max, so the
    // duplication is harmless).
    let mut writers = Vec::with_capacity(shards);
    for shard in 0..shards {
        let lane_dir = dir.join(shard_dir_name(shard));
        fs::create_dir_all(&lane_dir)
            .map_err(|e| PersistError::io("create lane dir", &lane_dir, e))?;
        writers.push(WalWriter::create(&lane_dir, 1, flush)?);
    }
    let epoch = fold.epoch;
    for (_, record) in fold.by_user {
        let shard = router(record.user_id, shards);
        writers[shard].append(&WalOp::Upsert(record))?;
    }
    for writer in &mut writers {
        if epoch > 0 {
            writer.append(&WalOp::Epoch { epoch })?;
        }
        writer.sync()?;
    }
    drop(writers);

    // Commit point: after this rename the lanes are the store.
    write_meta(dir, shards)?;
    delete_legacy_files(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{self, Snapshot};
    use sla_bigint::BigUint;
    use sla_hve::Ciphertext;
    use sla_pairing::{GElem, GtElem};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-persist-sharded-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(user_id: u64, epoch: u64) -> Record {
        Record {
            user_id,
            epoch,
            expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
            ciphertext: Ciphertext::from_parts(
                GtElem::from_canonical_log(BigUint::from_u64(user_id * 3 + 1)),
                GElem::from_canonical_log(BigUint::from_u64(user_id * 5 + 2)),
                vec![(
                    GElem::from_canonical_log(BigUint::from_u64(user_id)),
                    GElem::from_canonical_log(BigUint::from_u64(user_id + 9)),
                )],
            ),
        }
    }

    fn route(user_id: u64, shards: usize) -> usize {
        (user_id % shards as u64) as usize
    }

    fn ids(state: &ShardedRecovery) -> Vec<u64> {
        state.records.iter().map(|r| r.user_id).collect()
    }

    #[test]
    fn per_lane_append_reopen_and_status() {
        let dir = temp_dir("reopen");
        {
            let (wal, state) = ShardedWal::open(&dir, 4, route, LogOptions::default()).unwrap();
            assert!(state.records.is_empty() && !state.migrated);
            for id in 0..10 {
                wal.append(route(id, 4), &WalOp::Upsert(record(id, 0)));
            }
            wal.append(route(3, 4), &WalOp::Remove { user_id: 3 });
            for shard in 0..4 {
                wal.append(shard, &WalOp::Epoch { epoch: 7 });
            }
            wal.sync().unwrap();
            let status = wal.lane_status();
            assert_eq!(status.len(), 4);
            // Lane 3 took users 3, 7 plus the remove and the epoch.
            assert_eq!(
                status[3],
                LaneStatus {
                    shard: 3,
                    generation: 1,
                    depth: 4
                }
            );
        }
        let (wal, state) = ShardedWal::open(&dir, 4, route, LogOptions::default()).unwrap();
        assert_eq!(ids(&state), vec![0, 1, 2, 4, 5, 6, 7, 8, 9]);
        assert_eq!(state.epoch, 7);
        assert_eq!(state.replayed_ops, 15);
        assert!(!state.migrated);
        assert_eq!(wal.shards(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lanes_compact_independently() {
        let dir = temp_dir("compact");
        let options = LogOptions {
            compact_after_ops: 2,
            ..LogOptions::default()
        };
        {
            let (wal, _) = ShardedWal::open(&dir, 2, route, options).unwrap();
            // Drive only lane 0 over its budget.
            let mut due = false;
            for id in [0, 2, 4] {
                due = wal.append(0, &WalOp::Upsert(record(id, 1)));
            }
            assert!(due, "lane 0 budget of 2 exhausted");
            assert!(
                !wal.append(1, &WalOp::Upsert(record(1, 1))),
                "lane 1 under budget"
            );
            wal.compact(0, vec![record(0, 1), record(2, 1), record(4, 1)], 1)
                .unwrap();
            wal.join_compactors().unwrap();
            let status = wal.lane_status();
            assert_eq!(
                status[0],
                LaneStatus {
                    shard: 0,
                    generation: 2,
                    depth: 0
                }
            );
            assert_eq!(
                status[1],
                LaneStatus {
                    shard: 1,
                    generation: 1,
                    depth: 1
                }
            );
            assert!(dir.join(shard_dir_name(0)).join(SNAPSHOT_FILE).exists());
            assert!(!dir.join(shard_dir_name(1)).join(SNAPSHOT_FILE).exists());
        }
        let (_, state) = ShardedWal::open(&dir, 2, route, options).unwrap();
        assert_eq!(ids(&state), vec![0, 1, 2, 4]);
        assert_eq!(state.replayed_ops, 1, "lane 0 recovers from its snapshot");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrates_a_legacy_directory_once() {
        let dir = temp_dir("migrate");
        // Hand-roll a PR-5-format directory: root snapshot + newer WAL.
        snapshot::write_snapshot(
            &dir,
            &Snapshot {
                covered_generation: 2,
                epoch: 3,
                records: vec![record(1, 1), record(2, 1), record(6, 2)],
            },
        )
        .unwrap();
        {
            let mut w = WalWriter::create(&dir, 3, FlushPolicy::EveryOp).unwrap();
            w.append(&WalOp::Remove { user_id: 6 }).unwrap();
            w.append(&WalOp::Upsert(record(9, 4))).unwrap();
            w.append(&WalOp::Epoch { epoch: 5 }).unwrap();
        }
        let (_, state) = ShardedWal::open(&dir, 4, route, LogOptions::default()).unwrap();
        assert!(state.migrated, "first open migrates");
        assert_eq!(ids(&state), vec![1, 2, 9]);
        assert_eq!(state.epoch, 5);
        // Legacy files gone, meta + lanes in place.
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        assert!(!dir.join(wal::wal_file_name(3)).exists());
        assert!(dir.join(META_FILE).exists());
        // Second open is a plain sharded recovery.
        let (_, state) = ShardedWal::open(&dir, 4, route, LogOptions::default()).unwrap();
        assert!(!state.migrated);
        assert_eq!(ids(&state), vec![1, 2, 9]);
        assert_eq!(state.epoch, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_migration_redoes_from_legacy() {
        let dir = temp_dir("redo");
        snapshot::write_snapshot(
            &dir,
            &Snapshot {
                covered_generation: 1,
                epoch: 0,
                records: vec![record(0, 0), record(1, 0)],
            },
        )
        .unwrap();
        // A half-built lane from a migration that crashed before the
        // meta commit: it must be wiped, not trusted.
        let partial = dir.join(shard_dir_name(0));
        fs::create_dir_all(&partial).unwrap();
        {
            let mut w = WalWriter::create(&partial, 1, FlushPolicy::EveryOp).unwrap();
            w.append(&WalOp::Upsert(record(100, 9))).unwrap();
        }
        let (_, state) = ShardedWal::open(&dir, 2, route, LogOptions::default()).unwrap();
        assert!(state.migrated);
        assert_eq!(ids(&state), vec![0, 1], "partial lane discarded");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_legacy_files_after_commit_are_deleted() {
        let dir = temp_dir("leftover");
        {
            let (wal, _) = ShardedWal::open(&dir, 2, route, LogOptions::default()).unwrap();
            wal.append(0, &WalOp::Upsert(record(0, 1)));
            wal.sync().unwrap();
        }
        // Simulate a migration that crashed after the meta commit but
        // before legacy deletion: a stray root WAL. It must be ignored
        // (the lanes are authoritative) and cleaned up.
        {
            let mut w = WalWriter::create(&dir, 9, FlushPolicy::EveryOp).unwrap();
            w.append(&WalOp::Upsert(record(42, 9))).unwrap();
        }
        let (_, state) = ShardedWal::open(&dir, 2, route, LogOptions::default()).unwrap();
        assert!(!state.migrated);
        assert_eq!(ids(&state), vec![0], "stray legacy WAL not replayed");
        assert!(!dir.join(wal::wal_file_name(9)).exists(), "and deleted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_mismatches_are_corrupt() {
        let dir = temp_dir("meta");
        {
            let (wal, _) = ShardedWal::open(&dir, 4, route, LogOptions::default()).unwrap();
            wal.sync().unwrap();
        }
        // Wrong shard count.
        match ShardedWal::open(&dir, 8, route, LogOptions::default()) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("4 lanes"), "{detail}")
            }
            other => panic!("{:?}", other.map(|_| ())),
        }
        // Garbage meta.
        fs::write(dir.join(META_FILE), b"definitely not a meta frame").unwrap();
        assert!(matches!(
            ShardedWal::open(&dir, 4, route, LogOptions::default()),
            Err(PersistError::Corrupt { .. })
        ));
        // Missing meta with lanes present.
        fs::remove_file(dir.join(META_FILE)).unwrap();
        match ShardedWal::open(&dir, 4, route, LogOptions::default()) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("store.meta is missing"), "{detail}")
            }
            other => panic!("{:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn misplaced_records_are_corrupt() {
        let dir = temp_dir("misplaced");
        {
            let (wal, _) = ShardedWal::open(&dir, 2, route, LogOptions::default()).unwrap();
            wal.append(0, &WalOp::Upsert(record(0, 0)));
            wal.sync().unwrap();
        }
        // Append user 5 (home lane 1) into lane 0 behind the router's
        // back.
        {
            let lane0 = dir.join(shard_dir_name(0));
            let replay = wal::replay_wal(&lane0.join(wal::wal_file_name(1)), 1).unwrap();
            let mut w = WalWriter::reopen(
                &lane0.join(wal::wal_file_name(1)),
                1,
                replay.valid_len,
                FlushPolicy::EveryOp,
            )
            .unwrap();
            w.append(&WalOp::Upsert(record(5, 0))).unwrap();
        }
        match ShardedWal::open(&dir, 2, route, LogOptions::default()) {
            Err(PersistError::Corrupt { detail, .. }) => {
                assert!(detail.contains("routes to shard 1"), "{detail}")
            }
            other => panic!("{:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_aggregates_failures_across_lanes() {
        // Satellite-6 pin: two lanes with deferred errors surface BOTH,
        // not just the first.
        let dir = temp_dir("aggregate");
        let (wal, _) = ShardedWal::open(&dir, 4, route, LogOptions::default()).unwrap();
        wal.defer_error(
            1,
            PersistError::io(
                "fsync wal",
                "/x/shard.001/wal.000001",
                std::io::Error::other("a"),
            ),
        );
        wal.defer_error(
            3,
            PersistError::corrupt("/x/shard.003/snapshot.bin", 7, "page crc"),
        );
        match wal.sync() {
            Err(PersistError::Lanes { errors }) => {
                let shards: Vec<_> = errors.iter().map(|(s, _)| *s).collect();
                assert_eq!(shards, vec![1, 3]);
            }
            other => panic!("{:?}", other.map(|_| ())),
        }
        // The slots drained; the next sync is clean.
        wal.sync().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
