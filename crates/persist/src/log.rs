//! [`DurableLog`]: the full durable-storage subsystem — recovery,
//! appending, and background snapshot compaction over one directory.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/snapshot.bin   # promoted snapshot (atomic rename)
//! <dir>/snapshot.tmp   # in-flight snapshot (stray = crashed; deleted)
//! <dir>/wal.NNNNNN     # one WAL file per generation
//! ```
//!
//! ## Recovery
//!
//! 1. Delete a stray `snapshot.tmp` (a compaction that never promoted).
//! 2. Load `snapshot.bin` → the base record set and its
//!    `covered_generation` `G` (0 when no snapshot exists).
//! 3. Replay every `wal.g` with `g > G` in ascending generation order,
//!    tolerating a torn tail in each (unsynced suffixes die with the
//!    crash; everything replayed was a complete CRC-valid frame).
//! 4. Delete `wal.g` with `g <= G` (their contents are in the
//!    snapshot; they linger only if a crash interrupted compaction
//!    between promotion and deletion).
//! 5. Resume appending to the newest WAL (truncated to its last valid
//!    frame), or create generation `G + 1` if none survives.
//!
//! ## Compaction
//!
//! [`DurableLog::append`] reports when the configured op budget since
//! the last snapshot is exhausted; the owner then calls
//! [`DurableLog::compact`] with its authoritative live record set. The
//! WAL is rotated to a fresh generation immediately (under the caller's
//! serialization), and the snapshot write + promotion + old-WAL deletion
//! run on a **background thread** so mutations and matching continue
//! unimpeded. A crash at any point leaves either the old snapshot plus
//! all WALs, or the new snapshot plus the new WAL — both recover to the
//! same state.

use crate::codec::{Record, WalOp};
use crate::error::{PersistError, PersistResult};
use crate::snapshot::{self, Snapshot, SNAPSHOT_TMP};
use crate::wal::{self, FlushPolicy, WalWriter};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Tuning knobs for [`DurableLog::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogOptions {
    /// When WAL appends reach stable storage.
    pub flush: FlushPolicy,
    /// Ops appended since the last snapshot before
    /// [`DurableLog::append`] requests compaction.
    pub compact_after_ops: usize,
}

impl Default for LogOptions {
    fn default() -> Self {
        LogOptions {
            flush: FlushPolicy::EveryOp,
            compact_after_ops: 4096,
        }
    }
}

/// What recovery reconstructed from the directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// The live records (snapshot base + WAL replay), one per user, in
    /// ascending `user_id` order.
    pub records: Vec<Record>,
    /// The service epoch (maximum `Epoch` op seen, or the snapshot's).
    pub epoch: u64,
    /// WAL ops replayed on top of the snapshot.
    pub replayed_ops: usize,
    /// Whether any WAL had a torn tail truncated away.
    pub torn_tail: bool,
}

/// Replay state folded over snapshot records and WAL ops.
#[derive(Debug, Default)]
struct Fold {
    by_user: BTreeMap<u64, Record>,
    epoch: u64,
}

impl Fold {
    fn seed(&mut self, records: Vec<Record>) {
        for r in records {
            self.by_user.insert(r.user_id, r);
        }
    }

    fn apply(&mut self, op: WalOp) {
        match op {
            WalOp::Upsert(record) => {
                self.by_user.insert(record.user_id, record);
            }
            WalOp::Remove { user_id } => {
                self.by_user.remove(&user_id);
            }
            WalOp::EvictBefore { min_epoch } => {
                self.by_user.retain(|_, r| r.epoch >= min_epoch);
            }
            WalOp::Epoch { epoch } => {
                self.epoch = self.epoch.max(epoch);
            }
        }
    }
}

/// Serialized appender state.
#[derive(Debug)]
struct Inner {
    wal: WalWriter,
    ops_since_snapshot: usize,
}

/// The durable-log subsystem over one directory (see the module docs).
///
/// Appends are internally locked but callers that require a strict
/// correspondence between apply order and log order (the service layer's
/// store does) must serialize externally — the log cannot know in which
/// order two racing upserts hit the in-memory index.
#[derive(Debug)]
pub struct DurableLog {
    dir: PathBuf,
    options: LogOptions,
    inner: Mutex<Inner>,
    /// The in-flight background compaction, if any.
    compactor: Mutex<Option<JoinHandle<PersistResult<()>>>>,
    /// First deferred I/O error (append is infallible at the call site;
    /// the error surfaces on the next `sync`).
    deferred: Mutex<Option<PersistError>>,
}

impl DurableLog {
    /// Opens (creating if necessary) the log at `dir` and recovers its
    /// state.
    pub fn open(dir: &Path, options: LogOptions) -> PersistResult<(Self, RecoveredState)> {
        fs::create_dir_all(dir).map_err(|e| PersistError::io("create dir", dir, e))?;
        let tmp = dir.join(SNAPSHOT_TMP);
        if tmp.exists() {
            fs::remove_file(&tmp).map_err(|e| PersistError::io("remove snapshot.tmp", &tmp, e))?;
        }

        let mut fold = Fold::default();
        let covered = match snapshot::load_snapshot(dir)? {
            Some(Snapshot {
                covered_generation,
                epoch,
                records,
            }) => {
                fold.epoch = epoch;
                fold.seed(records);
                covered_generation
            }
            None => 0,
        };

        // Collect wal generations present on disk.
        let mut generations: Vec<u64> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| PersistError::io("list dir", dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| PersistError::io("list dir", dir, e))?;
            if let Some(gen) = entry.file_name().to_str().and_then(wal::parse_wal_name) {
                generations.push(gen);
            }
        }
        generations.sort_unstable();

        // Stale generations are already folded into the snapshot.
        for &gen in generations.iter().filter(|&&g| g <= covered) {
            let path = dir.join(wal::wal_file_name(gen));
            fs::remove_file(&path).map_err(|e| PersistError::io("remove stale wal", &path, e))?;
        }
        generations.retain(|&g| g > covered);

        let mut replayed_ops = 0;
        let mut torn_tail = false;
        let mut resume: Option<(PathBuf, u64, u64)> = None;
        for (i, &gen) in generations.iter().enumerate() {
            let path = dir.join(wal::wal_file_name(gen));
            let replay = wal::replay_wal(&path, gen)?;
            replayed_ops += replay.ops.len();
            torn_tail |= replay.torn.is_some();
            for op in replay.ops {
                fold.apply(op);
            }
            if i + 1 == generations.len() {
                resume = Some((path, gen, replay.valid_len));
            }
        }

        let wal = match resume {
            Some((path, gen, valid_len)) if valid_len > 0 => {
                WalWriter::reopen(&path, gen, valid_len, options.flush)?
            }
            // No WAL yet, or the newest one never got a durable header:
            // start it fresh.
            Some((_, gen, _)) => WalWriter::create(dir, gen, options.flush)?,
            None => WalWriter::create(dir, covered + 1, options.flush)?,
        };

        let state = RecoveredState {
            records: fold.by_user.into_values().collect(),
            epoch: fold.epoch,
            replayed_ops,
            torn_tail,
        };
        Ok((
            DurableLog {
                dir: dir.to_path_buf(),
                options,
                inner: Mutex::new(Inner {
                    wal,
                    ops_since_snapshot: replayed_ops,
                }),
                compactor: Mutex::new(None),
                deferred: Mutex::new(None),
            },
            state,
        ))
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Stashes `err` to be surfaced by the next [`DurableLog::sync`]
    /// (only the first deferred error is kept). Owners use this for
    /// failures on paths they keep infallible, mirroring what `append`
    /// does internally.
    pub fn defer_error(&self, err: PersistError) {
        let mut slot = self
            .deferred
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        slot.get_or_insert(err);
    }

    /// Appends one op. I/O failures are deferred (stashed and surfaced
    /// by the next [`DurableLog::sync`]) so the hot mutation path stays
    /// infallible. Returns `true` when the op budget since the last
    /// snapshot is exhausted and the owner should call
    /// [`DurableLog::compact`].
    pub fn append(&self, op: &WalOp) -> bool {
        let mut inner = self.lock_inner();
        if let Err(e) = inner.wal.append(op) {
            self.defer_error(e);
        }
        inner.ops_since_snapshot += 1;
        inner.ops_since_snapshot >= self.options.compact_after_ops
    }

    /// fsyncs outstanding appends and surfaces the first deferred error
    /// (append failures, background-compaction failures).
    pub fn sync(&self) -> PersistResult<()> {
        let sync_result = self.lock_inner().wal.sync();
        // Harvest a finished (not in-flight) compactor without blocking.
        {
            let mut worker = self
                .compactor
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if worker.as_ref().is_some_and(JoinHandle::is_finished) {
                if let Some(handle) = worker.take() {
                    match handle.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => self.defer_error(e),
                        Err(_) => self.defer_error(PersistError::io(
                            "compaction thread",
                            &self.dir,
                            std::io::Error::other("panicked"),
                        )),
                    }
                }
            }
        }
        if let Some(err) = self
            .deferred
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            return Err(err);
        }
        sync_result
    }

    /// Rotates the WAL and snapshots `records` (the owner's
    /// authoritative live set, which must reflect exactly the ops
    /// appended so far — callers serialize mutations around this call)
    /// on a background thread. Returns immediately after the rotation;
    /// the heavy snapshot write + promotion + stale-WAL deletion happen
    /// off-thread.
    ///
    /// If a previous compaction is **still running**, this call is a
    /// no-op: callers typically hold their write serialization while
    /// calling, and blocking here would stall every mutation for the
    /// prior snapshot's full write time. The op budget is not reset on
    /// the skip, so the next append re-requests compaction — it happens
    /// as soon as the worker is free. A *finished* worker is harvested
    /// (its error surfaced) before the new one starts.
    pub fn compact(&self, records: Vec<Record>, epoch: u64) -> PersistResult<()> {
        {
            let mut worker = self
                .compactor
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match worker.as_ref() {
                Some(handle) if !handle.is_finished() => return Ok(()),
                Some(_) => {
                    // Finished: the join is immediate; surface its result.
                    match worker.take().expect("checked Some").join() {
                        Ok(result) => result?,
                        Err(_) => {
                            return Err(PersistError::io(
                                "compaction thread",
                                &self.dir,
                                std::io::Error::other("panicked"),
                            ))
                        }
                    }
                }
                None => {}
            }
        }

        let old_generation = {
            let mut inner = self.lock_inner();
            // Everything the snapshot will cover must be on disk before
            // the covering snapshot can claim it.
            inner.wal.sync()?;
            let old = inner.wal.generation();
            inner.wal = WalWriter::create(&self.dir, old + 1, self.options.flush)?;
            inner.ops_since_snapshot = 0;
            old
        };

        let dir = self.dir.clone();
        let handle = std::thread::spawn(move || {
            snapshot::write_snapshot(
                &dir,
                &Snapshot {
                    covered_generation: old_generation,
                    epoch,
                    records,
                },
            )?;
            // The old generations are now redundant.
            for gen_path in stale_wals(&dir, old_generation)? {
                fs::remove_file(&gen_path)
                    .map_err(|e| PersistError::io("remove stale wal", &gen_path, e))?;
            }
            Ok(())
        });
        *self
            .compactor
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(handle);
        Ok(())
    }

    /// Ops appended since the last snapshot (diagnostics).
    pub fn ops_since_snapshot(&self) -> usize {
        self.lock_inner().ops_since_snapshot
    }

    /// `true` while a background compaction is running. Owners check
    /// this before assembling the (potentially large) live record set
    /// for [`DurableLog::compact`], which would be discarded by the
    /// in-flight skip anyway.
    pub fn compaction_in_flight(&self) -> bool {
        self.compactor
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
            .is_some_and(|handle| !handle.is_finished())
    }

    /// Blocks until any in-flight compaction finishes, surfacing its
    /// result.
    pub fn join_compactor(&self) -> PersistResult<()> {
        let handle = self
            .compactor
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        match handle.map(JoinHandle::join) {
            None => Ok(()),
            Some(Ok(result)) => result,
            Some(Err(_)) => Err(PersistError::io(
                "compaction thread",
                &self.dir,
                std::io::Error::other("panicked"),
            )),
        }
    }
}

impl Drop for DurableLog {
    fn drop(&mut self) {
        // Best-effort: flush the group-commit tail and let the
        // compactor finish so the directory is quiescent when we return.
        let _ = self.join_compactor();
        let _ = self.lock_inner().wal.sync();
    }
}

/// The WAL paths of every generation `<= up_to` still present in `dir`.
fn stale_wals(dir: &Path, up_to: u64) -> PersistResult<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io("list dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io("list dir", dir, e))?;
        if let Some(gen) = entry.file_name().to_str().and_then(wal::parse_wal_name) {
            if gen <= up_to {
                out.push(dir.join(wal::wal_file_name(gen)));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_bigint::BigUint;
    use sla_hve::Ciphertext;
    use sla_pairing::{GElem, GtElem};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-persist-log-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(user_id: u64, epoch: u64) -> Record {
        Record {
            user_id,
            epoch,
            expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
            ciphertext: Ciphertext::from_parts(
                GtElem::from_canonical_log(BigUint::from_u64(user_id * 3 + 1)),
                GElem::from_canonical_log(BigUint::from_u64(user_id * 5 + 2)),
                vec![(
                    GElem::from_canonical_log(BigUint::from_u64(user_id)),
                    GElem::from_canonical_log(BigUint::from_u64(user_id + 9)),
                )],
            ),
        }
    }

    fn ids(state: &RecoveredState) -> Vec<u64> {
        state.records.iter().map(|r| r.user_id).collect()
    }

    #[test]
    fn open_append_reopen() {
        let dir = temp_dir("reopen");
        {
            let (log, state) = DurableLog::open(&dir, LogOptions::default()).unwrap();
            assert!(state.records.is_empty());
            for id in 0..5 {
                log.append(&WalOp::Upsert(record(id, 0)));
            }
            log.append(&WalOp::Remove { user_id: 3 });
            log.append(&WalOp::Epoch { epoch: 2 });
            log.sync().unwrap();
        }
        let (_log, state) = DurableLog::open(&dir, LogOptions::default()).unwrap();
        assert_eq!(ids(&state), vec![0, 1, 2, 4]);
        assert_eq!(state.epoch, 2);
        assert_eq!(state.replayed_ops, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_rotates_and_recovery_prefers_snapshot() {
        let dir = temp_dir("compact");
        {
            let (log, _) = DurableLog::open(
                &dir,
                LogOptions {
                    compact_after_ops: 4,
                    ..LogOptions::default()
                },
            )
            .unwrap();
            let mut live: BTreeMap<u64, Record> = BTreeMap::new();
            let mut due = false;
            for id in 0..6 {
                let r = record(id, 1);
                live.insert(id, r.clone());
                due = log.append(&WalOp::Upsert(r));
            }
            assert!(due, "op budget of 4 exhausted");
            log.compact(live.values().cloned().collect(), 1).unwrap();
            log.join_compactor().unwrap();
            // Post-compaction ops land in the new generation.
            log.append(&WalOp::Upsert(record(100, 2)));
            log.sync().unwrap();
            assert_eq!(log.ops_since_snapshot(), 1);
        }
        assert!(dir.join(SNAPSHOT_FILE_NAME).exists());
        // Exactly one wal file (the rotated generation) remains.
        let wals: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                e.unwrap()
                    .file_name()
                    .to_str()
                    .and_then(wal::parse_wal_name)
            })
            .collect();
        assert_eq!(wals.len(), 1);
        let (_log, state) = DurableLog::open(&dir, LogOptions::default()).unwrap();
        assert_eq!(ids(&state), vec![0, 1, 2, 3, 4, 5, 100]);
        assert_eq!(state.replayed_ops, 1, "only the suffix replays");
        fs::remove_dir_all(&dir).unwrap();
    }

    const SNAPSHOT_FILE_NAME: &str = crate::snapshot::SNAPSHOT_FILE;

    #[test]
    fn crash_between_rotation_and_promotion_recovers_everything() {
        // Simulate the crash window by hand-rolling the layout: ops in
        // wal.1, a rotation to wal.2 with more ops, and NO snapshot.
        let dir = temp_dir("crashwindow");
        {
            let mut w1 = WalWriter::create(&dir, 1, FlushPolicy::EveryOp).unwrap();
            for id in 0..3 {
                w1.append(&WalOp::Upsert(record(id, 0))).unwrap();
            }
        }
        {
            let mut w2 = WalWriter::create(&dir, 2, FlushPolicy::EveryOp).unwrap();
            w2.append(&WalOp::Remove { user_id: 1 }).unwrap();
            w2.append(&WalOp::Upsert(record(7, 1))).unwrap();
        }
        let (_log, state) = DurableLog::open(&dir, LogOptions::default()).unwrap();
        assert_eq!(ids(&state), vec![0, 2, 7]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evict_before_replays() {
        let dir = temp_dir("evict");
        {
            let (log, _) = DurableLog::open(&dir, LogOptions::default()).unwrap();
            for id in 0..4 {
                log.append(&WalOp::Upsert(record(id, id)));
            }
            log.append(&WalOp::EvictBefore { min_epoch: 2 });
            log.sync().unwrap();
        }
        let (_log, state) = DurableLog::open(&dir, LogOptions::default()).unwrap();
        assert_eq!(ids(&state), vec![2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_snapshot_tmp_is_cleaned() {
        let dir = temp_dir("straytmp");
        fs::write(dir.join(SNAPSHOT_TMP), b"half a snapshot").unwrap();
        let (_log, state) = DurableLog::open(&dir, LogOptions::default()).unwrap();
        assert!(state.records.is_empty());
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
