//! `Lane`: one durability lane — recovery, appending, and background
//! snapshot compaction over one lane directory — plus the legacy
//! (pre-sharding) recovery path used for one-shot migration.
//!
//! A lane is the single-log engine the sharded store runs one-per-shard
//! (see [`crate::sharded`] for the layout and routing). Each lane owns
//! its own directory:
//!
//! ```text
//! <lane dir>/snapshot.bin   # promoted paged snapshot (atomic rename)
//! <lane dir>/snapshot.tmp   # in-flight snapshot (stray = crashed; deleted)
//! <lane dir>/wal.NNNNNN     # one WAL file per lane generation
//! ```
//!
//! ## Recovery
//!
//! 1. Delete a stray `snapshot.tmp` (a compaction that never promoted).
//! 2. Load `snapshot.bin` → the lane's base record set and its
//!    `covered_generation` `G` (0 when no snapshot exists); the paged
//!    header pins the snapshot to this lane's shard identity.
//! 3. Replay every `wal.g` with `g > G` in ascending generation order,
//!    tolerating a torn tail in each (unsynced suffixes die with the
//!    crash; everything replayed was a complete CRC-valid frame).
//! 4. Delete `wal.g` with `g <= G` (their contents are in the
//!    snapshot; they linger only if a crash interrupted compaction
//!    between promotion and deletion).
//! 5. Resume appending to the newest WAL (truncated to its last valid
//!    frame), or create generation `G + 1` if none survives.
//!
//! ## Compaction
//!
//! `Lane::append` reports when the configured op budget since the
//! last snapshot is exhausted; the owner then calls `Lane::compact`
//! with the lane's authoritative live record set. The WAL is rotated to
//! a fresh generation immediately (under the caller's per-lane
//! serialization), and the snapshot write + promotion + old-WAL
//! deletion run on a **background thread** so mutations and matching
//! continue unimpeded. A crash at any point leaves either the old
//! snapshot plus all WALs, or the new snapshot plus the new WAL — both
//! recover to the same state.

use crate::codec::{Record, WalOp};
use crate::error::{PersistError, PersistResult};
use crate::pages::{self, ShardSnapshot};
use crate::snapshot::{self, Snapshot, SNAPSHOT_TMP};
use crate::wal::{self, FlushPolicy, WalWriter};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Tuning knobs for [`crate::ShardedWal::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogOptions {
    /// When WAL appends reach stable storage.
    pub flush: FlushPolicy,
    /// Ops appended to one lane since its last snapshot before
    /// `Lane::append` requests compaction of that lane.
    pub compact_after_ops: usize,
}

impl Default for LogOptions {
    fn default() -> Self {
        LogOptions {
            flush: FlushPolicy::EveryOp,
            compact_after_ops: 4096,
        }
    }
}

/// What one lane's recovery reconstructed from its directory.
#[derive(Debug)]
pub(crate) struct LaneRecovered {
    /// The lane's live records (snapshot base + WAL replay), one per
    /// user, in ascending `user_id` order.
    pub records: Vec<Record>,
    /// The lane's view of the service epoch (maximum `Epoch` op seen,
    /// or the snapshot's).
    pub epoch: u64,
    /// WAL ops replayed on top of the snapshot.
    pub replayed_ops: usize,
    /// Whether any WAL had a torn tail truncated away.
    pub torn_tail: bool,
}

/// Replay state folded over snapshot records and WAL ops.
#[derive(Debug, Default)]
pub(crate) struct Fold {
    pub by_user: BTreeMap<u64, Record>,
    pub epoch: u64,
}

impl Fold {
    pub fn seed(&mut self, records: Vec<Record>) {
        for r in records {
            self.by_user.insert(r.user_id, r);
        }
    }

    pub fn apply(&mut self, op: WalOp) {
        match op {
            WalOp::Upsert(record) => {
                self.by_user.insert(record.user_id, record);
            }
            WalOp::Remove { user_id } => {
                self.by_user.remove(&user_id);
            }
            WalOp::EvictBefore { min_epoch } => {
                self.by_user.retain(|_, r| r.epoch >= min_epoch);
            }
            WalOp::Epoch { epoch } => {
                self.epoch = self.epoch.max(epoch);
            }
        }
    }
}

/// Collects the WAL generations present in `dir`, ascending.
fn wal_generations(dir: &Path) -> PersistResult<Vec<u64>> {
    let mut generations: Vec<u64> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io("list dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io("list dir", dir, e))?;
        if let Some(gen) = entry.file_name().to_str().and_then(wal::parse_wal_name) {
            generations.push(gen);
        }
    }
    generations.sort_unstable();
    Ok(generations)
}

/// `true` if `dir` holds any artifact of the pre-sharding single-log
/// layout (a root-level snapshot, in-flight snapshot, or WAL).
pub(crate) fn has_legacy_layout(dir: &Path) -> PersistResult<bool> {
    if dir.join(snapshot::SNAPSHOT_FILE).exists() || dir.join(SNAPSHOT_TMP).exists() {
        return Ok(true);
    }
    Ok(!wal_generations(dir)?.is_empty())
}

/// Recovers the pre-sharding layout read-only: loads the root v1
/// snapshot (if any) and replays every newer root WAL, without creating
/// or truncating anything. The migration in [`crate::sharded`] routes
/// the result into per-shard lanes; the legacy files themselves are
/// deleted only after the sharded layout has committed.
pub(crate) fn recover_legacy(dir: &Path) -> PersistResult<Fold> {
    let mut fold = Fold::default();
    let covered = match snapshot::load_snapshot(dir)? {
        Some(Snapshot {
            covered_generation,
            epoch,
            records,
        }) => {
            fold.epoch = epoch;
            fold.seed(records);
            covered_generation
        }
        None => 0,
    };
    for gen in wal_generations(dir)?.into_iter().filter(|&g| g > covered) {
        let path = dir.join(wal::wal_file_name(gen));
        let replay = wal::replay_wal(&path, gen)?;
        for op in replay.ops {
            fold.apply(op);
        }
    }
    Ok(fold)
}

/// Serialized appender state.
#[derive(Debug)]
struct Inner {
    wal: WalWriter,
    ops_since_snapshot: usize,
}

/// One durability lane over one directory (see the module docs).
///
/// Appends are internally locked but callers that require a strict
/// correspondence between apply order and log order (the service layer's
/// store does) must serialize externally per lane — the lane cannot know
/// in which order two racing upserts hit the in-memory shard.
#[derive(Debug)]
pub(crate) struct Lane {
    dir: PathBuf,
    shard: usize,
    shard_count: usize,
    options: LogOptions,
    inner: Mutex<Inner>,
    /// Wait-free mirrors of the appender state for stats: the current
    /// WAL generation and the ops-since-snapshot depth. Updated under
    /// the `inner` lock, read without it, so a stats RPC never blocks
    /// on an in-flight fsync.
    generation: AtomicU64,
    depth: AtomicUsize,
    /// The in-flight background compaction, if any.
    compactor: Mutex<Option<JoinHandle<PersistResult<()>>>>,
    /// First deferred I/O error of this lane (append is infallible at
    /// the call site; the error surfaces on the next `sync`). Lanes keep
    /// one slot each — the sharded front aggregates across lanes, so a
    /// failure in one lane can never mask another lane's.
    deferred: Mutex<Option<PersistError>>,
}

impl Lane {
    /// Opens (creating if necessary) the lane at `dir` — shard `shard`
    /// of `shard_count` — and recovers its state.
    pub fn open(
        dir: &Path,
        shard: usize,
        shard_count: usize,
        options: LogOptions,
    ) -> PersistResult<(Self, LaneRecovered)> {
        fs::create_dir_all(dir).map_err(|e| PersistError::io("create lane dir", dir, e))?;
        let tmp = dir.join(SNAPSHOT_TMP);
        if tmp.exists() {
            fs::remove_file(&tmp).map_err(|e| PersistError::io("remove snapshot.tmp", &tmp, e))?;
        }

        let mut fold = Fold::default();
        let covered = match pages::load_shard_snapshot(dir, shard, shard_count)? {
            Some(snap) => {
                fold.epoch = snap.epoch;
                fold.seed(snap.records);
                snap.covered_generation
            }
            None => 0,
        };

        let mut generations = wal_generations(dir)?;

        // Stale generations are already folded into the snapshot.
        for &gen in generations.iter().filter(|&&g| g <= covered) {
            let path = dir.join(wal::wal_file_name(gen));
            fs::remove_file(&path).map_err(|e| PersistError::io("remove stale wal", &path, e))?;
        }
        generations.retain(|&g| g > covered);

        let mut replayed_ops = 0;
        let mut torn_tail = false;
        let mut resume: Option<(PathBuf, u64, u64)> = None;
        for (i, &gen) in generations.iter().enumerate() {
            let path = dir.join(wal::wal_file_name(gen));
            let replay = wal::replay_wal(&path, gen)?;
            replayed_ops += replay.ops.len();
            torn_tail |= replay.torn.is_some();
            for op in replay.ops {
                fold.apply(op);
            }
            if i + 1 == generations.len() {
                resume = Some((path, gen, replay.valid_len));
            }
        }

        let wal = match resume {
            Some((path, gen, valid_len)) if valid_len > 0 => {
                WalWriter::reopen(&path, gen, valid_len, options.flush)?
            }
            // No WAL yet, or the newest one never got a durable header:
            // start it fresh.
            Some((_, gen, _)) => WalWriter::create(dir, gen, options.flush)?,
            None => WalWriter::create(dir, covered + 1, options.flush)?,
        };

        let state = LaneRecovered {
            records: fold.by_user.into_values().collect(),
            epoch: fold.epoch,
            replayed_ops,
            torn_tail,
        };
        Ok((
            Lane {
                dir: dir.to_path_buf(),
                shard,
                shard_count,
                options,
                generation: AtomicU64::new(wal.generation()),
                depth: AtomicUsize::new(replayed_ops),
                inner: Mutex::new(Inner {
                    wal,
                    ops_since_snapshot: replayed_ops,
                }),
                compactor: Mutex::new(None),
                deferred: Mutex::new(None),
            },
            state,
        ))
    }

    /// The lane's current WAL generation (wait-free).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Ops appended since the lane's last snapshot (wait-free).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Stashes `err` to be surfaced by the next [`Lane::sync`] (only
    /// the first deferred error of this lane is kept). Owners use this
    /// for failures on paths they keep infallible, mirroring what
    /// `append` does internally.
    pub fn defer_error(&self, err: PersistError) {
        let mut slot = self
            .deferred
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        slot.get_or_insert(err);
    }

    /// Appends one op. I/O failures are deferred (stashed and surfaced
    /// by the next [`Lane::sync`]) so the hot mutation path stays
    /// infallible. Returns `true` when the lane's op budget since its
    /// last snapshot is exhausted and the owner should call
    /// [`Lane::compact`].
    pub fn append(&self, op: &WalOp) -> bool {
        let mut inner = self.lock_inner();
        if let Err(e) = inner.wal.append(op) {
            self.defer_error(e);
        }
        inner.ops_since_snapshot += 1;
        self.depth
            .store(inner.ops_since_snapshot, Ordering::Relaxed);
        inner.ops_since_snapshot >= self.options.compact_after_ops
    }

    /// fsyncs outstanding appends and surfaces the lane's first
    /// deferred error (append failures, background-compaction
    /// failures).
    pub fn sync(&self) -> PersistResult<()> {
        let sync_result = self.lock_inner().wal.sync();
        // Harvest a finished (not in-flight) compactor without blocking.
        {
            let mut worker = self
                .compactor
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if worker.as_ref().is_some_and(JoinHandle::is_finished) {
                if let Some(handle) = worker.take() {
                    match handle.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => self.defer_error(e),
                        Err(_) => self.defer_error(PersistError::io(
                            "compaction thread",
                            &self.dir,
                            std::io::Error::other("panicked"),
                        )),
                    }
                }
            }
        }
        if let Some(err) = self
            .deferred
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            return Err(err);
        }
        sync_result
    }

    /// Rotates the lane's WAL and snapshots `records` (the owner's
    /// authoritative live set **for this shard**, which must reflect
    /// exactly the ops appended so far — callers serialize this lane's
    /// mutations around this call) on a background thread. Returns
    /// immediately after the rotation; the heavy snapshot write +
    /// promotion + stale-WAL deletion happen off-thread.
    ///
    /// If a previous compaction of this lane is **still running**, this
    /// call is a no-op: callers typically hold their per-lane write
    /// serialization while calling, and blocking here would stall the
    /// lane's mutations for the prior snapshot's full write time. The
    /// op budget is not reset on the skip, so the next append
    /// re-requests compaction — it happens as soon as the worker is
    /// free. A *finished* worker is harvested (its error surfaced)
    /// before the new one starts.
    pub fn compact(&self, records: Vec<Record>, epoch: u64) -> PersistResult<()> {
        {
            let mut worker = self
                .compactor
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match worker.as_ref() {
                Some(handle) if !handle.is_finished() => return Ok(()),
                Some(_) => {
                    // Finished: the join is immediate; surface its result.
                    match worker.take().expect("checked Some").join() {
                        Ok(result) => result?,
                        Err(_) => {
                            return Err(PersistError::io(
                                "compaction thread",
                                &self.dir,
                                std::io::Error::other("panicked"),
                            ))
                        }
                    }
                }
                None => {}
            }
        }

        let old_generation = {
            let mut inner = self.lock_inner();
            // Everything the snapshot will cover must be on disk before
            // the covering snapshot can claim it.
            inner.wal.sync()?;
            let old = inner.wal.generation();
            inner.wal = WalWriter::create(&self.dir, old + 1, self.options.flush)?;
            inner.ops_since_snapshot = 0;
            self.generation.store(old + 1, Ordering::Relaxed);
            self.depth.store(0, Ordering::Relaxed);
            old
        };

        let dir = self.dir.clone();
        let (shard, shard_count) = (self.shard, self.shard_count);
        let handle = std::thread::spawn(move || {
            pages::write_shard_snapshot(
                &dir,
                &ShardSnapshot {
                    shard,
                    shard_count,
                    covered_generation: old_generation,
                    epoch,
                    records,
                },
            )?;
            // The old generations are now redundant.
            for gen_path in stale_wals(&dir, old_generation)? {
                fs::remove_file(&gen_path)
                    .map_err(|e| PersistError::io("remove stale wal", &gen_path, e))?;
            }
            Ok(())
        });
        *self
            .compactor
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(handle);
        Ok(())
    }

    /// Ops appended since the lane's last snapshot (diagnostics).
    pub fn ops_since_snapshot(&self) -> usize {
        self.lock_inner().ops_since_snapshot
    }

    /// `true` while a background compaction of this lane is running.
    /// Owners check this before assembling the shard's live record set
    /// for [`Lane::compact`], which would be discarded by the in-flight
    /// skip anyway.
    pub fn compaction_in_flight(&self) -> bool {
        self.compactor
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_ref()
            .is_some_and(|handle| !handle.is_finished())
    }

    /// Blocks until any in-flight compaction of this lane finishes,
    /// surfacing its result.
    pub fn join_compactor(&self) -> PersistResult<()> {
        let handle = self
            .compactor
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        match handle.map(JoinHandle::join) {
            None => Ok(()),
            Some(Ok(result)) => result,
            Some(Err(_)) => Err(PersistError::io(
                "compaction thread",
                &self.dir,
                std::io::Error::other("panicked"),
            )),
        }
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        // Best-effort: flush the group-commit tail and let the
        // compactor finish so the directory is quiescent when we return.
        let _ = self.join_compactor();
        let _ = self.lock_inner().wal.sync();
    }
}

/// The WAL paths of every generation `<= up_to` still present in `dir`.
fn stale_wals(dir: &Path, up_to: u64) -> PersistResult<Vec<PathBuf>> {
    Ok(wal_generations(dir)?
        .into_iter()
        .filter(|&g| g <= up_to)
        .map(|g| dir.join(wal::wal_file_name(g)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_bigint::BigUint;
    use sla_hve::Ciphertext;
    use sla_pairing::{GElem, GtElem};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-persist-log-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(user_id: u64, epoch: u64) -> Record {
        Record {
            user_id,
            epoch,
            expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
            ciphertext: Ciphertext::from_parts(
                GtElem::from_canonical_log(BigUint::from_u64(user_id * 3 + 1)),
                GElem::from_canonical_log(BigUint::from_u64(user_id * 5 + 2)),
                vec![(
                    GElem::from_canonical_log(BigUint::from_u64(user_id)),
                    GElem::from_canonical_log(BigUint::from_u64(user_id + 9)),
                )],
            ),
        }
    }

    fn ids(state: &LaneRecovered) -> Vec<u64> {
        state.records.iter().map(|r| r.user_id).collect()
    }

    fn open_lane(dir: &Path, options: LogOptions) -> (Lane, LaneRecovered) {
        Lane::open(dir, 0, 1, options).unwrap()
    }

    #[test]
    fn open_append_reopen() {
        let dir = temp_dir("reopen");
        {
            let (lane, state) = open_lane(&dir, LogOptions::default());
            assert!(state.records.is_empty());
            for id in 0..5 {
                lane.append(&WalOp::Upsert(record(id, 0)));
            }
            lane.append(&WalOp::Remove { user_id: 3 });
            lane.append(&WalOp::Epoch { epoch: 2 });
            lane.sync().unwrap();
        }
        let (_lane, state) = open_lane(&dir, LogOptions::default());
        assert_eq!(ids(&state), vec![0, 1, 2, 4]);
        assert_eq!(state.epoch, 2);
        assert_eq!(state.replayed_ops, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_rotates_and_recovery_prefers_snapshot() {
        let dir = temp_dir("compact");
        {
            let (lane, _) = open_lane(
                &dir,
                LogOptions {
                    compact_after_ops: 4,
                    ..LogOptions::default()
                },
            );
            assert_eq!((lane.generation(), lane.depth()), (1, 0));
            let mut live: BTreeMap<u64, Record> = BTreeMap::new();
            let mut due = false;
            for id in 0..6 {
                let r = record(id, 1);
                live.insert(id, r.clone());
                due = lane.append(&WalOp::Upsert(r));
            }
            assert!(due, "op budget of 4 exhausted");
            assert_eq!(lane.depth(), 6);
            lane.compact(live.values().cloned().collect(), 1).unwrap();
            lane.join_compactor().unwrap();
            assert_eq!((lane.generation(), lane.depth()), (2, 0));
            // Post-compaction ops land in the new generation.
            lane.append(&WalOp::Upsert(record(100, 2)));
            lane.sync().unwrap();
            assert_eq!(lane.ops_since_snapshot(), 1);
        }
        assert!(dir.join(SNAPSHOT_FILE_NAME).exists());
        // Exactly one wal file (the rotated generation) remains.
        let wals: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                e.unwrap()
                    .file_name()
                    .to_str()
                    .and_then(wal::parse_wal_name)
            })
            .collect();
        assert_eq!(wals.len(), 1);
        let (_lane, state) = open_lane(&dir, LogOptions::default());
        assert_eq!(ids(&state), vec![0, 1, 2, 3, 4, 5, 100]);
        assert_eq!(state.replayed_ops, 1, "only the suffix replays");
        fs::remove_dir_all(&dir).unwrap();
    }

    const SNAPSHOT_FILE_NAME: &str = crate::snapshot::SNAPSHOT_FILE;

    #[test]
    fn lane_snapshot_carries_shard_identity() {
        // A lane compacted as shard 2-of-4 must refuse to reopen as any
        // other identity (the paged header pins it).
        let dir = temp_dir("identity");
        {
            let (lane, _) = Lane::open(&dir, 2, 4, LogOptions::default()).unwrap();
            lane.append(&WalOp::Upsert(record(1, 0)));
            lane.compact(vec![record(1, 0)], 0).unwrap();
            lane.join_compactor().unwrap();
        }
        assert!(Lane::open(&dir, 2, 4, LogOptions::default()).is_ok());
        assert!(matches!(
            Lane::open(&dir, 3, 4, LogOptions::default()),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_rotation_and_promotion_recovers_everything() {
        // Simulate the crash window by hand-rolling the layout: ops in
        // wal.1, a rotation to wal.2 with more ops, and NO snapshot.
        let dir = temp_dir("crashwindow");
        {
            let mut w1 = WalWriter::create(&dir, 1, FlushPolicy::EveryOp).unwrap();
            for id in 0..3 {
                w1.append(&WalOp::Upsert(record(id, 0))).unwrap();
            }
        }
        {
            let mut w2 = WalWriter::create(&dir, 2, FlushPolicy::EveryOp).unwrap();
            w2.append(&WalOp::Remove { user_id: 1 }).unwrap();
            w2.append(&WalOp::Upsert(record(7, 1))).unwrap();
        }
        let (_lane, state) = open_lane(&dir, LogOptions::default());
        assert_eq!(ids(&state), vec![0, 2, 7]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evict_before_replays() {
        let dir = temp_dir("evict");
        {
            let (lane, _) = open_lane(&dir, LogOptions::default());
            for id in 0..4 {
                lane.append(&WalOp::Upsert(record(id, id)));
            }
            lane.append(&WalOp::EvictBefore { min_epoch: 2 });
            lane.sync().unwrap();
        }
        let (_lane, state) = open_lane(&dir, LogOptions::default());
        assert_eq!(ids(&state), vec![2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_snapshot_tmp_is_cleaned() {
        let dir = temp_dir("straytmp");
        fs::write(dir.join(SNAPSHOT_TMP), b"half a snapshot").unwrap();
        let (_lane, state) = open_lane(&dir, LogOptions::default());
        assert!(state.records.is_empty());
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_recovery_folds_snapshot_and_wals() {
        let dir = temp_dir("legacy");
        assert!(!has_legacy_layout(&dir).unwrap());
        snapshot::write_snapshot(
            &dir,
            &Snapshot {
                covered_generation: 1,
                epoch: 3,
                records: vec![record(1, 0), record(2, 0)],
            },
        )
        .unwrap();
        {
            let mut w = WalWriter::create(&dir, 2, FlushPolicy::EveryOp).unwrap();
            w.append(&WalOp::Remove { user_id: 1 }).unwrap();
            w.append(&WalOp::Upsert(record(9, 4))).unwrap();
            w.append(&WalOp::Epoch { epoch: 5 }).unwrap();
        }
        assert!(has_legacy_layout(&dir).unwrap());
        let fold = recover_legacy(&dir).unwrap();
        assert_eq!(fold.by_user.keys().copied().collect::<Vec<_>>(), vec![2, 9]);
        assert_eq!(fold.epoch, 5);
        // Read-only: the legacy files are untouched.
        assert!(dir.join(SNAPSHOT_FILE_NAME).exists());
        assert!(has_legacy_layout(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }
}
