//! [`PersistError`]: why a durable-store operation could not complete.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// `Result` alias over [`PersistError`].
pub type PersistResult<T> = Result<T, PersistError>;

/// Why a durable-store operation failed.
///
/// Three families: `Io` wraps an operating-system failure (the store may
/// be retried once the environment recovers), `Corrupt` means the on-disk
/// bytes are not a valid artifact of this subsystem (the frame structure
/// or a CRC check failed somewhere other than a tolerated torn tail), and
/// `Lanes` aggregates failures from more than one durability lane of a
/// sharded log — every failed lane is reported, so one healthy lane can
/// never mask a broken one.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation failed.
    Io {
        /// What the subsystem was doing (`"open wal"`, `"fsync"`, ...).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// On-disk bytes failed structural or CRC validation.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the bad frame (start of frame).
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// Two or more durability lanes of a sharded log failed. Carries
    /// every per-lane error (shard index paired with what went wrong in
    /// that lane) — never just the first.
    Lanes {
        /// `(shard, error)` for every failed lane, in shard order.
        errors: Vec<(usize, PersistError)>,
    },
}

impl PersistError {
    /// Builds an [`PersistError::Io`] with context.
    pub fn io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        PersistError::Io {
            op,
            path: path.into(),
            source,
        }
    }

    /// Builds a [`PersistError::Corrupt`] with context.
    pub fn corrupt(path: impl Into<PathBuf>, offset: u64, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: path.into(),
            offset,
            detail: detail.into(),
        }
    }

    /// Folds per-lane failures into one error: `None` when every lane
    /// succeeded, the error itself for a single failed lane (its paths
    /// already carry the shard directory), [`PersistError::Lanes`] when
    /// two or more failed.
    pub fn from_lanes(mut errors: Vec<(usize, PersistError)>) -> Option<Self> {
        match errors.len() {
            0 => None,
            1 => Some(errors.remove(0).1),
            _ => Some(PersistError::Lanes { errors }),
        }
    }

    /// `true` if this error (or, for [`PersistError::Lanes`], any lane's
    /// error) is a corruption rather than an environmental I/O failure.
    pub fn is_corrupt(&self) -> bool {
        match self {
            PersistError::Io { .. } => false,
            PersistError::Corrupt { .. } => true,
            PersistError::Lanes { errors } => errors.iter().any(|(_, e)| e.is_corrupt()),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            PersistError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt frame in {} at offset {offset}: {detail}",
                path.display()
            ),
            PersistError::Lanes { errors } => {
                write!(f, "{} durability lanes failed:", errors.len())?;
                for (shard, e) in errors {
                    write!(f, " [shard {shard}] {e};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Corrupt { .. } => None,
            // The per-lane errors are all in the Display form; expose the
            // first as the causal chain.
            PersistError::Lanes { errors } => errors.first().map(|(_, e)| e as _),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = PersistError::io(
            "open wal",
            "/tmp/x/wal.0",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("open wal") && s.contains("wal.0"), "{s}");

        let c = PersistError::corrupt("/tmp/x/snapshot.bin", 42, "crc mismatch");
        let s = c.to_string();
        assert!(s.contains("offset 42") && s.contains("crc mismatch"), "{s}");
    }

    #[test]
    fn lane_aggregation_reports_every_failed_lane() {
        assert!(PersistError::from_lanes(Vec::new()).is_none());

        let one = PersistError::from_lanes(vec![(
            3,
            PersistError::io(
                "fsync wal",
                "/x/shard.003/wal.000001",
                io::Error::other("nope"),
            ),
        )])
        .unwrap();
        assert!(
            matches!(one, PersistError::Io { .. }),
            "single lane unwraps"
        );

        let many = PersistError::from_lanes(vec![
            (
                1,
                PersistError::io(
                    "fsync wal",
                    "/x/shard.001/wal.000002",
                    io::Error::other("a"),
                ),
            ),
            (
                5,
                PersistError::corrupt("/x/shard.005/snapshot.bin", 7, "page crc"),
            ),
        ])
        .unwrap();
        let s = many.to_string();
        assert!(s.contains("[shard 1]") && s.contains("[shard 5]"), "{s}");
        assert!(many.is_corrupt(), "any corrupt lane marks the aggregate");
    }
}
