//! [`PersistError`]: why a durable-store operation could not complete.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// `Result` alias over [`PersistError`].
pub type PersistResult<T> = Result<T, PersistError>;

/// Why a durable-store operation failed.
///
/// Two families: `Io` wraps an operating-system failure (the store may be
/// retried once the environment recovers), `Corrupt` means the on-disk
/// bytes are not a valid artifact of this subsystem (the frame structure
/// or a CRC check failed somewhere other than a tolerated torn tail).
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation failed.
    Io {
        /// What the subsystem was doing (`"open wal"`, `"fsync"`, ...).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// On-disk bytes failed structural or CRC validation.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the bad frame (start of frame).
        offset: u64,
        /// What failed.
        detail: String,
    },
}

impl PersistError {
    /// Builds an [`PersistError::Io`] with context.
    pub fn io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        PersistError::Io {
            op,
            path: path.into(),
            source,
        }
    }

    /// Builds a [`PersistError::Corrupt`] with context.
    pub fn corrupt(path: impl Into<PathBuf>, offset: u64, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: path.into(),
            offset,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            PersistError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt frame in {} at offset {offset}: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Corrupt { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = PersistError::io(
            "open wal",
            "/tmp/x/wal.0",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("open wal") && s.contains("wal.0"), "{s}");

        let c = PersistError::corrupt("/tmp/x/snapshot.bin", 42, "crc mismatch");
        let s = c.to_string();
        assert!(s.contains("offset 42") && s.contains("crc mismatch"), "{s}");
    }
}
