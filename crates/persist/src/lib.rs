//! # sla-persist
//!
//! Durable subscription storage for the secure location-alert service:
//! the on-disk half of the Service Provider's store.
//!
//! The paper's system model assumes a **long-lived** SP holding every
//! subscriber's HVE ciphertext; follow-up work (dynamic alert zones,
//! tunable privacy) assumes the encrypted index survives across epochs.
//! This crate makes that real with three layers:
//!
//! * [`codec`] — a canonical little-endian binary codec for stored
//!   subscriptions and WAL operations, CRC-framed
//!   (`[len][payload][crc32]`, the CRC covering the length too). Group
//!   elements are encoded by their **canonical** discrete logs — the
//!   same representation-independent bytes serde pins — never the
//!   Montgomery residues, which depend on the in-memory reducer.
//! * [`wal`] — an append-only write-ahead log with group-commit fsync
//!   batching ([`FlushPolicy`]); recovery tolerates a torn final record
//!   by truncating to the last complete CRC-valid frame.
//! * [`snapshot`] + [`log`] — background snapshot compaction: the live
//!   record set is rewritten to `snapshot.tmp`, fsync'd, atomically
//!   renamed over `snapshot.bin`, the directory fsync'd, and stale WAL
//!   generations deleted; recovery replays snapshot + WAL suffix.
//!
//! The service-layer integration (`sla-core`'s
//! `StoreBackend::Persistent`) layers [`DurableLog`] under its in-memory
//! hash-sharded index: matching reads memory only, mutations append one
//! WAL frame. This crate knows nothing about matching or the service
//! API — it stores and recovers records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
mod error;
pub mod log;
pub mod snapshot;
pub mod wal;

pub use codec::{Record, WalOp};
pub use error::{PersistError, PersistResult};
pub use log::{DurableLog, LogOptions, RecoveredState};
pub use wal::FlushPolicy;
