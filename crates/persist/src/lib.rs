//! # sla-persist
//!
//! Durable subscription storage for the secure location-alert service:
//! the on-disk half of the Service Provider's store.
//!
//! The paper's system model assumes a **long-lived** SP holding every
//! subscriber's HVE ciphertext; follow-up work (dynamic alert zones,
//! tunable privacy) assumes the encrypted index survives across epochs.
//! This crate makes that real with four layers:
//!
//! * [`codec`] — a canonical little-endian binary codec for stored
//!   subscriptions and WAL operations, CRC-framed
//!   (`[len][payload][crc32]`, the CRC covering the length too). Group
//!   elements are encoded by their **canonical** discrete logs — the
//!   same representation-independent bytes serde pins — never the
//!   Montgomery residues, which depend on the in-memory reducer.
//! * [`wal`] — an append-only write-ahead log with group-commit fsync
//!   batching ([`FlushPolicy`]); recovery tolerates a torn final record
//!   by truncating to the last complete CRC-valid frame.
//! * [`pages`] + [`log`] — per-lane background snapshot compaction: a
//!   lane's live record set is rewritten as a **paged, per-page
//!   checksummed** snapshot to `snapshot.tmp`, fsync'd, atomically
//!   renamed over `snapshot.bin`, the directory fsync'd, and stale WAL
//!   generations deleted; lane recovery replays snapshot + WAL suffix.
//!   ([`snapshot`] keeps the pre-sharding monolithic format readable
//!   for migration.)
//! * [`sharded`] — the [`ShardedWal`] front: one independent durability
//!   lane per store shard (`shard.NNN/` directories plus a `store.meta`
//!   layout descriptor), parallel O(shards) recovery, per-lane deferred
//!   errors aggregated so no lane's failure can be masked, and a
//!   one-shot crash-safe migration of pre-sharding directories.
//!
//! The service-layer integration (`sla-core`'s
//! `StoreBackend::Persistent`) layers [`ShardedWal`] under its in-memory
//! hash-sharded index, lane-aligned with the memory shards: matching
//! reads memory only, mutations append one WAL frame to the owning
//! lane. This crate knows nothing about matching or the service API —
//! it stores and recovers records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
mod error;
pub mod log;
pub mod pages;
pub mod sharded;
pub mod snapshot;
pub mod wal;

pub use codec::{Record, WalOp};
pub use error::{PersistError, PersistResult};
pub use log::LogOptions;
pub use sharded::{LaneStatus, ShardRouter, ShardedRecovery, ShardedWal};
pub use wal::FlushPolicy;
