//! The canonical little-endian binary codec for stored subscriptions and
//! WAL operations.
//!
//! ## Why not serde?
//!
//! The serde shim renders group elements as canonical hex **JSON** —
//! fine for interchange, 2–3× larger than necessary and slow to scan for
//! recovery. The durable store instead uses a fixed binary layout:
//! every integer is little-endian, every big integer is its minimal
//! little-endian byte string behind a `u32` length prefix. Group-element
//! logs are encoded **canonically** (via `discrete_log()`), never as
//! Montgomery residues: residues are representation-dependent (they
//! change with the reducer's `R`), canonical logs are exactly the wire
//! bytes serde already pins.
//!
//! ## Framing
//!
//! Every record on disk is one frame:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes] [crc: u32 LE]
//! ```
//!
//! where `crc = crc32(len_bytes ‖ payload)` — covering the length field
//! too, so a corrupted length cannot silently re-frame the stream. A
//! frame that ends past the end of file (torn write) is distinguishable
//! from one whose bytes fail the CRC; recovery treats both as "the log
//! ends at the previous frame".

use crate::crc::crc32;
use sla_bigint::BigUint;
use sla_hve::Ciphertext;
use sla_pairing::{GElem, GtElem};

/// One durable subscription record — the persisted image of the service
/// layer's `StoredSubscription` (same fields, no behavior).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Routing identifier.
    pub user_id: u64,
    /// Epoch of the most recent upsert.
    pub epoch: u64,
    /// The expected payload `gt^{user_id + 1}` (canonical log on disk).
    pub expected: GtElem,
    /// The encrypted location update (canonical logs on disk).
    pub ciphertext: Ciphertext,
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert-or-replace a subscription.
    Upsert(Record),
    /// Remove a user's subscription.
    Remove {
        /// The user whose record is dropped.
        user_id: u64,
    },
    /// TTL eviction: drop every record with `epoch < min_epoch`.
    EvictBefore {
        /// The retention bound (`epoch >= min_epoch` survives).
        min_epoch: u64,
    },
    /// The service epoch advanced (recovery restores the maximum seen).
    Epoch {
        /// The new epoch value.
        epoch: u64,
    },
}

/// Why a payload failed to decode. Reaching this through a valid CRC
/// means the file was produced by something else (or a version skew) —
/// recovery surfaces it as corruption rather than truncating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Defensive ceiling on one encoded big integer (a group-element log).
/// Far above any modulus this simulation supports (`MAX_GROUP_BITS`
/// yields 64-byte logs) while keeping a corrupted length from asking for
/// gigabytes.
const MAX_BIGUINT_BYTES: u32 = 1 << 16;

/// Defensive ceiling on the HVE width of one record.
const MAX_WIDTH: u32 = 1 << 16;

const TAG_UPSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_EVICT: u8 = 3;
const TAG_EPOCH: u8 = 4;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_biguint(out: &mut Vec<u8>, v: &BigUint) {
    let bytes = v.to_bytes_le();
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(&bytes);
}

fn put_g(out: &mut Vec<u8>, e: &GElem) {
    put_biguint(out, &e.discrete_log());
}

fn put_gt(out: &mut Vec<u8>, e: &GtElem) {
    put_biguint(out, &e.discrete_log());
}

/// Appends the payload encoding of `record` to `out` (no frame).
pub fn encode_record(record: &Record, out: &mut Vec<u8>) {
    put_u64(out, record.user_id);
    put_u64(out, record.epoch);
    put_gt(out, &record.expected);
    let (c_prime, c0, c) = record.ciphertext.parts();
    put_u32(out, c.len() as u32);
    put_gt(out, c_prime);
    put_g(out, c0);
    for (c1, c2) in c {
        put_g(out, c1);
        put_g(out, c2);
    }
}

/// Appends the payload encoding of `op` to `out` (no frame).
pub fn encode_op(op: &WalOp, out: &mut Vec<u8>) {
    match op {
        WalOp::Upsert(record) => {
            out.push(TAG_UPSERT);
            encode_record(record, out);
        }
        WalOp::Remove { user_id } => {
            out.push(TAG_REMOVE);
            put_u64(out, *user_id);
        }
        WalOp::EvictBefore { min_epoch } => {
            out.push(TAG_EVICT);
            put_u64(out, *min_epoch);
        }
        WalOp::Epoch { epoch } => {
            out.push(TAG_EPOCH);
            put_u64(out, *epoch);
        }
    }
}

/// Wraps `payload` in a `[len][payload][crc]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, len);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A little-endian read cursor over one payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                DecodeError(format!(
                    "payload underrun: need {n} bytes at offset {} of {}",
                    self.pos,
                    self.bytes.len()
                ))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn biguint(&mut self) -> Result<BigUint, DecodeError> {
        let len = self.u32()?;
        if len > MAX_BIGUINT_BYTES {
            return Err(DecodeError(format!(
                "big-integer length {len} exceeds the {MAX_BIGUINT_BYTES}-byte ceiling"
            )));
        }
        Ok(BigUint::from_bytes_le(self.take(len as usize)?))
    }

    fn g(&mut self) -> Result<GElem, DecodeError> {
        Ok(GElem::from_canonical_log(self.biguint()?))
    }

    fn gt(&mut self) -> Result<GtElem, DecodeError> {
        Ok(GtElem::from_canonical_log(self.biguint()?))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn decode_record_body(cur: &mut Cursor<'_>) -> Result<Record, DecodeError> {
    let user_id = cur.u64()?;
    let epoch = cur.u64()?;
    let expected = cur.gt()?;
    let width = cur.u32()?;
    if width > MAX_WIDTH {
        return Err(DecodeError(format!(
            "width {width} exceeds the {MAX_WIDTH} ceiling"
        )));
    }
    let c_prime = cur.gt()?;
    let c0 = cur.g()?;
    let mut c = Vec::with_capacity(width as usize);
    for _ in 0..width {
        c.push((cur.g()?, cur.g()?));
    }
    Ok(Record {
        user_id,
        epoch,
        expected,
        ciphertext: Ciphertext::from_parts(c_prime, c0, c),
    })
}

/// Decodes one record payload (the exact inverse of [`encode_record`];
/// trailing bytes are an error).
pub fn decode_record(payload: &[u8]) -> Result<Record, DecodeError> {
    let mut cur = Cursor::new(payload);
    let record = decode_record_body(&mut cur)?;
    cur.finish()?;
    Ok(record)
}

/// Decodes one op payload (the exact inverse of [`encode_op`]).
pub fn decode_op(payload: &[u8]) -> Result<WalOp, DecodeError> {
    let mut cur = Cursor::new(payload);
    let op = match cur.u8()? {
        TAG_UPSERT => WalOp::Upsert(decode_record_body(&mut cur)?),
        TAG_REMOVE => WalOp::Remove {
            user_id: cur.u64()?,
        },
        TAG_EVICT => WalOp::EvictBefore {
            min_epoch: cur.u64()?,
        },
        TAG_EPOCH => WalOp::Epoch { epoch: cur.u64()? },
        tag => return Err(DecodeError(format!("unknown op tag {tag}"))),
    };
    cur.finish()?;
    Ok(op)
}

/// Outcome of pulling one frame off a byte stream.
#[derive(Debug)]
pub enum FrameRead<'a> {
    /// A complete, CRC-valid frame; `rest` continues after it.
    Frame {
        /// The frame's payload.
        payload: &'a [u8],
        /// The remaining bytes.
        rest: &'a [u8],
    },
    /// The stream ends cleanly here (zero bytes left).
    End,
    /// The remaining bytes are not a complete valid frame — a torn tail
    /// (short frame) or a CRC/structure failure. The bad frame starts at
    /// the front of the remaining bytes; callers track absolute offsets
    /// themselves.
    Torn {
        /// Human-readable cause (short read vs CRC mismatch).
        detail: String,
    },
}

/// Reads one frame from the front of `bytes`.
pub fn read_frame(bytes: &[u8]) -> FrameRead<'_> {
    if bytes.is_empty() {
        return FrameRead::End;
    }
    if bytes.len() < 8 {
        return FrameRead::Torn {
            detail: format!(
                "{} bytes left, frame header needs 4 + trailer 4",
                bytes.len()
            ),
        };
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let Some(total) = len.checked_add(8).filter(|&t| t <= bytes.len()) else {
        return FrameRead::Torn {
            detail: format!("frame claims {len} payload bytes, {} left", bytes.len() - 8),
        };
    };
    let stored = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let actual = crc32(&bytes[..total - 4]);
    if stored != actual {
        return FrameRead::Torn {
            detail: format!("crc mismatch: stored {stored:#010x}, computed {actual:#010x}"),
        };
    }
    FrameRead::Frame {
        payload: &bytes[4..total - 4],
        rest: &bytes[total..],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_record(user_id: u64) -> Record {
        Record {
            user_id,
            epoch: 3,
            expected: GtElem::from_canonical_log(BigUint::from_u64(99)),
            ciphertext: Ciphertext::from_parts(
                GtElem::from_canonical_log(BigUint::from_u64(7)),
                GElem::from_canonical_log(BigUint::from_u128(u128::MAX - 5)),
                vec![
                    (
                        GElem::from_canonical_log(BigUint::zero()),
                        GElem::from_canonical_log(BigUint::from_u64(1)),
                    ),
                    (
                        GElem::from_canonical_log(BigUint::from_u64(1 << 40)),
                        GElem::from_canonical_log(BigUint::from_u64(12345)),
                    ),
                ],
            ),
        }
    }

    #[test]
    fn record_roundtrip() {
        let record = tiny_record(42);
        let mut buf = Vec::new();
        encode_record(&record, &mut buf);
        assert_eq!(decode_record(&buf).unwrap(), record);
    }

    #[test]
    fn op_roundtrips() {
        let ops = [
            WalOp::Upsert(tiny_record(1)),
            WalOp::Remove { user_id: u64::MAX },
            WalOp::EvictBefore { min_epoch: 17 },
            WalOp::Epoch { epoch: 1 << 50 },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            encode_op(op, &mut buf);
            assert_eq!(&decode_op(&buf).unwrap(), op);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_op(&WalOp::Remove { user_id: 7 }, &mut buf);
        buf.push(0);
        assert!(decode_op(&buf).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(decode_op(&[200, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn frame_roundtrip_and_torn_detection() {
        let mut payload = Vec::new();
        encode_op(&WalOp::Epoch { epoch: 9 }, &mut payload);
        let framed = frame(&payload);
        match read_frame(&framed) {
            FrameRead::Frame { payload: p, rest } => {
                assert_eq!(p, &payload[..]);
                assert!(rest.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // Every strict prefix is torn (or End for the empty prefix).
        for cut in 1..framed.len() {
            match read_frame(&framed[..cut]) {
                FrameRead::Torn { .. } => {}
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
        assert!(matches!(read_frame(&[]), FrameRead::End));
    }

    #[test]
    fn length_field_corruption_is_caught_by_crc() {
        let mut payload = Vec::new();
        encode_op(&WalOp::Remove { user_id: 3 }, &mut payload);
        let framed = frame(&payload);
        for byte in 0..4 {
            let mut bad = framed.clone();
            bad[byte] ^= 0x01;
            assert!(
                matches!(read_frame(&bad), FrameRead::Torn { .. }),
                "length byte {byte}"
            );
        }
    }
}
