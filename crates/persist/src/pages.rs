//! The shard-partitioned snapshot format: one paged, per-page-checksummed
//! snapshot file per durability lane.
//!
//! Each lane directory (`shard.SSS/`) holds its own `snapshot.bin`, so
//! lanes load independently and recovery parallelizes over shards. The
//! body — the lane's record frames, concatenated — is cut into
//! **fixed-width pages** ([`PAGE_SIZE`] bytes, final page short), each
//! followed by a crc32 over `page_index ‖ page bytes`; the index in the
//! checksum means a page cannot validate at the wrong position, so a
//! copy that drops, duplicates, or swaps pages is caught as corruption.
//!
//! Like the legacy monolithic format, a paged snapshot is written to
//! `snapshot.tmp`, fsync'd, atomically renamed over `snapshot.bin`, and
//! the directory fsync'd — it can never legitimately be torn, so any
//! checksum failure is real corruption and fails loud.
//!
//! ## Layout
//!
//! ```text
//! header frame: [len][payload][crc32]      (same framing as the WAL)
//!   payload = SLASNAP2 ‖ shard u32 ‖ shard_count u32
//!           ‖ covered_generation u64 ‖ epoch u64 ‖ record_count u64
//!           ‖ page_size u32 ‖ body_len u64      (52 bytes)
//! page 0:  min(page_size, body_len) body bytes ‖ crc32(0u64 ‖ bytes)
//! page 1:  ...                                 ‖ crc32(1u64 ‖ bytes)
//! ...
//! ```

use crate::codec::{self, FrameRead, Record};
use crate::crc::crc32;
use crate::error::{PersistError, PersistResult};
use crate::snapshot::{sync_dir, SNAPSHOT_FILE, SNAPSHOT_TMP};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every paged (v2) snapshot's header frame.
pub const SNAPSHOT2_MAGIC: &[u8; 8] = b"SLASNAP2";

/// Fixed page width of the snapshot body (the final page is short).
pub const PAGE_SIZE: usize = 4096;

/// One lane's complete snapshot: the shard's live records as of the
/// moment every lane WAL generation `<= covered_generation` had been
/// applied, plus the shard identity the file must match.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Which durability lane this snapshot belongs to.
    pub shard: usize,
    /// Total lane count of the layout (placement sanity check).
    pub shard_count: usize,
    /// Lane WAL generations up to and including this one are folded in.
    pub covered_generation: u64,
    /// This lane's view of the service epoch at the snapshot point.
    pub epoch: u64,
    /// The lane's live records.
    pub records: Vec<Record>,
}

fn page_crc(index: u64, bytes: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(8 + bytes.len());
    buf.extend_from_slice(&index.to_le_bytes());
    buf.extend_from_slice(bytes);
    crc32(&buf)
}

/// Writes `snapshot` to `dir/snapshot.tmp`, fsyncs it, atomically
/// renames it over `dir/snapshot.bin`, and fsyncs the directory.
pub fn write_shard_snapshot(dir: &Path, snapshot: &ShardSnapshot) -> PersistResult<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let dst = dir.join(SNAPSHOT_FILE);

    let mut body = Vec::new();
    let mut payload = Vec::new();
    for record in &snapshot.records {
        payload.clear();
        codec::encode_record(record, &mut payload);
        body.extend_from_slice(&codec::frame(&payload));
    }

    let mut header = Vec::with_capacity(52);
    header.extend_from_slice(SNAPSHOT2_MAGIC);
    header.extend_from_slice(&(snapshot.shard as u32).to_le_bytes());
    header.extend_from_slice(&(snapshot.shard_count as u32).to_le_bytes());
    header.extend_from_slice(&snapshot.covered_generation.to_le_bytes());
    header.extend_from_slice(&snapshot.epoch.to_le_bytes());
    header.extend_from_slice(&(snapshot.records.len() as u64).to_le_bytes());
    header.extend_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    header.extend_from_slice(&(body.len() as u64).to_le_bytes());

    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| PersistError::io("create snapshot.tmp", &tmp, e))?;
    let mut write = |bytes: &[u8]| {
        file.write_all(bytes)
            .map_err(|e| PersistError::io("write snapshot", &tmp, e))
    };
    write(&codec::frame(&header))?;
    for (index, page) in body.chunks(PAGE_SIZE).enumerate() {
        write(page)?;
        write(&page_crc(index as u64, page).to_le_bytes())?;
    }
    file.sync_all()
        .map_err(|e| PersistError::io("fsync snapshot.tmp", &tmp, e))?;
    drop(file);

    fs::rename(&tmp, &dst).map_err(|e| PersistError::io("promote snapshot", &dst, e))?;
    sync_dir(dir)
}

/// Loads `dir/snapshot.bin` and validates it belongs to lane
/// `expect_shard` of `expect_count`; `Ok(None)` when no snapshot has
/// ever been promoted. Any framing, page-checksum, or identity failure
/// is corruption (a paged snapshot cannot legitimately be torn).
pub fn load_shard_snapshot(
    dir: &Path,
    expect_shard: usize,
    expect_count: usize,
) -> PersistResult<Option<ShardSnapshot>> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f
            .read_to_end(&mut bytes)
            .map(|_| ())
            .map_err(|e| PersistError::io("read snapshot", &path, e))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io("open snapshot", &path, e)),
    }

    let corrupt = |offset: u64, detail: String| PersistError::corrupt(&path, offset, detail);

    let (header, rest) = match codec::read_frame(&bytes) {
        FrameRead::Frame { payload, rest } => (payload, rest),
        FrameRead::End => return Err(corrupt(0, "empty snapshot file".into())),
        FrameRead::Torn { detail } => return Err(corrupt(0, detail)),
    };
    if header.len() != 52 || &header[..8] != SNAPSHOT2_MAGIC {
        return Err(corrupt(0, "bad paged-snapshot magic".into()));
    }
    let u32_at = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().expect("4 bytes"));
    let u64_at = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("8 bytes"));
    let shard = u32_at(8) as usize;
    let shard_count = u32_at(12) as usize;
    let covered_generation = u64_at(16);
    let epoch = u64_at(24);
    let count = u64_at(32);
    let page_size = u32_at(40) as usize;
    let body_len = u64_at(44) as usize;

    if (shard, shard_count) != (expect_shard, expect_count) {
        return Err(corrupt(
            0,
            format!(
                "snapshot claims shard {shard} of {shard_count}, \
                 lane directory is shard {expect_shard} of {expect_count}"
            ),
        ));
    }
    if page_size == 0 {
        return Err(corrupt(0, "zero page size".into()));
    }
    let n_pages = body_len.div_ceil(page_size);
    if rest.len() != body_len + n_pages * 4 {
        return Err(corrupt(
            (bytes.len() - rest.len()) as u64,
            format!(
                "body claims {body_len} bytes in {n_pages} pages but {} bytes follow the header",
                rest.len()
            ),
        ));
    }

    // Verify every page checksum while reassembling the body stream.
    let mut body = Vec::with_capacity(body_len);
    let mut cursor = rest;
    for index in 0..n_pages {
        let offset = (bytes.len() - cursor.len()) as u64;
        let want = page_size.min(body_len - body.len());
        let (page, tail) = cursor.split_at(want);
        let (crc_bytes, tail) = tail.split_at(4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if stored != page_crc(index as u64, page) {
            return Err(corrupt(offset, format!("page {index} checksum mismatch")));
        }
        body.extend_from_slice(page);
        cursor = tail;
    }

    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut rest = body.as_slice();
    for _ in 0..count {
        let offset = (body.len() - rest.len()) as u64;
        match codec::read_frame(rest) {
            FrameRead::Frame { payload, rest: r } => {
                let record =
                    codec::decode_record(payload).map_err(|e| corrupt(offset, e.to_string()))?;
                records.push(record);
                rest = r;
            }
            FrameRead::End => {
                return Err(corrupt(
                    offset,
                    format!("body ends after {} of {count} records", records.len()),
                ))
            }
            FrameRead::Torn { detail } => return Err(corrupt(offset, detail)),
        }
    }
    if !rest.is_empty() {
        return Err(corrupt(
            (body.len() - rest.len()) as u64,
            format!("{} trailing body bytes after {count} records", rest.len()),
        ));
    }
    Ok(Some(ShardSnapshot {
        shard,
        shard_count,
        covered_generation,
        epoch,
        records,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_bigint::BigUint;
    use sla_hve::Ciphertext;
    use sla_pairing::{GElem, GtElem};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-persist-pages-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(user_id: u64) -> Record {
        Record {
            user_id,
            epoch: user_id % 5,
            expected: GtElem::from_canonical_log(BigUint::from_u64(user_id + 1)),
            ciphertext: Ciphertext::from_parts(
                GtElem::from_canonical_log(BigUint::from_u64(user_id * 7)),
                GElem::from_canonical_log(BigUint::from_u64(user_id * 11)),
                vec![(
                    GElem::from_canonical_log(BigUint::from_u64(user_id)),
                    GElem::from_canonical_log(BigUint::from_u64(user_id + 2)),
                )],
            ),
        }
    }

    fn snapshot(n: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard: 3,
            shard_count: 8,
            covered_generation: 4,
            epoch: 9,
            records: (0..n).map(record).collect(),
        }
    }

    #[test]
    fn roundtrip_including_multi_page_bodies() {
        let dir = temp_dir("roundtrip");
        assert_eq!(load_shard_snapshot(&dir, 3, 8).unwrap(), None);
        // 80 records of this shape span multiple 4 KiB pages.
        for n in [0, 1, 80] {
            let snap = snapshot(n);
            write_shard_snapshot(&dir, &snap).unwrap();
            assert_eq!(load_shard_snapshot(&dir, 3, 8).unwrap(), Some(snap));
            assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp promoted away");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_page_is_independently_checksummed() {
        let dir = temp_dir("pagecrc");
        let snap = snapshot(80);
        write_shard_snapshot(&dir, &snap).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let original = fs::read(&path).unwrap();
        let header_len = {
            // Header frame = 4 (len) + 52 (payload) + 4 (crc).
            60
        };
        let body_len = snap
            .records
            .iter()
            .map(|r| {
                let mut p = Vec::new();
                codec::encode_record(r, &mut p);
                codec::frame(&p).len()
            })
            .sum::<usize>();
        let n_pages = body_len.div_ceil(PAGE_SIZE);
        assert!(n_pages >= 2, "fixture must span pages, got {n_pages}");
        // Flip one byte inside each page (and each page trailer): load
        // must fail with Corrupt naming that page.
        for page in 0..n_pages {
            let offset = header_len + page * (PAGE_SIZE + 4) + 17;
            let mut bytes = original.clone();
            bytes[offset] ^= 0x40;
            fs::write(&path, &bytes).unwrap();
            match load_shard_snapshot(&dir, 3, 8) {
                Err(PersistError::Corrupt { detail, .. }) => {
                    assert!(detail.contains(&format!("page {page}")), "{detail}")
                }
                other => panic!("page {page}: {other:?}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_identity_mismatch_is_corrupt() {
        // A lane snapshot copied into the wrong lane directory must not
        // load: replayed ops from the wrong lane would resurrect records
        // the right lane's WAL has removed.
        let dir = temp_dir("identity");
        write_shard_snapshot(&dir, &snapshot(2)).unwrap();
        for (shard, count) in [(2, 8), (3, 16)] {
            match load_shard_snapshot(&dir, shard, count) {
                Err(PersistError::Corrupt { detail, .. }) => {
                    assert!(detail.contains("claims shard"), "{detail}")
                }
                other => panic!("{other:?}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_corrupt_not_torn() {
        let dir = temp_dir("trunc");
        write_shard_snapshot(&dir, &snapshot(5)).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            load_shard_snapshot(&dir, 3, 8),
            Err(PersistError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
