//! The append-only write-ahead log: one file per generation, a header
//! frame followed by op frames, with group-commit fsync batching.
//!
//! ## Durability contract
//!
//! `append` writes the frame into the OS page cache immediately;
//! **when** it reaches stable storage is the [`FlushPolicy`]:
//!
//! * [`FlushPolicy::EveryOp`] — fsync after every append (each op is
//!   durable once `append` returns; slowest).
//! * [`FlushPolicy::Every`]`(d)` — group commit: an append fsyncs only
//!   when at least `d` has elapsed since the last fsync, so all ops of a
//!   burst share one fsync. Ops appended inside the window are durable
//!   no later than the next append after the window closes, the next
//!   explicit [`WalWriter::sync`], or drop.
//! * [`FlushPolicy::Manual`] — only explicit `sync` (and drop) fsync.
//!
//! A crash can therefore lose the unsynced suffix, and a crash *during*
//! a write can leave a torn final frame; recovery ([`replay_wal`])
//! truncates to the last complete, CRC-valid frame.

use crate::codec::{self, FrameRead, WalOp};
use crate::error::{PersistError, PersistResult};
use crate::snapshot::sync_dir;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When WAL appends are fsync'd (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// fsync after every append.
    EveryOp,
    /// Group commit: fsync at most once per interval, amortized across
    /// the appends that share the window.
    Every(Duration),
    /// fsync only on explicit `sync` (and on drop).
    Manual,
}

/// Magic bytes opening every WAL file's header frame.
pub const WAL_MAGIC: &[u8; 8] = b"SLAWAL01";

/// The WAL filename for a generation (zero-padded so lexicographic and
/// numeric order agree for the first million generations; parsing is
/// numeric regardless).
pub fn wal_file_name(generation: u64) -> String {
    format!("wal.{generation:06}")
}

/// Parses a generation out of a `wal.NNN` filename.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal.")?.parse().ok()
}

fn header_payload(generation: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(WAL_MAGIC);
    payload.extend_from_slice(&generation.to_le_bytes());
    payload
}

/// An open WAL file positioned for appending.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    generation: u64,
    policy: FlushPolicy,
    last_sync: Instant,
    /// Bytes written since the last successful fsync.
    dirty: bool,
}

impl WalWriter {
    /// Creates a fresh WAL file for `generation`: the header frame is
    /// written and fsync'd, **and the directory entry is fsync'd too** —
    /// without the latter, ops appended and fsync'd into a freshly
    /// rotated generation could vanish wholesale on power loss (the file
    /// contents are durable, its dirent is not).
    pub fn create(dir: &Path, generation: u64, policy: FlushPolicy) -> PersistResult<Self> {
        let path = dir.join(wal_file_name(generation));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| PersistError::io("create wal", &path, e))?;
        let header = codec::frame(&header_payload(generation));
        file.write_all(&header)
            .and_then(|()| file.sync_data())
            .map_err(|e| PersistError::io("write wal header", &path, e))?;
        sync_dir(dir)?;
        Ok(WalWriter {
            file,
            path,
            generation,
            policy,
            last_sync: Instant::now(),
            dirty: false,
        })
    }

    /// Reopens an existing WAL at `valid_len` (the end of its last valid
    /// frame, per [`replay_wal`]); any torn tail beyond it is truncated
    /// away so new appends start on a frame boundary.
    pub fn reopen(
        path: &Path,
        generation: u64,
        valid_len: u64,
        policy: FlushPolicy,
    ) -> PersistResult<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| PersistError::io("reopen wal", path, e))?;
        file.set_len(valid_len)
            .and_then(|()| file.seek(SeekFrom::End(0)))
            .and_then(|_| file.sync_data())
            .map_err(|e| PersistError::io("truncate wal tail", path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            generation,
            policy,
            last_sync: Instant::now(),
            dirty: false,
        })
    }

    /// This writer's generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// This writer's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one op frame, fsyncing per the flush policy.
    pub fn append(&mut self, op: &WalOp) -> PersistResult<()> {
        let mut payload = Vec::new();
        codec::encode_op(op, &mut payload);
        let framed = codec::frame(&payload);
        self.file
            .write_all(&framed)
            .map_err(|e| PersistError::io("append wal frame", &self.path, e))?;
        self.dirty = true;
        match self.policy {
            FlushPolicy::EveryOp => self.sync(),
            FlushPolicy::Every(interval) if self.last_sync.elapsed() >= interval => self.sync(),
            _ => Ok(()),
        }
    }

    /// fsyncs outstanding appends (no-op when clean).
    pub fn sync(&mut self) -> PersistResult<()> {
        if self.dirty {
            self.file
                .sync_data()
                .map_err(|e| PersistError::io("fsync wal", &self.path, e))?;
            self.dirty = false;
        }
        self.last_sync = Instant::now();
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort group-commit tail flush; errors surface on the
        // next recovery as a (tolerated) missing suffix.
        let _ = self.sync();
    }
}

/// Result of replaying one WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded ops, in append order, up to the last valid frame.
    pub ops: Vec<WalOp>,
    /// Byte offset of the end of the last valid frame — where an
    /// appender must resume (and truncate to).
    pub valid_len: u64,
    /// `Some(detail)` when a torn tail was dropped.
    pub torn: Option<String>,
}

/// Replays a WAL file, tolerating a torn tail: frames are read until the
/// first incomplete or CRC-invalid frame, which (with everything after
/// it) is treated as never written. A payload that passes its CRC but
/// does not decode is **corruption**, not tearing, and fails loud.
///
/// A file whose *header* frame is torn (a crash between `create` and the
/// header fsync reaching disk) replays as zero ops with `valid_len = 0`;
/// a readable header with wrong magic or generation is corruption.
pub fn replay_wal(path: &Path, expect_generation: u64) -> PersistResult<WalReplay> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| PersistError::io("read wal", path, e))?;

    // Header frame.
    let (mut rest, mut valid_len) = match codec::read_frame(&bytes) {
        FrameRead::Frame { payload, rest } => {
            if payload.len() != 16 || &payload[..8] != WAL_MAGIC {
                return Err(PersistError::corrupt(path, 0, "bad wal magic"));
            }
            let gen = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            if gen != expect_generation {
                return Err(PersistError::corrupt(
                    path,
                    0,
                    format!("wal header generation {gen}, filename says {expect_generation}"),
                ));
            }
            (rest, (bytes.len() - rest.len()) as u64)
        }
        FrameRead::End | FrameRead::Torn { .. } => {
            return Ok(WalReplay {
                ops: Vec::new(),
                valid_len: 0,
                torn: (!bytes.is_empty()).then(|| "torn header frame".to_string()),
            });
        }
    };

    let mut ops = Vec::new();
    let torn = loop {
        match codec::read_frame(rest) {
            FrameRead::End => break None,
            FrameRead::Torn { detail } => break Some(detail),
            FrameRead::Frame { payload, rest: r } => {
                let op = codec::decode_op(payload)
                    .map_err(|e| PersistError::corrupt(path, valid_len, e.to_string()))?;
                ops.push(op);
                valid_len = (bytes.len() - r.len()) as u64;
                rest = r;
            }
        }
    };
    Ok(WalReplay {
        ops,
        valid_len,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sla-persist-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Remove { user_id: 1 },
            WalOp::Epoch { epoch: 2 },
            WalOp::EvictBefore { min_epoch: 1 },
            WalOp::Remove { user_id: 9 },
        ]
    }

    #[test]
    fn append_and_replay() {
        let dir = temp_dir("roundtrip");
        let mut wal = WalWriter::create(&dir, 3, FlushPolicy::EveryOp).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let replay = replay_wal(&dir.join(wal_file_name(3)), 3).unwrap();
        assert_eq!(replay.ops, ops());
        assert!(replay.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_frame() {
        let dir = temp_dir("torn");
        let path = dir.join(wal_file_name(1));
        let mut wal = WalWriter::create(&dir, 1, FlushPolicy::Manual).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let full = std::fs::metadata(&path).unwrap().len();
        // Chop 3 bytes off the final frame: the last op must vanish.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..(full - 3) as usize]).unwrap();
        let replay = replay_wal(&path, 1).unwrap();
        assert_eq!(replay.ops, ops()[..3].to_vec());
        assert!(replay.torn.is_some());
        // Reopening truncates; appending resumes on a frame boundary.
        let mut wal = WalWriter::reopen(&path, 1, replay.valid_len, FlushPolicy::EveryOp).unwrap();
        wal.append(&WalOp::Epoch { epoch: 7 }).unwrap();
        drop(wal);
        let replay = replay_wal(&path, 1).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.ops.len(), 4);
        assert_eq!(replay.ops[3], WalOp::Epoch { epoch: 7 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_generation_is_corrupt() {
        let dir = temp_dir("gen");
        let wal = WalWriter::create(&dir, 2, FlushPolicy::Manual).unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        assert!(matches!(
            replay_wal(&path, 5),
            Err(PersistError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_interval_batches_syncs() {
        // Every(1h) must not fsync per-append (we can't observe fsync
        // directly; assert the data still lands via explicit sync).
        let dir = temp_dir("group");
        let mut wal =
            WalWriter::create(&dir, 1, FlushPolicy::Every(Duration::from_secs(3600))).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        wal.sync().unwrap();
        let replay = replay_wal(&dir.join(wal_file_name(1)), 1).unwrap();
        assert_eq!(replay.ops.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_names_roundtrip() {
        assert_eq!(wal_file_name(7), "wal.000007");
        assert_eq!(parse_wal_name("wal.000007"), Some(7));
        assert_eq!(parse_wal_name("wal.1234567"), Some(1_234_567));
        assert_eq!(parse_wal_name("snapshot.bin"), None);
        assert_eq!(parse_wal_name("wal.x"), None);
    }
}
