//! # sla-grid
//!
//! Spatial substrate for the location-alert protocol: the map is divided
//! into `n` non-overlapping cells `V = {v_1, …, v_n}` (§2 of the paper),
//! alert zones are sets of cells, and each cell carries a likelihood
//! `p(v_i)` of becoming alerted.
//!
//! Provides:
//!
//! * [`Grid`] — uniform rows×cols partitioning of a geographic bounding
//!   box with point↔cell mapping and disk (radius) queries in meters.
//! * [`ProbabilityMap`] — per-cell alert likelihoods, incl. the paper's
//!   synthetic sigmoid generator (§7, footnote 1).
//! * [`AlertZone`] — zone construction: disks around an epicenter, room-
//!   sized zones, and probability-weighted epicenter sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod grid;
mod prob;
mod zone;

pub use error::GridError;
pub use grid::{BoundingBox, CellId, Grid, Point};
pub use prob::{ProbabilityMap, SigmoidParams, MIN_LIKELIHOOD};
pub use zone::{AlertZone, ZoneSampler};
