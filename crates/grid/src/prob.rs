//! Per-cell alert likelihoods, including the paper's synthetic sigmoid
//! generator (§7: "For each data point (i.e., cell) x, a uniformly random
//! number between zero and one is generated ... then fed into the sigmoid
//! activation function").

use crate::error::GridError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the sigmoid `S(x) = 1 / (1 + e^{-b(x-a)})`.
///
/// `a` is the inflection point (the paper sweeps 0.90/0.95/0.99) and `b`
/// the gradient (10/20/100/200). Higher `a` and `b` yield more skewed
/// probability surfaces, which is where Huffman encoding shines (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidParams {
    /// Inflection point `a`.
    pub a: f64,
    /// Gradient `b`.
    pub b: f64,
}

impl SigmoidParams {
    /// Evaluates the sigmoid.
    pub fn eval(&self, x: f64) -> f64 {
        1.0 / (1.0 + (-self.b * (x - self.a)).exp())
    }
}

/// Resolution floor for synthetic likelihoods.
///
/// Steep sigmoids produce scores as small as `e^{-a·b}` (≈ 1e-43 for
/// `a = 0.99, b = 100`) — far below what any practical likelihood model
/// resolves or calibrates. Scores below this floor are clamped to it,
/// making "cold" cells indistinguishable, consistent with the paper's
/// position that only the *relative ordering* of meaningful probabilities
/// matters (§9: "we do not require high accuracy in the actual values...
/// one can produce a relatively stable and representative ordering").
///
/// The floor also matters structurally: without it, cold cells receive
/// 100+-bit Huffman codes and every multi-cell zone cost explodes — a
/// regime the paper's reported results exclude. Equal-weight cold cells
/// instead form a balanced subtree in cell-id (row-major) order, so
/// Algorithm 3 can still aggregate spatially contiguous cold regions.
/// EXPERIMENTS.md reports the sensitivity of the results to this value.
pub const MIN_LIKELIHOOD: f64 = 1e-3;

/// Alert likelihoods for every cell of a grid.
///
/// Raw likelihood scores are kept as-is (the encoders only need relative
/// order and magnitude); [`ProbabilityMap::normalized`] yields the
/// probability-vector view used by analytics ("Normalizing the cell
/// probability values over the domain space reveals how likely a cell is
/// to be alerted compared to others", §2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityMap {
    probs: Vec<f64>,
}

impl ProbabilityMap {
    /// Wraps raw likelihood scores.
    ///
    /// # Panics
    /// Panics if empty, or if any value is negative/non-finite, or all are
    /// zero; use [`Self::try_new`] for a fallible version.
    pub fn new(probs: Vec<f64>) -> Self {
        match Self::try_new(probs) {
            Ok(pm) => pm,
            // Preserve the pre-redesign panic messages the unit tests pin.
            Err(GridError::InvalidLikelihood { cell, value }) => {
                panic!("invalid likelihood {value} at cell {cell}")
            }
            Err(GridError::AllZeroLikelihoods) => panic!("all-zero likelihoods"),
            Err(_) => panic!("at least one cell required"),
        }
    }

    /// Fallible [`Self::new`]: rejects empty inputs, negative/non-finite
    /// scores, and all-zero surfaces with the matching [`GridError`].
    pub fn try_new(probs: Vec<f64>) -> Result<Self, GridError> {
        if probs.is_empty() {
            return Err(GridError::EmptyProbabilityMap);
        }
        for (cell, &value) in probs.iter().enumerate() {
            if !(value.is_finite() && value >= 0.0) {
                return Err(GridError::InvalidLikelihood { cell, value });
            }
        }
        if !probs.iter().any(|&p| p > 0.0) {
            return Err(GridError::AllZeroLikelihoods);
        }
        Ok(ProbabilityMap { probs })
    }

    /// Uniform likelihoods (the implicit assumption of the basic scheme
    /// \[14\]).
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0);
        ProbabilityMap {
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// The paper's synthetic generator: per-cell `x ~ U(0,1)` through the
    /// sigmoid (§7, footnote 1), clamped at [`MIN_LIKELIHOOD`].
    /// Deterministic for a seeded `rng`.
    pub fn sigmoid_synthetic<R: Rng>(n: usize, params: SigmoidParams, rng: &mut R) -> Self {
        assert!(n > 0);
        let probs = (0..n)
            .map(|_| params.eval(rng.gen::<f64>()).max(MIN_LIKELIHOOD))
            .collect();
        ProbabilityMap::new(probs)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` iff empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Raw likelihood of a cell.
    pub fn get(&self, cell: usize) -> f64 {
        self.probs[cell]
    }

    /// Raw likelihood slice.
    pub fn raw(&self) -> &[f64] {
        &self.probs
    }

    /// Normalized probability vector (sums to 1).
    pub fn normalized(&self) -> Vec<f64> {
        let total: f64 = self.probs.iter().sum();
        self.probs.iter().map(|p| p / total).collect()
    }

    /// Expected number of alerted cells `λ = Σ p(v_i)` under the Thm 1
    /// Poisson model (the paper normalizes so λ = 1).
    pub fn poisson_rate(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Gini-style skewness in [0, 1): 0 = uniform. Used by the experiment
    /// harness to report how skewed a generated surface is.
    pub fn skewness(&self) -> f64 {
        let n = self.probs.len() as f64;
        let mut sorted = self.probs.clone();
        sorted.sort_by(f64::total_cmp);
        let total: f64 = sorted.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as f64 + 1.0) * p)
            .sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_shape() {
        let s = SigmoidParams { a: 0.95, b: 20.0 };
        assert!((s.eval(0.95) - 0.5).abs() < 1e-12);
        assert!(s.eval(1.0) > 0.5);
        assert!(s.eval(0.0) < 1e-7);
        // steeper gradient -> sharper transition
        let steep = SigmoidParams { a: 0.95, b: 200.0 };
        assert!(steep.eval(0.9) < s.eval(0.9));
        assert!(steep.eval(0.99) > s.eval(0.99));
    }

    #[test]
    fn synthetic_generation_is_seeded_deterministic() {
        let params = SigmoidParams { a: 0.9, b: 100.0 };
        let a = ProbabilityMap::sigmoid_synthetic(256, params, &mut StdRng::seed_from_u64(7));
        let b = ProbabilityMap::sigmoid_synthetic(256, params, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = ProbabilityMap::sigmoid_synthetic(256, params, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn normalization_sums_to_one() {
        let pm = ProbabilityMap::new(vec![0.1, 0.2, 0.7, 0.4]);
        let norm = pm.normalized();
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pm.poisson_rate() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn uniform_map_has_zero_skewness() {
        let pm = ProbabilityMap::uniform(64);
        assert!(pm.skewness().abs() < 1e-9);
        assert!((pm.poisson_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_inflection_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(42);
        let lo =
            ProbabilityMap::sigmoid_synthetic(1024, SigmoidParams { a: 0.5, b: 20.0 }, &mut rng);
        let mut rng = StdRng::seed_from_u64(42);
        let hi =
            ProbabilityMap::sigmoid_synthetic(1024, SigmoidParams { a: 0.99, b: 20.0 }, &mut rng);
        assert!(
            hi.skewness() > lo.skewness(),
            "a=0.99 skew {} should exceed a=0.5 skew {}",
            hi.skewness(),
            lo.skewness()
        );
    }

    #[test]
    #[should_panic(expected = "invalid likelihood")]
    fn rejects_negative() {
        ProbabilityMap::new(vec![0.5, -0.1]);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert_eq!(
            ProbabilityMap::try_new(Vec::new()).unwrap_err(),
            GridError::EmptyProbabilityMap
        );
        assert!(matches!(
            ProbabilityMap::try_new(vec![0.5, -0.1]),
            Err(GridError::InvalidLikelihood { cell: 1, .. })
        ));
        assert_eq!(
            ProbabilityMap::try_new(vec![0.0, 0.0]).unwrap_err(),
            GridError::AllZeroLikelihoods
        );
        assert!(ProbabilityMap::try_new(vec![0.2, 0.8]).is_ok());
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn rejects_all_zero() {
        ProbabilityMap::new(vec![0.0, 0.0]);
    }
}
