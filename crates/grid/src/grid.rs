//! Uniform grid partitioning with geographic coordinates.

use crate::error::GridError;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters (spherical approximation).
const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A geographic point (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(lat: f64, lon: f64) -> Self {
        Point { lat, lon }
    }

    /// Equirectangular distance in meters — accurate at city scale, which
    /// is all the alert protocol needs.
    pub fn distance_m(&self, other: &Point) -> f64 {
        let lat0 = (self.lat + other.lat).to_radians() / 2.0;
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians() * lat0.cos();
        EARTH_RADIUS_M * (dlat * dlat + dlon * dlon).sqrt()
    }
}

/// Axis-aligned geographic bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge (min latitude, degrees).
    pub min_lat: f64,
    /// Western edge (min longitude, degrees).
    pub min_lon: f64,
    /// Northern edge (max latitude, degrees).
    pub max_lat: f64,
    /// Eastern edge (max longitude, degrees).
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box.
    ///
    /// # Panics
    /// Panics if the box is degenerate or inverted; use
    /// [`Self::try_new`] for a fallible version.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        Self::try_new(min_lat, min_lon, max_lat, max_lon).expect("degenerate bbox")
    }

    /// Fallible [`Self::new`]: `Err(GridError::DegenerateBoundingBox)`
    /// when either axis is empty or inverted (NaN bounds included).
    pub fn try_new(
        min_lat: f64,
        min_lon: f64,
        max_lat: f64,
        max_lon: f64,
    ) -> Result<Self, GridError> {
        if !(min_lat < max_lat && min_lon < max_lon) {
            return Err(GridError::DegenerateBoundingBox {
                min_lat,
                min_lon,
                max_lat,
                max_lon,
            });
        }
        Ok(BoundingBox {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        })
    }

    /// The bounding box of the city of Chicago (used by the real-data
    /// experiments, §7.1).
    pub fn chicago() -> Self {
        BoundingBox::new(41.644, -87.940, 42.023, -87.524)
    }

    /// A ~10 km × 8 km central-Chicago district. With a 32×32 grid this
    /// yields ~300 m cells, so the paper's alert radii (20 m contact
    /// tracing up to hundreds of meters) span one to a handful of cells —
    /// the regime §2.3 motivates.
    pub fn chicago_downtown() -> Self {
        BoundingBox::new(41.850, -87.700, 41.940, -87.600)
    }

    /// `true` iff `p` lies inside (inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }
}

/// Identifier of a grid cell: row-major position `row * cols + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub usize);

/// A uniform rows×cols partitioning of a bounding box (§2: "equal-size
/// square cells are most likely in practice").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    bbox: BoundingBox,
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates a grid.
    ///
    /// # Panics
    /// Panics if `rows` or `cols` is zero; use [`Self::try_new`] for a
    /// fallible version.
    pub fn new(bbox: BoundingBox, rows: usize, cols: usize) -> Self {
        Self::try_new(bbox, rows, cols).expect("grid must have cells")
    }

    /// Fallible [`Self::new`]: `Err(GridError::ZeroGridDimension)` when
    /// `rows` or `cols` is zero.
    pub fn try_new(bbox: BoundingBox, rows: usize, cols: usize) -> Result<Self, GridError> {
        if rows == 0 || cols == 0 {
            return Err(GridError::ZeroGridDimension { rows, cols });
        }
        Ok(Grid { bbox, rows, cols })
    }

    /// The paper's default evaluation grid: 32×32 over Chicago.
    pub fn chicago_32() -> Self {
        Grid::new(BoundingBox::chicago(), 32, 32)
    }

    /// 32×32 grid over the central district (~300 m cells) — the default
    /// evaluation grid of the experiment harness.
    pub fn chicago_downtown_32() -> Self {
        Grid::new(BoundingBox::chicago_downtown(), 32, 32)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total cell count `n`.
    pub fn n_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// The bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Cell containing `p`, or `None` outside the box. Non-finite
    /// coordinates (NaN/±inf) are always `None` — `contains` already
    /// rejects them (NaN fails every `>=`/`<=` comparison), and the
    /// explicit finiteness guard makes that a stated contract rather
    /// than a side effect, so no future refactor of the containment
    /// check can let garbage reach the `as usize` casts below (which
    /// would silently map NaN to cell (0, 0)).
    pub fn cell_of(&self, p: &Point) -> Option<CellId> {
        if !(p.lat.is_finite() && p.lon.is_finite() && self.bbox.contains(p)) {
            return None;
        }
        let fr = (p.lat - self.bbox.min_lat) / (self.bbox.max_lat - self.bbox.min_lat);
        let fc = (p.lon - self.bbox.min_lon) / (self.bbox.max_lon - self.bbox.min_lon);
        let row = ((fr * self.rows as f64) as usize).min(self.rows - 1);
        let col = ((fc * self.cols as f64) as usize).min(self.cols - 1);
        Some(CellId(row * self.cols + col))
    }

    /// `(row, col)` of a cell.
    pub fn row_col(&self, cell: CellId) -> (usize, usize) {
        assert!(cell.0 < self.n_cells(), "cell out of range");
        (cell.0 / self.cols, cell.0 % self.cols)
    }

    /// Center point of a cell.
    pub fn cell_center(&self, cell: CellId) -> Point {
        let (row, col) = self.row_col(cell);
        let lat = self.bbox.min_lat
            + (row as f64 + 0.5) / self.rows as f64 * (self.bbox.max_lat - self.bbox.min_lat);
        let lon = self.bbox.min_lon
            + (col as f64 + 0.5) / self.cols as f64 * (self.bbox.max_lon - self.bbox.min_lon);
        Point::new(lat, lon)
    }

    /// Approximate cell dimensions in meters `(height, width)`.
    pub fn cell_size_m(&self) -> (f64, f64) {
        let sw = Point::new(self.bbox.min_lat, self.bbox.min_lon);
        let nw = Point::new(self.bbox.max_lat, self.bbox.min_lon);
        let se = Point::new(self.bbox.min_lat, self.bbox.max_lon);
        (
            sw.distance_m(&nw) / self.rows as f64,
            sw.distance_m(&se) / self.cols as f64,
        )
    }

    /// All cells whose *center* lies within `radius_m` meters of `center`
    /// — the paper's disk-shaped alert zones ("a range around the
    /// epicenter (often circular)", §2.3). Always contains the epicenter's
    /// own cell when inside the grid.
    pub fn cells_within_radius(&self, center: &Point, radius_m: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        for cell in self.cells() {
            if self.cell_center(cell).distance_m(center) <= radius_m {
                out.push(cell);
            }
        }
        if out.is_empty() {
            if let Some(own) = self.cell_of(center) {
                out.push(own);
            }
        }
        out.sort_unstable();
        out
    }

    /// Iterator over all cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.n_cells()).map(CellId)
    }

    /// Orthogonal neighbors (up/down/left/right) of a cell.
    pub fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        let (row, col) = self.row_col(cell);
        let mut out = Vec::with_capacity(4);
        if row > 0 {
            out.push(CellId(cell.0 - self.cols));
        }
        if row + 1 < self.rows {
            out.push(CellId(cell.0 + self.cols));
        }
        if col > 0 {
            out.push(CellId(cell.0 - 1));
        }
        if col + 1 < self.cols {
            out.push(CellId(cell.0 + 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(rows: usize, cols: usize) -> Grid {
        Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), rows, cols)
    }

    #[test]
    fn cell_mapping_roundtrip() {
        let g = unit_grid(4, 4);
        for cell in g.cells() {
            let center = g.cell_center(cell);
            assert_eq!(g.cell_of(&center), Some(cell));
        }
    }

    #[test]
    fn out_of_bounds_is_none() {
        let g = unit_grid(4, 4);
        assert_eq!(g.cell_of(&Point::new(-0.01, 0.05)), None);
        assert_eq!(g.cell_of(&Point::new(0.05, 0.2)), None);
        // corners map inside
        assert_eq!(g.cell_of(&Point::new(0.0, 0.0)), Some(CellId(0)));
        assert_eq!(g.cell_of(&Point::new(0.1, 0.1)), Some(CellId(15)));
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let g = unit_grid(4, 4);
        for p in [
            Point::new(f64::NAN, 0.05),
            Point::new(0.05, f64::NAN),
            Point::new(f64::NAN, f64::NAN),
            Point::new(f64::INFINITY, 0.05),
            Point::new(0.05, f64::NEG_INFINITY),
        ] {
            assert_eq!(g.cell_of(&p), None, "{p:?} must not map to a cell");
            assert!(
                g.cells_within_radius(&p, 1_000.0).is_empty(),
                "{p:?} must not anchor a zone"
            );
        }
    }

    #[test]
    fn max_edge_points_clamp_into_last_row_and_col() {
        // fr == 1.0 / fc == 1.0 (points exactly on the north/east edges)
        // must clamp into the final row/col, not index out of range.
        let g = unit_grid(4, 4);
        assert_eq!(g.cell_of(&Point::new(0.1, 0.05)), Some(CellId(14))); // north edge, col 2
        assert_eq!(g.cell_of(&Point::new(0.05, 0.1)), Some(CellId(11))); // east edge, row 2
        assert_eq!(g.cell_of(&Point::new(0.1, 0.1)), Some(CellId(15))); // NE corner
                                                                        // just inside the edge stays in the same cells
        assert_eq!(g.cell_of(&Point::new(0.1 - 1e-12, 0.05)), Some(CellId(14)));
    }

    #[test]
    fn row_col_layout_is_row_major() {
        let g = unit_grid(3, 5);
        assert_eq!(g.row_col(CellId(0)), (0, 0));
        assert_eq!(g.row_col(CellId(4)), (0, 4));
        assert_eq!(g.row_col(CellId(5)), (1, 0));
        assert_eq!(g.row_col(CellId(14)), (2, 4));
        assert_eq!(g.n_cells(), 15);
    }

    #[test]
    fn distances_are_plausible() {
        // ~111 km per degree of latitude.
        let a = Point::new(41.0, -87.0);
        let b = Point::new(42.0, -87.0);
        let d = a.distance_m(&b);
        assert!((d - 111_195.0).abs() < 500.0, "got {d}");
    }

    #[test]
    fn chicago_grid_cell_size() {
        // The 32×32 Chicago grid has cells on the order of a kilometer —
        // consistent with the paper's radii (tens to hundreds of meters
        // spanning one to a few cells).
        let g = Grid::chicago_32();
        let (h, w) = g.cell_size_m();
        assert!(h > 800.0 && h < 2_000.0, "cell height {h}");
        assert!(w > 800.0 && w < 2_000.0, "cell width {w}");
    }

    #[test]
    fn radius_query_grows_with_radius() {
        let g = Grid::chicago_32();
        let center = g.bbox().center();
        let r_small = g.cells_within_radius(&center, 20.0);
        let r_med = g.cells_within_radius(&center, 1_500.0);
        let r_large = g.cells_within_radius(&center, 5_000.0);
        assert_eq!(r_small.len(), 1, "20 m should cover only the own cell");
        assert!(r_med.len() > 1);
        assert!(r_large.len() > r_med.len());
        // all returned cells really are within range (except the
        // fallback own cell for tiny radii)
        for &c in &r_large {
            assert!(g.cell_center(c).distance_m(&center) <= 5_000.0);
        }
    }

    #[test]
    fn radius_query_far_outside_is_empty() {
        let g = unit_grid(4, 4);
        let far = Point::new(50.0, 50.0);
        assert!(g.cells_within_radius(&far, 10.0).is_empty());
    }

    #[test]
    fn neighbors_edge_cases() {
        let g = unit_grid(3, 3);
        assert_eq!(g.neighbors(CellId(4)).len(), 4); // center
        assert_eq!(g.neighbors(CellId(0)).len(), 2); // corner
        assert_eq!(g.neighbors(CellId(1)).len(), 3); // edge
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert!(matches!(
            BoundingBox::try_new(1.0, 0.0, 1.0, 1.0),
            Err(GridError::DegenerateBoundingBox { .. })
        ));
        assert!(matches!(
            BoundingBox::try_new(0.0, f64::NAN, 1.0, 1.0),
            Err(GridError::DegenerateBoundingBox { .. })
        ));
        let bbox = BoundingBox::try_new(0.0, 0.0, 0.1, 0.1).unwrap();
        assert_eq!(
            Grid::try_new(bbox, 0, 4).unwrap_err(),
            GridError::ZeroGridDimension { rows: 0, cols: 4 }
        );
        assert!(Grid::try_new(bbox, 2, 2).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let g = Grid::chicago_32();
        let back: Grid = serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
        assert_eq!(g, back);
    }
}
