//! Alert-zone construction and sampling.
//!
//! The paper's workloads are disk-shaped zones: an epicenter plus a radius
//! (small for contact tracing — meters to a room; large for public-safety
//! events — hundreds of meters, §2.3). Epicenters are sampled either
//! uniformly or proportionally to the cell probabilities (popular places
//! trigger more alerts).

use crate::grid::{CellId, Grid, Point};
use crate::prob::ProbabilityMap;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of alerted cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertZone {
    cells: Vec<CellId>,
}

impl AlertZone {
    /// Builds from a cell list (sorted, deduplicated).
    pub fn new(mut cells: Vec<CellId>) -> Self {
        cells.sort_unstable();
        cells.dedup();
        AlertZone { cells }
    }

    /// Disk zone: all cells within `radius_m` of `epicenter`.
    pub fn disk(grid: &Grid, epicenter: &Point, radius_m: f64) -> Self {
        AlertZone::new(grid.cells_within_radius(epicenter, radius_m))
    }

    /// The alerted cells (sorted).
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Cell ids as raw `usize` (what the encoders consume).
    pub fn cell_indices(&self) -> Vec<usize> {
        self.cells.iter().map(|c| c.0).collect()
    }

    /// Number of alerted cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` iff no cell is alerted.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// `true` iff `cell` is alerted.
    pub fn contains(&self, cell: CellId) -> bool {
        self.cells.binary_search(&cell).is_ok()
    }

    /// Union of two zones.
    pub fn union(&self, other: &AlertZone) -> AlertZone {
        let mut cells = self.cells.clone();
        cells.extend_from_slice(&other.cells);
        AlertZone::new(cells)
    }
}

/// Samples alert-zone epicenters and builds disk zones.
#[derive(Debug, Clone)]
pub struct ZoneSampler {
    grid: Grid,
    /// Cumulative distribution over cells for probability-weighted
    /// epicenter sampling.
    cdf: Vec<f64>,
}

impl ZoneSampler {
    /// Builds a sampler whose epicenters follow the probability map
    /// (popular cells host more alert events).
    pub fn new(grid: Grid, probs: &ProbabilityMap) -> Self {
        assert_eq!(
            grid.n_cells(),
            probs.len(),
            "probability map does not cover the grid"
        );
        let norm = probs.normalized();
        let mut cdf = Vec::with_capacity(norm.len());
        let mut acc = 0.0;
        for p in norm {
            acc += p;
            cdf.push(acc);
        }
        ZoneSampler { grid, cdf }
    }

    /// The grid being sampled.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Samples an epicenter cell ∝ probability.
    pub fn sample_epicenter_cell<R: Rng>(&self, rng: &mut R) -> CellId {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        CellId(idx)
    }

    /// Samples an epicenter point: a probability-weighted cell, jittered
    /// uniformly within the cell.
    pub fn sample_epicenter<R: Rng>(&self, rng: &mut R) -> Point {
        let cell = self.sample_epicenter_cell(rng);
        let center = self.grid.cell_center(cell);
        let (row_span, col_span) = (
            (self.grid.bbox().max_lat - self.grid.bbox().min_lat) / self.grid.rows() as f64,
            (self.grid.bbox().max_lon - self.grid.bbox().min_lon) / self.grid.cols() as f64,
        );
        Point::new(
            center.lat + (rng.gen::<f64>() - 0.5) * row_span,
            center.lon + (rng.gen::<f64>() - 0.5) * col_span,
        )
    }

    /// Samples a disk-shaped alert zone of the given radius.
    pub fn sample_zone<R: Rng>(&self, radius_m: f64, rng: &mut R) -> AlertZone {
        let epicenter = self.sample_epicenter(rng);
        AlertZone::disk(&self.grid, &epicenter, radius_m)
    }

    /// Samples `count` zones of radius `radius_m`.
    pub fn sample_zones<R: Rng>(&self, radius_m: f64, count: usize, rng: &mut R) -> Vec<AlertZone> {
        (0..count)
            .map(|_| self.sample_zone(radius_m, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::BoundingBox;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> Grid {
        Grid::chicago_32()
    }

    #[test]
    fn zone_dedup_and_lookup() {
        let z = AlertZone::new(vec![CellId(5), CellId(1), CellId(5), CellId(3)]);
        assert_eq!(z.len(), 3);
        assert!(z.contains(CellId(5)));
        assert!(!z.contains(CellId(2)));
        assert_eq!(z.cell_indices(), vec![1, 3, 5]);
    }

    #[test]
    fn disk_zone_compact_for_small_radius() {
        let g = grid();
        let center = g.bbox().center();
        let z = AlertZone::disk(&g, &center, 20.0);
        assert_eq!(z.len(), 1, "20 m contact-tracing zone spans one cell");
        let z300 = AlertZone::disk(&g, &center, 1_800.0);
        assert!(z300.len() > 1);
    }

    #[test]
    fn union_merges() {
        let a = AlertZone::new(vec![CellId(1), CellId(2)]);
        let b = AlertZone::new(vec![CellId(2), CellId(3)]);
        assert_eq!(a.union(&b).cell_indices(), vec![1, 2, 3]);
    }

    #[test]
    fn weighted_sampling_prefers_hot_cells() {
        let g = Grid::new(BoundingBox::new(0.0, 0.0, 0.1, 0.1), 2, 2);
        // cell 3 carries 97% of the mass
        let pm = ProbabilityMap::new(vec![0.01, 0.01, 0.01, 0.97]);
        let sampler = ZoneSampler::new(g.clone(), &pm);
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = [0usize; 4];
        for _ in 0..2000 {
            hits[sampler.sample_epicenter_cell(&mut rng).0] += 1;
        }
        assert!(hits[3] > 1800, "hot cell hit {} times", hits[3]);
        // epicenter points land inside the grid
        for _ in 0..100 {
            let p = sampler.sample_epicenter(&mut rng);
            assert!(g.cell_of(&p).is_some());
        }
    }

    #[test]
    fn sampled_zones_are_nonempty_and_seeded() {
        let g = grid();
        let pm = ProbabilityMap::uniform(g.n_cells());
        let sampler = ZoneSampler::new(g, &pm);
        let zones1 = sampler.sample_zones(300.0, 10, &mut StdRng::seed_from_u64(5));
        let zones2 = sampler.sample_zones(300.0, 10, &mut StdRng::seed_from_u64(5));
        assert_eq!(zones1, zones2);
        assert!(zones1.iter().all(|z| !z.is_empty()));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn sampler_size_mismatch() {
        let g = grid();
        let pm = ProbabilityMap::uniform(10);
        let _ = ZoneSampler::new(g, &pm);
    }
}
