//! Typed errors for the fallible spatial-substrate constructors.

use std::fmt;

/// Why a grid-layer value could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// A bounding box with `min >= max` on either axis.
    DegenerateBoundingBox {
        /// Southern edge.
        min_lat: f64,
        /// Western edge.
        min_lon: f64,
        /// Northern edge.
        max_lat: f64,
        /// Eastern edge.
        max_lon: f64,
    },
    /// A grid with zero rows or zero columns.
    ZeroGridDimension {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// A probability map over zero cells.
    EmptyProbabilityMap,
    /// A negative or non-finite likelihood score.
    InvalidLikelihood {
        /// Offending cell index.
        cell: usize,
        /// Offending value.
        value: f64,
    },
    /// Every likelihood is zero, so no codebook can be built.
    AllZeroLikelihoods,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::DegenerateBoundingBox {
                min_lat,
                min_lon,
                max_lat,
                max_lon,
            } => write!(
                f,
                "degenerate bounding box [{min_lat}, {max_lat}] x [{min_lon}, {max_lon}]"
            ),
            GridError::ZeroGridDimension { rows, cols } => {
                write!(f, "grid must have cells (got {rows} rows x {cols} cols)")
            }
            GridError::EmptyProbabilityMap => write!(f, "probability map needs at least one cell"),
            GridError::InvalidLikelihood { cell, value } => {
                write!(f, "invalid likelihood {value} at cell {cell}")
            }
            GridError::AllZeroLikelihoods => write!(f, "all-zero likelihoods"),
        }
    }
}

impl std::error::Error for GridError {}
