//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Benchmarks compile and run with `cargo bench` (the manifests set
//! `harness = false`); each `Bencher::iter` call performs a warmup, sizes
//! batches to a target wall-clock budget, and reports the median
//! nanoseconds per iteration on stdout in a stable, grep-friendly format:
//!
//! ```text
//! bench: hve/query/32 ... 1234 ns/iter (median of 7 samples)
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (sampling stops after this).
const TOTAL_BUDGET: Duration = Duration::from_millis(800);
/// Target duration of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);
const MAX_SAMPLES: usize = 15;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_bench(&id.into().0, f);
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into().0), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Measures `f`, storing the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let batch = if once.is_zero() {
            1024
        } else {
            (BATCH_TARGET.as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 20) as u64
        };

        let started = Instant::now();
        let mut samples_ns: Vec<f64> = Vec::new();
        while samples_ns.len() < MAX_SAMPLES
            && (samples_ns.len() < 3 || started.elapsed() < TOTAL_BUDGET)
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = samples_ns[samples_ns.len() / 2];
        self.samples = samples_ns.len();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        median_ns: f64::NAN,
        samples: 0,
    };
    f(&mut b);
    if b.samples == 0 {
        println!("bench: {name} ... no measurement (Bencher::iter never called)");
    } else {
        println!(
            "bench: {name} ... {:.0} ns/iter (median of {} samples)",
            b.median_ns, b.samples
        );
    }
}

/// Declares a group of benchmark functions (shim for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point (shim for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }
}
