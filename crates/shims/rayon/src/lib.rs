//! Offline stand-in for the subset of `rayon` this workspace uses:
//! `par_iter()` / `par_chunks()` on slices with `map(..).collect()`.
//!
//! Execution uses `std::thread::scope` with an atomic work queue instead
//! of a work-stealing pool. Results are returned in input order, so the
//! output of a parallel map is **identical** to its serial equivalent —
//! the property the batch-matching tests rely on. Worker panics propagate
//! to the caller, like rayon.
//!
//! There is **no persistent worker pool**: scoped threads are spawned per
//! collect (a static pool taking borrowed closures needs `unsafe`, which
//! this shim forbids), so each parallel call pays ~tens of µs of
//! spawn/join. Callers with small work items should gate on input size —
//! see `ServiceProvider::PARALLEL_MIN_STORE` in `sla-core` — or swap in
//! the real rayon when network access exists.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of worker threads a parallel operation will use.
///
/// Cached: `std::thread::available_parallelism` inspects cgroup limits on
/// Linux (several file reads, ~10µs) — far too slow to query per batch.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The glob-imported API surface (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

/// Runs `f` over `0..n` tasks on a scoped thread pool, returning results
/// in task order.
fn run_ordered<R: Send>(n: usize, threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n).max(1);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    });
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Collections constructible from an ordered parallel map.
pub trait FromParallelIterator<T> {
    /// Builds from results already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Per-item parallel iteration over borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: Sync + 'data;
    /// Starts a parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over slice items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParIterMap<'a, T, F> {
        ParIterMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator over items.
pub struct ParIterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParIterMap<'a, T, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let out = run_ordered(self.items.len(), current_num_threads(), |i| {
            (self.f)(&self.items[i])
        });
        C::from_ordered_vec(out)
    }
}

/// Chunked parallel iteration over slices.
pub trait ParallelSlice<T: Sync> {
    /// Starts a parallel iterator over non-overlapping chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            items: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over slice chunks.
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Maps each chunk through `f` in parallel.
    pub fn map<R, F: Fn(&'a [T]) -> R + Sync>(self, f: F) -> ParChunksMap<'a, T, F> {
        ParChunksMap {
            items: self.items,
            chunk_size: self.chunk_size,
            f,
        }
    }
}

/// A mapped parallel iterator over chunks.
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a [T]) -> R + Sync> ParChunksMap<'a, T, F> {
    /// Executes the map and collects chunk results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let n_chunks = self.items.len().div_ceil(self.chunk_size);
        let out = run_ordered(n_chunks, current_num_threads(), |i| {
            let start = i * self.chunk_size;
            let end = (start + self.chunk_size).min(self.items.len());
            (self.f)(&self.items[start..end])
        });
        C::from_ordered_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_everything_in_order() {
        let input: Vec<u64> = (0..1_003).collect();
        let sums: Vec<Vec<u64>> = input
            .par_chunks(97)
            .map(|c| c.iter().map(|x| x + 1).collect())
            .collect();
        let flat: Vec<u64> = sums.into_iter().flatten().collect();
        assert_eq!(flat, input.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u64> = Vec::new();
        let out: Vec<u64> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let chunks: Vec<u64> = input.par_chunks(8).map(|c| c.len() as u64).collect();
        assert!(chunks.is_empty());
    }

    // Force real threads regardless of host core count: run_ordered's
    // cross-thread ordering must match the serial map exactly.
    #[test]
    fn run_ordered_multithreaded_preserves_order() {
        let out = super::run_ordered(10_001, 4, |i| i * 3);
        assert_eq!(out, (0..10_001).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn run_ordered_multithreaded_panic_propagates() {
        let _ = super::run_ordered(64, 4, |i| {
            if i == 13 {
                panic!("boom");
            }
            i
        });
    }

    // Message differs between the serial fallback ("boom") and the
    // threaded path ("rayon-shim worker panicked"), so accept any panic.
    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let input: Vec<u64> = (0..64).collect();
        let _: Vec<u64> = input
            .par_iter()
            .map(|x| {
                if *x == 13 {
                    panic!("boom");
                }
                *x
            })
            .collect();
    }
}
