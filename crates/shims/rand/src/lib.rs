//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: the [`Rng`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`].
//!
//! The build environment has no network access, so third-party crates
//! cannot be fetched; this shim keeps the public surface source-compatible
//! (`rng.gen::<f64>()`, `StdRng::seed_from_u64(..)`) while staying fully
//! deterministic. The generator is xoshiro256++ seeded via SplitMix64 —
//! not the upstream ChaCha-based `StdRng`, but every consumer in this
//! workspace only relies on determinism and uniformity, not on a specific
//! stream.

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from an RNG (the role of
/// `rand::distributions::Standard`).
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_via_u64 {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
sample_via_u64!(u8, u16, u32, u64, usize);

impl Sample for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform random number generation.
pub trait Rng {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of type `T`.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a uniform value in `[low, high)`.
    fn gen_range(&mut self, low: u64, high: u64) -> u64
    where
        Self: Sized,
    {
        assert!(low < high, "gen_range requires low < high");
        low + self.next_u64() % (high - low)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; same API, different — but equally uniform — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_roughly_balanced() {
        let mut r = StdRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
