//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` macro surface (`arg in strategy` bindings,
//! `#![proptest_config(..)]`, `prop_assert*`, `prop_assume!`), plus the
//! strategies the test-suite exercises: `any::<T>()`, integer ranges,
//! `prop::collection::vec`, `prop::sample::Index` and `prop_map`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs so it can be reproduced (generation is fully
//! deterministic per test name).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeFrom};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next uniform 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next uniform 128-bit value.
    pub fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// Uniform usize in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A value generator (proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

macro_rules! range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as $wide) - (self.start as $wide);
                self.start + ((rng.next_u128() as $wide % width) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let raw = rng.next_u128() as $t;
                if raw >= self.start {
                    raw
                } else {
                    // Fold into [start, MAX]; start > 0 here since raw < start.
                    self.start + raw % (<$t>::MAX - self.start + 1)
                }
            }
        }
    )*};
}
range_strategy!(u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128, u128 => u128);

/// Namespaced strategy modules (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// Builds a vector strategy (proptest's `prop::collection::vec`).
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi - self.size.lo;
                let len = self.size.lo + if span == 0 { 0 } else { rng.below(span) };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// An abstract index into a collection of as-yet-unknown size.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolves against a concrete collection length.
            ///
            /// # Panics
            /// Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// A size specification for collection strategies: `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of a single case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; skip it.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

/// Everything a `proptest!` call site needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests (shim for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!("{:?}", ($(&$arg,)*));
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}\ninputs: {}", __case, msg, __inputs);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts inside a proptest body (fails the case instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}",
                __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}: {}",
                __l,
                __r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} == {:?}",
                __l, __r
            )));
        }
    }};
}

/// Skips the current case when its assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in 5usize..6, c in 10u64..) {
            prop_assert!((3..17).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!(c >= 10);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len = {}", v.len());
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (1u32..5).prop_map(|x| x * 10);
        let mut rng = TestRng::deterministic("map");
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }
}
