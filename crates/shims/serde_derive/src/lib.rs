//! Offline `#[derive(Serialize, Deserialize)]` for the in-repo serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which cannot be fetched in this environment). Supports exactly the
//! shapes this workspace derives on:
//!
//! * structs with named fields (incl. `#[serde(with = "module")]` fields),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generics on derive targets are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    with: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type Toks = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes attributes (`#[...]`), returning the `with = "..."` path if a
/// `#[serde(with = "path")]` attribute is among them.
fn skip_attrs(toks: &mut Toks) -> Option<String> {
    let mut with = None;
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        if let Some(TokenTree::Group(g)) = toks.next() {
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(id)) = inner.next() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        with = parse_with_arg(args.stream()).or(with);
                    }
                }
            }
        }
    }
    with
}

fn parse_with_arg(stream: TokenStream) -> Option<String> {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "with" => {}
        _ => return None,
    }
    match it.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        _ => return None,
    }
    if let Some(TokenTree::Literal(lit)) = it.next() {
        let s = lit.to_string();
        Some(s.trim_matches('"').to_string())
    } else {
        None
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &mut Toks) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Skips type tokens until a top-level `,` (consumed) or end of stream,
/// tracking `<...>` nesting since commas inside generics are not grouped.
fn skip_type(toks: &mut Toks) {
    let mut angle = 0i32;
    while let Some(tt) = toks.peek() {
        if let TokenTree::Punct(p) = tt {
            let c = p.as_char();
            if c == '<' {
                angle += 1;
            } else if c == '>' {
                angle -= 1;
            } else if c == ',' && angle == 0 {
                toks.next();
                return;
            }
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let with = skip_attrs(&mut toks);
        skip_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected field name, got {other}"),
            None => break,
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected ':' after field {name}, got {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(Field { name, with });
    }
    fields
}

/// Counts top-level fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        let _ = skip_attrs(&mut toks);
        skip_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut toks);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks: Toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected variant name, got {other}"),
            None => break,
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Toks = input.into_iter().peekable();
    let kind = loop {
        let _ = skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // e.g. `union` or stray modifiers — keep scanning.
            }
            Some(_) => {}
            None => panic!("serde_derive shim: no struct/enum found in derive input"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic derive targets are not supported ({name})");
    }
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Item::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(g.stream())),
                }
            } else {
                Item::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
            name,
            fields: Fields::Tuple(count_tuple_fields(g.stream())),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        other => panic!("serde_derive shim: unexpected item body {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

fn ser_named_fields(out: &mut String, fields: &[Field], accessor: &str) {
    for f in fields {
        let access = format!("{}{}", accessor, f.name);
        match &f.with {
            None => {
                let _ = writeln!(
                    out,
                    "__obj.push((\"{n}\".to_string(), ::serde::to_value(&{access}).map_err({SER_ERR})?));",
                    n = f.name,
                );
            }
            Some(path) => {
                let _ = writeln!(
                    out,
                    "__obj.push((\"{n}\".to_string(), {path}::serialize(&{access}, ::serde::value::ValueSerializer).map_err({SER_ERR})?));",
                    n = f.name,
                );
            }
        }
    }
}

fn de_named_fields(out: &mut String, fields: &[Field]) {
    for f in fields {
        let take = format!(
            "::serde::value::take_field(&mut __obj, \"{n}\").ok_or_else(|| {DE_ERR}(\"missing field `{n}`\"))?",
            n = f.name,
        );
        match &f.with {
            None => {
                let _ = writeln!(
                    out,
                    "{n}: ::serde::from_value({take}).map_err({DE_ERR})?,",
                    n = f.name,
                );
            }
            Some(path) => {
                let _ = writeln!(
                    out,
                    "{n}: {path}::deserialize(::serde::value::ValueDeserializer::new({take})).map_err({DE_ERR})?,",
                    n = f.name,
                );
            }
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    let mut body = String::new();
    match item {
        Item::Struct { fields, .. } => match fields {
            Fields::Named(fs) => {
                body.push_str(
                    "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                );
                ser_named_fields(&mut body, fs, "self.");
                body.push_str("__s.serialize_value(::serde::Value::Object(__obj))\n");
            }
            Fields::Tuple(1) => {
                let _ = writeln!(
                    body,
                    "__s.serialize_value(::serde::to_value(&self.0).map_err({SER_ERR})?)"
                );
            }
            Fields::Tuple(n) => {
                body.push_str("let __items = vec![\n");
                for i in 0..*n {
                    let _ = writeln!(body, "::serde::to_value(&self.{i}).map_err({SER_ERR})?,");
                }
                body.push_str("];\n__s.serialize_value(::serde::Value::Array(__items))\n");
            }
            Fields::Unit => {
                let _ = writeln!(body, "__s.serialize_value(::serde::Value::Null)");
            }
        },
        Item::Enum { variants, .. } => {
            body.push_str("match self {\n");
            for v in variants {
                match &v.fields {
                    Fields::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{v} => __s.serialize_value(::serde::Value::Str(\"{v}\".to_string())),",
                            v = v.name,
                        );
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let inner = if *n == 1 {
                            format!("::serde::to_value(__f0).map_err({SER_ERR})?")
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::to_value({b}).map_err({SER_ERR})?"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        let _ = writeln!(
                            body,
                            "{name}::{v}({pat}) => {{ let __inner = {inner}; __s.serialize_value(::serde::Value::Object(vec![(\"{v}\".to_string(), __inner)])) }},",
                            v = v.name,
                        );
                    }
                    Fields::Named(fs) => {
                        let pat: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        ser_named_fields(&mut inner, fs, "");
                        let _ = writeln!(
                            body,
                            "{name}::{v} {{ {pat} }} => {{ {inner} __s.serialize_value(::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(__obj))])) }},",
                            v = v.name,
                            pat = pat.join(", "),
                        );
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    let mut body = String::new();
    match item {
        Item::Struct { fields, .. } => match fields {
            Fields::Named(fs) => {
                let _ = writeln!(
                    body,
                    "let mut __obj = ::serde::value::expect_object(__d.take_value()?).map_err({DE_ERR})?;"
                );
                let _ = writeln!(body, "::core::result::Result::Ok({name} {{");
                de_named_fields(&mut body, fs);
                body.push_str("})\n");
            }
            Fields::Tuple(1) => {
                let _ = writeln!(
                    body,
                    "::core::result::Result::Ok({name}(::serde::from_value(__d.take_value()?).map_err({DE_ERR})?))"
                );
            }
            Fields::Tuple(n) => {
                let _ = writeln!(
                    body,
                    "let __items = ::serde::value::expect_array(__d.take_value()?).map_err({DE_ERR})?;"
                );
                let _ = writeln!(
                    body,
                    "if __items.len() != {n} {{ return ::core::result::Result::Err({DE_ERR}(\"wrong tuple arity for {name}\")); }}"
                );
                body.push_str("let mut __it = __items.into_iter();\n");
                let _ = writeln!(body, "::core::result::Result::Ok({name}(");
                for _ in 0..*n {
                    let _ = writeln!(
                        body,
                        "::serde::from_value(__it.next().expect(\"arity checked\")).map_err({DE_ERR})?,"
                    );
                }
                body.push_str("))\n");
            }
            Fields::Unit => {
                let _ = writeln!(
                    body,
                    "let _ = __d.take_value()?; ::core::result::Result::Ok({name})"
                );
            }
        },
        Item::Enum { variants, .. } => {
            body.push_str("match __d.take_value()? {\n");
            // Unit variants arrive as plain strings.
            body.push_str("::serde::Value::Str(__vname) => match __vname.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let _ = writeln!(
                        body,
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),",
                        v = v.name,
                    );
                }
            }
            let _ = writeln!(
                body,
                "__other => ::core::result::Result::Err({DE_ERR}(format!(\"unknown unit variant `{{__other}}` for {name}\"))),"
            );
            body.push_str("},\n");
            // Data variants arrive as single-key objects.
            body.push_str("::serde::Value::Object(mut __o) if __o.len() == 1 => {\n");
            body.push_str("let (__vname, __inner) = __o.remove(0);\n");
            body.push_str("match __vname.as_str() {\n");
            for v in variants {
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "\"{v}\" => ::core::result::Result::Ok({name}::{v}(::serde::from_value(__inner).map_err({DE_ERR})?)),",
                            v = v.name,
                        );
                    }
                    Fields::Tuple(n) => {
                        let mut arm = format!(
                            "\"{v}\" => {{ let __items = ::serde::value::expect_array(__inner).map_err({DE_ERR})?;\n",
                            v = v.name,
                        );
                        let _ = writeln!(
                            arm,
                            "if __items.len() != {n} {{ return ::core::result::Result::Err({DE_ERR}(\"wrong arity for variant {v}\")); }}",
                            v = v.name,
                        );
                        arm.push_str("let mut __it = __items.into_iter();\n");
                        let _ =
                            writeln!(arm, "::core::result::Result::Ok({name}::{v}(", v = v.name);
                        for _ in 0..*n {
                            let _ = writeln!(
                                arm,
                                "::serde::from_value(__it.next().expect(\"arity checked\")).map_err({DE_ERR})?,"
                            );
                        }
                        arm.push_str("))}\n");
                        body.push_str(&arm);
                    }
                    Fields::Named(fs) => {
                        let mut arm = format!(
                            "\"{v}\" => {{ let mut __obj = ::serde::value::expect_object(__inner).map_err({DE_ERR})?;\n",
                            v = v.name,
                        );
                        let _ =
                            writeln!(arm, "::core::result::Result::Ok({name}::{v} {{", v = v.name);
                        de_named_fields(&mut arm, fs);
                        arm.push_str("})}\n");
                        body.push_str(&arm);
                    }
                }
            }
            let _ = writeln!(
                body,
                "__other => ::core::result::Result::Err({DE_ERR}(format!(\"unknown variant `{{__other}}` for {name}\"))),"
            );
            body.push_str("}\n},\n");
            let _ = writeln!(
                body,
                "__other => ::core::result::Result::Err({DE_ERR}(format!(\"unexpected value {{__other:?}} for enum {name}\"))),"
            );
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}
