//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde streams through a visitor-based data model; this shim
//! routes everything through an owned [`Value`] tree instead, which is
//! ample for the configuration/material (de)serialization the alert stack
//! performs and keeps the shim small. The public items mirror serde's
//! paths (`serde::Serialize`, `serde::Deserializer`, `serde::de::Error`,
//! `#[derive(Serialize, Deserialize)]`, `#[serde(with = "module")]`) so
//! the protocol crates compile unchanged against either implementation.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Owned data-model tree (the shim's equivalent of serde's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered string-keyed map.
    Object(Vec<(String, Value)>),
}

/// Error produced by the in-memory [`value`] serializer/deserializer.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

/// Serialization-side error support (mirrors `serde::ser`).
pub mod ser {
    /// Trait every serializer error implements.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::ValueError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::ValueError(msg.to_string())
        }
    }
}

/// Deserialization-side error support (mirrors `serde::de`).
pub mod de {
    /// Trait every deserializer error implements.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::ValueError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::ValueError(msg.to_string())
        }
    }
}

/// A serializer sink. Unlike real serde's 30-method trait, everything is
/// funnelled through [`Serializer::serialize_value`]; the named
/// convenience methods exist because handwritten impls in this workspace
/// call them.
pub trait Serializer: Sized {
    /// Output type on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes a fully-built data-model value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::UInt(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v))
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }
}

/// A deserializer source; hands over the full data-model value.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Yields the underlying data-model value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types that can serialize themselves.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types that can deserialize themselves.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// In-memory [`Value`]-backed serializer/deserializer pair.
pub mod value {
    use super::{de, Deserializer, Serializer, Value, ValueError};

    /// Serializer whose output *is* the data-model [`Value`].
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = ValueError;
        fn serialize_value(self, v: Value) -> Result<Value, ValueError> {
            Ok(v)
        }
    }

    /// Deserializer reading from an owned [`Value`].
    pub struct ValueDeserializer(pub Value);

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = ValueError;
        fn take_value(self) -> Result<Value, ValueError> {
            Ok(self.0)
        }
    }

    impl ValueDeserializer {
        /// Wraps a value (mirrors `serde::de::value::*Deserializer::new`).
        pub fn new(v: Value) -> Self {
            ValueDeserializer(v)
        }
    }

    /// Convenience: type-checked extraction helpers used by derived code.
    pub fn expect_object(v: Value) -> Result<Vec<(String, Value)>, ValueError> {
        match v {
            Value::Object(o) => Ok(o),
            other => Err(ValueError(format!("expected object, got {other:?}"))),
        }
    }

    /// Extracts an array or errors.
    pub fn expect_array(v: Value) -> Result<Vec<Value>, ValueError> {
        match v {
            Value::Array(a) => Ok(a),
            other => Err(ValueError(format!("expected array, got {other:?}"))),
        }
    }

    /// Removes `key` from an object field list.
    pub fn take_field(obj: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
        obj.iter()
            .position(|(k, _)| k == key)
            .map(|i| obj.remove(i).1)
    }

    /// Used by `de::Error` plumbing in derived code.
    pub fn missing_field(key: &str) -> ValueError {
        ValueError(format!("missing field `{key}`"))
    }

    #[allow(unused_imports)]
    use de::Error as _;
}

/// Serializes any value into an owned [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, ValueError> {
    v.serialize(value::ValueSerializer)
}

/// Deserializes any type from an owned [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, ValueError> {
    T::deserialize(value::ValueDeserializer(v))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

fn seq_to_value<'a, T: Serialize + 'a, E: ser::Error>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, E> {
    let mut out = Vec::new();
    for it in items {
        out.push(to_value(it).map_err(E::custom)?);
    }
    Ok(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        s.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, S::Error>(self.iter())?;
        s.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(<S::Error as ser::Error>::custom)?,)+
                ];
                s.serialize_value(Value::Array(items))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, Z: 3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn wrong_type<E: de::Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, got {got:?}"))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(wrong_type("bool", &other)),
        }
    }
}

fn value_as_u64<E: de::Error>(v: Value) -> Result<u64, E> {
    match v {
        Value::UInt(u) => Ok(u),
        Value::Int(i) if i >= 0 => Ok(i as u64),
        Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Ok(f as u64),
        other => Err(wrong_type("unsigned integer", &other)),
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let u = value_as_u64::<D::Error>(d.take_value()?)?;
                <$t>::try_from(u).map_err(|_| {
                    <D::Error as de::Error>::custom(format!(
                        "integer {u} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let i = match d.take_value()? {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    other => return Err(wrong_type("integer", &other)),
                };
                <$t>::try_from(i).map_err(|_| {
                    <D::Error as de::Error>::custom(format!(
                        "integer {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Float(f) => Ok(f),
            Value::UInt(u) => Ok(u as f64),
            Value::Int(i) => Ok(i as f64),
            other => Err(wrong_type("float", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(wrong_type("string", &other)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(<D::Error as de::Error>::custom))
                .collect(),
            other => Err(wrong_type("array", &other)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other)
                .map(Some)
                .map_err(<D::Error as de::Error>::custom),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($name:ident : $idx:tt),+))*) => {$(
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let items = match d.take_value()? {
                    Value::Array(items) => items,
                    other => return Err(wrong_type("tuple array", &other)),
                };
                if items.len() != $len {
                    return Err(<D::Error as de::Error>::custom(format!(
                        "expected tuple of length {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                let mut it = items.into_iter();
                Ok((
                    $({
                        let _ = $idx;
                        from_value::<$name>(it.next().expect("length checked"))
                            .map_err(<D::Error as de::Error>::custom)?
                    },)+
                ))
            }
        }
    )*};
}
deserialize_tuple! {
    (1; A: 0)
    (2; A: 0, B: 1)
    (3; A: 0, B: 1, C: 2)
    (4; A: 0, B: 1, C: 2, Z: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_value(&42u64).unwrap(), Value::UInt(42));
        assert_eq!(from_value::<u64>(Value::UInt(42)).unwrap(), 42);
        assert_eq!(from_value::<f64>(Value::UInt(2)).unwrap(), 2.0);
        assert!(from_value::<u8>(Value::UInt(300)).is_err());
    }

    #[test]
    fn roundtrip_compound() {
        let v = vec![(1usize, Some(true)), (2, None)];
        let tree = to_value(&v).unwrap();
        let back: Vec<(usize, Option<bool>)> = from_value(tree).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_null() {
        assert_eq!(to_value(&Option::<u32>::None).unwrap(), Value::Null);
        assert_eq!(from_value::<Option<u32>>(Value::Null).unwrap(), None);
    }
}
