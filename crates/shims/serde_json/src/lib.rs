//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_vec`] and [`from_str`], built on the serde shim's
//! owned [`serde::Value`] data model.

#![forbid(unsafe_code)]

use serde::Value;
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<serde::ValueError> for Error {
    fn from(e: serde::ValueError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    render(&v, &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    serde::from_value(v).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` gives the shortest representation that
                // round-trips, and always includes a '.' or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(it, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|v| Value::Int(-v))
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|e| Error(e.to_string()))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape '\\{}'", other as char))),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let s = &self.bytes[self.pos - 1..];
                    let ch_len = utf8_len(b);
                    let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                        .map_err(|e| Error(e.to_string()))?;
                    out.push_str(chunk);
                    self.pos += ch_len - 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn string_escapes() {
        let s = "he said \"hi\"\nüñïçödé\\";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A\t""#).unwrap(), "A\t");
    }

    #[test]
    fn nested_roundtrip() {
        let v: Vec<(u32, Option<String>, f64)> = vec![(1, Some("x".into()), 0.25), (2, None, -3.5)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, Option<String>, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_integer_value_roundtrips() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
        assert_eq!(from_str::<f64>(&json).unwrap(), 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12x").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
