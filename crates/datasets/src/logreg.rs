//! From-scratch logistic regression and the crime-risk model of §7.1.
//!
//! The paper: "a logistic regression model is trained with the crime data
//! from January to November 2015, and tested on the December data. The
//! accuracy of the model is 92.9% and the generated likelihood scores ...
//! are used as input to our techniques."
//!
//! [`CrimeRiskModel`] reproduces that protocol on the synthetic dataset:
//! for each month `m`, the features of a cell are built from the incident
//! history before `m` and the label is "does the cell see any incident in
//! month `m`?". Months 2–11 train, December tests, and the fitted model's
//! December probabilities become the per-cell alert likelihoods.

use crate::crime::{CrimeCategory, CrimeDataset};
use serde::{Deserialize, Serialize};
use sla_grid::{Grid, ProbabilityMap};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.1,
            epochs: 400,
            l2: 1e-4,
        }
    }
}

/// Plain binary logistic regression with feature standardization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fits on rows `x` (each of equal length) with labels `y`.
    ///
    /// # Panics
    /// Panics on empty/ragged input or label/row count mismatch.
    pub fn fit(x: &[Vec<f64>], y: &[bool], config: TrainConfig) -> Self {
        assert!(!x.is_empty(), "no training rows");
        assert_eq!(x.len(), y.len(), "row/label mismatch");
        let dims = x[0].len();
        assert!(x.iter().all(|r| r.len() == dims), "ragged feature rows");

        // Standardize features for stable gradients.
        let n = x.len() as f64;
        let mut means = vec![0.0; dims];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut stds = vec![0.0; dims];
        for row in x {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut stds {
            *s = s.sqrt().max(1e-9);
        }

        let standardized: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&means)
                    .zip(&stds)
                    .map(|((v, m), s)| (v - m) / s)
                    .collect()
            })
            .collect();

        let mut weights = vec![0.0; dims];
        let mut bias = 0.0;
        for _ in 0..config.epochs {
            let mut grad_w = vec![0.0; dims];
            let mut grad_b = 0.0;
            for (row, &label) in standardized.iter().zip(y) {
                let z = bias + row.iter().zip(&weights).map(|(v, w)| v * w).sum::<f64>();
                let err = sigmoid(z) - label as u8 as f64;
                for (g, v) in grad_w.iter_mut().zip(row) {
                    *g += err * v / n;
                }
                grad_b += err / n;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * (g + config.l2 * *w);
            }
            bias -= config.learning_rate * grad_b;
        }

        LogisticRegression {
            weights,
            bias,
            feature_means: means,
            feature_stds: stds,
        }
    }

    /// Predicted probability for a raw (unstandardized) feature row.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature width mismatch");
        let z = self.bias
            + row
                .iter()
                .zip(&self.feature_means)
                .zip(&self.feature_stds)
                .zip(&self.weights)
                .map(|(((v, m), s), w)| (v - m) / s * w)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Hard classification at threshold 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[bool]) -> f64 {
        assert_eq!(x.len(), y.len());
        let correct = x
            .iter()
            .zip(y)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / x.len() as f64
    }
}

/// The §7.1 pipeline: features per (cell, month), trained Jan–Nov, tested
/// on December; December probabilities become the alert-likelihood map.
#[derive(Debug, Clone)]
pub struct CrimeRiskModel {
    model: LogisticRegression,
    test_accuracy: f64,
    december_probs: Vec<f64>,
}

impl CrimeRiskModel {
    /// Trains on the dataset over `grid`.
    pub fn train(dataset: &CrimeDataset, grid: &Grid, config: TrainConfig) -> Self {
        // Pre-compute per-category monthly cell counts.
        let monthly: Vec<[Vec<u32>; 4]> = (1..=12u8)
            .map(|m| {
                [
                    dataset.cell_counts(grid, CrimeCategory::Homicide, m..=m),
                    dataset.cell_counts(grid, CrimeCategory::SexualAssault, m..=m),
                    dataset.cell_counts(grid, CrimeCategory::SexOffense, m..=m),
                    dataset.cell_counts(grid, CrimeCategory::Kidnapping, m..=m),
                ]
            })
            .collect();

        let n_cells = grid.n_cells();
        let history_counts = |cat: usize, cell: usize, upto_excl: u8| -> f64 {
            (0..upto_excl as usize - 1)
                .map(|m| monthly[m][cat][cell] as f64)
                .sum()
        };

        let features = |cell: usize, month: u8| -> Vec<f64> {
            let (row, col) = grid.row_col(sla_grid::CellId(cell));
            let mut f = Vec::with_capacity(8);
            // Per-category incident history before `month`, rate-normalized.
            let span = (month - 1) as f64;
            for cat in 0..4 {
                f.push(history_counts(cat, cell, month) / span);
            }
            // Neighborhood total history (spatial smoothing).
            let neigh: f64 = grid
                .neighbors(sla_grid::CellId(cell))
                .iter()
                .map(|n| (0..4).map(|c| history_counts(c, n.0, month)).sum::<f64>())
                .sum::<f64>()
                / span;
            f.push(neigh);
            // Position (captures downtown-vs-periphery gradients).
            f.push(row as f64 / grid.rows() as f64);
            f.push(col as f64 / grid.cols() as f64);
            f
        };

        let label = |cell: usize, month: u8| -> bool {
            (0..4).any(|cat| monthly[month as usize - 1][cat][cell] > 0)
        };

        // Train: months 2..=11 (history exists and December is held out).
        let mut train_x = Vec::with_capacity(n_cells * 10);
        let mut train_y = Vec::with_capacity(n_cells * 10);
        for month in 2..=11u8 {
            for cell in 0..n_cells {
                train_x.push(features(cell, month));
                train_y.push(label(cell, month));
            }
        }
        let model = LogisticRegression::fit(&train_x, &train_y, config);

        // Test on December.
        let test_x: Vec<Vec<f64>> = (0..n_cells).map(|c| features(c, 12)).collect();
        let test_y: Vec<bool> = (0..n_cells).map(|c| label(c, 12)).collect();
        let test_accuracy = model.accuracy(&test_x, &test_y);
        let december_probs: Vec<f64> = test_x.iter().map(|r| model.predict_proba(r)).collect();

        CrimeRiskModel {
            model,
            test_accuracy,
            december_probs,
        }
    }

    /// The fitted regression.
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }

    /// Held-out December accuracy (the paper reports 92.9 %).
    pub fn test_accuracy(&self) -> f64 {
        self.test_accuracy
    }

    /// The per-cell December alert likelihoods — input to the encoders.
    pub fn likelihood_map(&self) -> ProbabilityMap {
        ProbabilityMap::new(self.december_probs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crime::CrimeGeneratorConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separable_toy_problem() {
        // y = x0 > 0.5, cleanly separable.
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 / 200.0, (i % 7) as f64])
            .collect();
        let y: Vec<bool> = x.iter().map(|r| r[0] > 0.5).collect();
        let model = LogisticRegression::fit(&x, &y, TrainConfig::default());
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn probabilities_are_monotone_in_signal() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let model = LogisticRegression::fit(&x, &y, TrainConfig::default());
        assert!(model.predict_proba(&[90.0]) > model.predict_proba(&[10.0]));
        assert!(model.predict_proba(&[99.0]) > 0.5);
        assert!(model.predict_proba(&[1.0]) < 0.5);
    }

    #[test]
    fn crime_risk_model_end_to_end() {
        let ds = CrimeDataset::generate(
            &CrimeGeneratorConfig::default(),
            &mut StdRng::seed_from_u64(2015),
        );
        let grid = Grid::chicago_downtown_32();
        let risk = CrimeRiskModel::train(&ds, &grid, TrainConfig::default());

        // Accuracy should be in the ballpark the paper reports (92.9 %);
        // we accept a generous band since the data are synthetic.
        let acc = risk.test_accuracy();
        assert!(acc > 0.80, "accuracy {acc} too low");

        // Likelihood surface: valid probabilities, meaningfully skewed.
        let pm = risk.likelihood_map();
        assert_eq!(pm.len(), grid.n_cells());
        assert!(pm.raw().iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(pm.skewness() > 0.05, "surface should be skewed");

        // Hot cells (more history) should get higher predicted risk than
        // empty periphery on average.
        let totals = ds.cell_counts_total(&grid, 1..=11);
        let hot_avg: f64 = {
            let hot: Vec<usize> = (0..grid.n_cells()).filter(|&c| totals[c] >= 10).collect();
            hot.iter().map(|&c| pm.get(c)).sum::<f64>() / hot.len().max(1) as f64
        };
        let cold_avg: f64 = {
            let cold: Vec<usize> = (0..grid.n_cells()).filter(|&c| totals[c] == 0).collect();
            cold.iter().map(|&c| pm.get(c)).sum::<f64>() / cold.len().max(1) as f64
        };
        assert!(
            hot_avg > cold_avg,
            "hot {hot_avg:.3} should exceed cold {cold_avg:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let x = vec![vec![1.0], vec![1.0, 2.0]];
        let y = vec![true, false];
        LogisticRegression::fit(&x, &y, TrainConfig::default());
    }
}
