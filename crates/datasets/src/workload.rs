//! Alert-zone workloads of §7: radius sweeps (Fig. 9, 10, 12) and the
//! mixed short/long workloads W1–W4 (Fig. 11).

use rand::Rng;
use serde::{Deserialize, Serialize};
use sla_grid::{AlertZone, ZoneSampler};

/// A batch of alert zones to evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Label used in result tables (e.g. `"r=300m"` or `"W1"`).
    pub label: String,
    /// The zones.
    pub zones: Vec<AlertZone>,
}

impl Workload {
    /// Mean zone size in cells.
    pub fn mean_zone_cells(&self) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        self.zones.iter().map(|z| z.len()).sum::<usize>() as f64 / self.zones.len() as f64
    }
}

/// Radius sweep: `zones_per_radius` disk zones at each radius.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusSweep {
    /// Radii in meters (the paper's x-axis).
    pub radii_m: Vec<f64>,
    /// Zones sampled per radius.
    pub zones_per_radius: usize,
}

impl Default for RadiusSweep {
    fn default() -> Self {
        RadiusSweep {
            // 20 m contact tracing up to ~2 km public-safety events; with
            // ~300 m cells this spans 1-cell to ~150-cell zones.
            radii_m: vec![
                20.0, 50.0, 100.0, 200.0, 300.0, 500.0, 750.0, 1_000.0, 1_500.0, 2_000.0,
            ],
            zones_per_radius: 50,
        }
    }
}

impl RadiusSweep {
    /// Generates one workload per radius.
    pub fn generate<R: Rng>(&self, sampler: &ZoneSampler, rng: &mut R) -> Vec<Workload> {
        self.radii_m
            .iter()
            .map(|&r| Workload {
                label: format!("r={r:.0}m"),
                zones: sampler.sample_zones(r, self.zones_per_radius, rng),
            })
            .collect()
    }
}

/// Mixed workload: a fraction of short-radius (compact, contact-tracing
/// style) zones and the rest long-radius (§7.2: "W1 (90% short-10% long);
/// W2 (75%-25%); W3 (25%-75%); W4 (10%-90%)").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedWorkload {
    /// Workload label (`"W1"`…).
    pub label: String,
    /// Fraction of short zones in [0, 1].
    pub short_fraction: f64,
    /// Short radius in meters (paper: 20 m).
    pub short_radius_m: f64,
    /// Long radius in meters (paper: 300 m).
    pub long_radius_m: f64,
    /// Total zones.
    pub count: usize,
}

impl MixedWorkload {
    /// The paper's four mixes with 20 m / 300 m radii.
    pub fn paper_mixes(count: usize) -> Vec<MixedWorkload> {
        [("W1", 0.90), ("W2", 0.75), ("W3", 0.25), ("W4", 0.10)]
            .iter()
            .map(|(label, frac)| MixedWorkload {
                label: label.to_string(),
                short_fraction: *frac,
                short_radius_m: 20.0,
                long_radius_m: 300.0,
                count,
            })
            .collect()
    }

    /// Generates the workload (short zones first is avoided by sampling
    /// the mix per zone, matching a random arrival order).
    pub fn generate<R: Rng>(&self, sampler: &ZoneSampler, rng: &mut R) -> Workload {
        let zones = (0..self.count)
            .map(|_| {
                let radius = if rng.gen::<f64>() < self.short_fraction {
                    self.short_radius_m
                } else {
                    self.long_radius_m
                };
                sampler.sample_zone(radius, rng)
            })
            .collect();
        Workload {
            label: self.label.clone(),
            zones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_grid::{Grid, ProbabilityMap};

    fn sampler() -> ZoneSampler {
        let grid = Grid::chicago_downtown_32();
        let pm = ProbabilityMap::uniform(grid.n_cells());
        ZoneSampler::new(grid, &pm)
    }

    #[test]
    fn sweep_zone_sizes_grow_with_radius() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(3);
        let workloads = RadiusSweep::default().generate(&s, &mut rng);
        assert_eq!(workloads.len(), 10);
        let sizes: Vec<f64> = workloads.iter().map(|w| w.mean_zone_cells()).collect();
        // 20 m zones are single-cell; 2 km zones span dozens of cells.
        assert!(sizes[0] >= 1.0 && sizes[0] < 1.5, "20m mean {}", sizes[0]);
        assert!(sizes[9] > 20.0, "2km mean {}", sizes[9]);
        // monotone (with slack for sampling noise)
        for w in sizes.windows(2) {
            assert!(w[1] >= w[0] * 0.9, "sizes should grow: {sizes:?}");
        }
    }

    #[test]
    fn mixed_workload_fractions() {
        let s = sampler();
        let mixes = MixedWorkload::paper_mixes(400);
        assert_eq!(mixes.len(), 4);
        let mut rng = StdRng::seed_from_u64(4);
        let w1 = mixes[0].generate(&s, &mut rng);
        let w4 = mixes[3].generate(&s, &mut rng);
        // W1 is mostly small zones; W4 mostly large.
        assert!(w1.mean_zone_cells() < w4.mean_zone_cells());
        assert_eq!(w1.zones.len(), 400);
    }

    #[test]
    fn workloads_are_seeded_deterministic() {
        let s = sampler();
        let sweep = RadiusSweep {
            radii_m: vec![100.0, 500.0],
            zones_per_radius: 5,
        };
        let a = sweep.generate(&s, &mut StdRng::seed_from_u64(9));
        let b = sweep.generate(&s, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
