//! Alert-zone workloads of §7: radius sweeps (Fig. 9, 10, 12) and the
//! mixed short/long workloads W1–W4 (Fig. 11).

use rand::Rng;
use serde::{Deserialize, Serialize};
use sla_grid::{AlertZone, ZoneSampler};

/// A batch of alert zones to evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Label used in result tables (e.g. `"r=300m"` or `"W1"`).
    pub label: String,
    /// The zones.
    pub zones: Vec<AlertZone>,
}

impl Workload {
    /// Mean zone size in cells.
    pub fn mean_zone_cells(&self) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        self.zones.iter().map(|z| z.len()).sum::<usize>() as f64 / self.zones.len() as f64
    }
}

/// Radius sweep: `zones_per_radius` disk zones at each radius.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusSweep {
    /// Radii in meters (the paper's x-axis).
    pub radii_m: Vec<f64>,
    /// Zones sampled per radius.
    pub zones_per_radius: usize,
}

impl Default for RadiusSweep {
    fn default() -> Self {
        RadiusSweep {
            // 20 m contact tracing up to ~2 km public-safety events; with
            // ~300 m cells this spans 1-cell to ~150-cell zones.
            radii_m: vec![
                20.0, 50.0, 100.0, 200.0, 300.0, 500.0, 750.0, 1_000.0, 1_500.0, 2_000.0,
            ],
            zones_per_radius: 50,
        }
    }
}

impl RadiusSweep {
    /// Generates one workload per radius.
    pub fn generate<R: Rng>(&self, sampler: &ZoneSampler, rng: &mut R) -> Vec<Workload> {
        self.radii_m
            .iter()
            .map(|&r| Workload {
                label: format!("r={r:.0}m"),
                zones: sampler.sample_zones(r, self.zones_per_radius, rng),
            })
            .collect()
    }
}

/// Mixed workload: a fraction of short-radius (compact, contact-tracing
/// style) zones and the rest long-radius (§7.2: "W1 (90% short-10% long);
/// W2 (75%-25%); W3 (25%-75%); W4 (10%-90%)").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedWorkload {
    /// Workload label (`"W1"`…).
    pub label: String,
    /// Fraction of short zones in [0, 1].
    pub short_fraction: f64,
    /// Short radius in meters (paper: 20 m).
    pub short_radius_m: f64,
    /// Long radius in meters (paper: 300 m).
    pub long_radius_m: f64,
    /// Total zones.
    pub count: usize,
}

impl MixedWorkload {
    /// The paper's four mixes with 20 m / 300 m radii.
    pub fn paper_mixes(count: usize) -> Vec<MixedWorkload> {
        [("W1", 0.90), ("W2", 0.75), ("W3", 0.25), ("W4", 0.10)]
            .iter()
            .map(|(label, frac)| MixedWorkload {
                label: label.to_string(),
                short_fraction: *frac,
                short_radius_m: 20.0,
                long_radius_m: 300.0,
                count,
            })
            .collect()
    }

    /// Generates the workload (short zones first is avoided by sampling
    /// the mix per zone, matching a random arrival order).
    pub fn generate<R: Rng>(&self, sampler: &ZoneSampler, rng: &mut R) -> Workload {
        let zones = (0..self.count)
            .map(|_| {
                let radius = if rng.gen::<f64>() < self.short_fraction {
                    self.short_radius_m
                } else {
                    self.long_radius_m
                };
                sampler.sample_zone(radius, rng)
            })
            .collect();
        Workload {
            label: self.label.clone(),
            zones,
        }
    }
}

/// One subscription-lifecycle event in a churn epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new (or returning) user subscribes at `cell`.
    Subscribe {
        /// The user.
        user_id: u64,
        /// The cell they subscribe at.
        cell: usize,
    },
    /// An active user moves: re-subscribes at a different cell (the SP
    /// must replace the old ciphertext).
    Move {
        /// The user.
        user_id: u64,
        /// The cell they move to.
        cell: usize,
    },
    /// An active user leaves the service.
    Unsubscribe {
        /// The user.
        user_id: u64,
    },
}

/// One epoch of a churn workload: the lifecycle events to apply, then one
/// alert to issue.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEpoch {
    /// Lifecycle events, in application order.
    pub events: Vec<ChurnEvent>,
    /// The epoch's alert zone (cell indices).
    pub alert_cells: Vec<usize>,
}

impl ChurnEvent {
    /// The user the event concerns.
    pub fn user_id(&self) -> u64 {
        match *self {
            ChurnEvent::Subscribe { user_id, .. }
            | ChurnEvent::Move { user_id, .. }
            | ChurnEvent::Unsubscribe { user_id } => user_id,
        }
    }
}

impl ChurnEpoch {
    /// Partitions the epoch's events into `writers` disjoint streams
    /// keyed by user id — the **churn-while-matching** workload shape:
    /// each stream is replayed by one writer thread while the epoch's
    /// alert is being matched concurrently.
    ///
    /// All of a user's events land in the same stream, in their original
    /// order, so any interleaving of the streams is a valid lifecycle
    /// history (no subscribe/unsubscribe reordering across threads) and
    /// the final store state is interleaving-independent. Deterministic;
    /// streams may be empty when the epoch has fewer active users than
    /// writers.
    ///
    /// # Panics
    /// Panics if `writers == 0`.
    pub fn writer_streams(&self, writers: usize) -> Vec<Vec<ChurnEvent>> {
        assert!(writers > 0, "at least one writer stream required");
        let mut streams = vec![Vec::new(); writers];
        for event in &self.events {
            streams[(event.user_id() % writers as u64) as usize].push(*event);
        }
        streams
    }
}

/// A multi-epoch subscription-churn workload: users move, leave and
/// return across epochs while alerts keep firing — the long-lived regime
/// of the paper's system model (§2.2) that the one-shot radius sweeps
/// above do not exercise. Drives the lifecycle integration tests and the
/// `churn` bench group.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnWorkload {
    /// Label used in result tables.
    pub label: String,
    /// The epochs, in order.
    pub epochs: Vec<ChurnEpoch>,
}

impl ChurnWorkload {
    /// Plaintext ground truth: each live user's cell after applying every
    /// event of epochs `0..=epoch_index`, sorted by user id. Lets a
    /// consumer check encrypted matching against reality without keeping
    /// its own mirror.
    pub fn positions_after(&self, epoch_index: usize) -> Vec<(u64, usize)> {
        let mut positions = std::collections::BTreeMap::new();
        for epoch in &self.epochs[..=epoch_index] {
            for event in &epoch.events {
                match *event {
                    ChurnEvent::Subscribe { user_id, cell }
                    | ChurnEvent::Move { user_id, cell } => {
                        positions.insert(user_id, cell);
                    }
                    ChurnEvent::Unsubscribe { user_id } => {
                        positions.remove(&user_id);
                    }
                }
            }
        }
        positions.into_iter().collect()
    }

    /// Total number of lifecycle events across all epochs.
    pub fn n_events(&self) -> usize {
        self.epochs.iter().map(|e| e.events.len()).sum()
    }
}

/// Generator parameters for [`ChurnWorkload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Size of the initial population (user ids `0..users`).
    pub users: u64,
    /// Number of epochs after the initial subscription wave.
    pub epochs: usize,
    /// Per-epoch probability that an active user moves to a new cell.
    pub move_fraction: f64,
    /// Per-epoch probability that an active user unsubscribes.
    pub unsubscribe_fraction: f64,
    /// Per-epoch probability that a departed user re-subscribes.
    pub resubscribe_fraction: f64,
    /// Radius of each epoch's alert zone, in meters.
    pub alert_radius_m: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            users: 40,
            epochs: 5,
            move_fraction: 0.30,
            unsubscribe_fraction: 0.10,
            resubscribe_fraction: 0.50,
            alert_radius_m: 600.0,
        }
    }
}

impl ChurnConfig {
    /// Generates the workload: epoch 0 subscribes the whole population,
    /// every later epoch mixes moves / unsubscribes / re-subscriptions
    /// (cells drawn from the sampler's popularity surface) and carries
    /// one alert zone. Deterministic for a seeded `rng`.
    pub fn generate<R: Rng>(&self, sampler: &ZoneSampler, rng: &mut R) -> ChurnWorkload {
        let mut active = vec![true; self.users as usize];
        let mut epochs = Vec::with_capacity(self.epochs + 1);

        let initial: Vec<ChurnEvent> = (0..self.users)
            .map(|user_id| ChurnEvent::Subscribe {
                user_id,
                cell: sampler.sample_epicenter_cell(rng).0,
            })
            .collect();
        epochs.push(ChurnEpoch {
            events: initial,
            alert_cells: sampler.sample_zone(self.alert_radius_m, rng).cell_indices(),
        });

        for _ in 0..self.epochs {
            let mut events = Vec::new();
            for user_id in 0..self.users {
                let idx = user_id as usize;
                if active[idx] {
                    let draw: f64 = rng.gen();
                    if draw < self.unsubscribe_fraction {
                        active[idx] = false;
                        events.push(ChurnEvent::Unsubscribe { user_id });
                    } else if draw < self.unsubscribe_fraction + self.move_fraction {
                        events.push(ChurnEvent::Move {
                            user_id,
                            cell: sampler.sample_epicenter_cell(rng).0,
                        });
                    }
                } else if rng.gen::<f64>() < self.resubscribe_fraction {
                    active[idx] = true;
                    events.push(ChurnEvent::Subscribe {
                        user_id,
                        cell: sampler.sample_epicenter_cell(rng).0,
                    });
                }
            }
            epochs.push(ChurnEpoch {
                events,
                alert_cells: sampler.sample_zone(self.alert_radius_m, rng).cell_indices(),
            });
        }

        ChurnWorkload {
            label: format!("churn-u{}-e{}", self.users, self.epochs),
            epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sla_grid::{Grid, ProbabilityMap};

    fn sampler() -> ZoneSampler {
        let grid = Grid::chicago_downtown_32();
        let pm = ProbabilityMap::uniform(grid.n_cells());
        ZoneSampler::new(grid, &pm)
    }

    #[test]
    fn sweep_zone_sizes_grow_with_radius() {
        let s = sampler();
        let mut rng = StdRng::seed_from_u64(3);
        let workloads = RadiusSweep::default().generate(&s, &mut rng);
        assert_eq!(workloads.len(), 10);
        let sizes: Vec<f64> = workloads.iter().map(|w| w.mean_zone_cells()).collect();
        // 20 m zones are single-cell; 2 km zones span dozens of cells.
        assert!(sizes[0] >= 1.0 && sizes[0] < 1.5, "20m mean {}", sizes[0]);
        assert!(sizes[9] > 20.0, "2km mean {}", sizes[9]);
        // monotone (with slack for sampling noise)
        for w in sizes.windows(2) {
            assert!(w[1] >= w[0] * 0.9, "sizes should grow: {sizes:?}");
        }
    }

    #[test]
    fn mixed_workload_fractions() {
        let s = sampler();
        let mixes = MixedWorkload::paper_mixes(400);
        assert_eq!(mixes.len(), 4);
        let mut rng = StdRng::seed_from_u64(4);
        let w1 = mixes[0].generate(&s, &mut rng);
        let w4 = mixes[3].generate(&s, &mut rng);
        // W1 is mostly small zones; W4 mostly large.
        assert!(w1.mean_zone_cells() < w4.mean_zone_cells());
        assert_eq!(w1.zones.len(), 400);
    }

    #[test]
    fn churn_workload_is_seeded_and_consistent() {
        let s = sampler();
        let config = ChurnConfig::default();
        let a = config.generate(&s, &mut StdRng::seed_from_u64(11));
        let b = config.generate(&s, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b, "seeded generation must be deterministic");

        assert_eq!(a.epochs.len(), config.epochs + 1);
        assert_eq!(a.epochs[0].events.len(), config.users as usize);
        assert!(a.n_events() >= config.users as usize);
        for epoch in &a.epochs {
            assert!(
                !epoch.alert_cells.is_empty(),
                "every epoch carries an alert"
            );
        }

        // Ground truth stays within the population and the grid, and
        // churn actually changes it.
        let first = a.positions_after(0);
        assert_eq!(first.len(), config.users as usize);
        let last = a.positions_after(a.epochs.len() - 1);
        assert!(!last.is_empty());
        assert_ne!(first, last, "churn should move the population");
        for &(user, cell) in &last {
            assert!(user < config.users);
            assert!(cell < Grid::chicago_downtown_32().n_cells());
        }
    }

    #[test]
    fn churn_events_respect_lifecycle_state() {
        // No Move/Unsubscribe for inactive users, no Subscribe for active
        // ones — replay and check.
        let s = sampler();
        let w = ChurnConfig {
            users: 25,
            epochs: 8,
            ..ChurnConfig::default()
        }
        .generate(&s, &mut StdRng::seed_from_u64(5));
        let mut active = std::collections::HashSet::new();
        for epoch in &w.epochs {
            for event in &epoch.events {
                match *event {
                    ChurnEvent::Subscribe { user_id, .. } => {
                        assert!(active.insert(user_id), "subscribe of active user {user_id}");
                    }
                    ChurnEvent::Move { user_id, .. } => {
                        assert!(active.contains(&user_id), "move of inactive user {user_id}");
                    }
                    ChurnEvent::Unsubscribe { user_id } => {
                        assert!(active.remove(&user_id), "unsubscribe of inactive {user_id}");
                    }
                }
            }
        }
    }

    #[test]
    fn writer_streams_partition_events_and_preserve_per_user_order() {
        let s = sampler();
        let w = ChurnConfig {
            users: 30,
            epochs: 6,
            ..ChurnConfig::default()
        }
        .generate(&s, &mut StdRng::seed_from_u64(21));
        for epoch in &w.epochs {
            for writers in [1, 3, 4, 7] {
                let streams = epoch.writer_streams(writers);
                assert_eq!(streams.len(), writers);
                // Partition: every event lands in exactly one stream, and
                // concatenating streams loses nothing.
                let total: usize = streams.iter().map(Vec::len).sum();
                assert_eq!(total, epoch.events.len());
                for (i, stream) in streams.iter().enumerate() {
                    for event in stream {
                        assert_eq!(
                            (event.user_id() % writers as u64) as usize,
                            i,
                            "event routed to the wrong stream"
                        );
                    }
                }
                // Per-user order within a stream matches the epoch order.
                for stream in &streams {
                    for user in stream.iter().map(ChurnEvent::user_id) {
                        let original: Vec<ChurnEvent> = epoch
                            .events
                            .iter()
                            .filter(|e| e.user_id() == user)
                            .copied()
                            .collect();
                        let streamed: Vec<ChurnEvent> = stream
                            .iter()
                            .filter(|e| e.user_id() == user)
                            .copied()
                            .collect();
                        assert_eq!(original, streamed);
                    }
                }
                // Determinism.
                assert_eq!(streams, epoch.writer_streams(writers));
            }
        }
    }

    #[test]
    fn workloads_are_seeded_deterministic() {
        let s = sampler();
        let sweep = RadiusSweep {
            radii_m: vec![100.0, 500.0],
            zones_per_radius: 5,
        };
        let a = sweep.generate(&s, &mut StdRng::seed_from_u64(9));
        let b = sweep.generate(&s, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
