//! Synthetic Chicago crime dataset (CLEAR-2015 stand-in).
//!
//! A seeded spatio-temporal point process: each category draws incidents
//! from a mixture of Gaussian hotspots with monthly seasonality, scaled to
//! volumes of the same order as the 2015 CLEAR extract the paper uses.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sla_grid::{BoundingBox, CellId, Grid, Point};

/// The four crime categories the paper selects (§7: "homicide, sexual
/// assault, sex offense, and kidnapping").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrimeCategory {
    /// Homicide.
    Homicide,
    /// Criminal sexual assault.
    SexualAssault,
    /// Sex offense.
    SexOffense,
    /// Kidnapping.
    Kidnapping,
}

impl CrimeCategory {
    /// All categories, in reporting order.
    pub const ALL: [CrimeCategory; 4] = [
        CrimeCategory::Homicide,
        CrimeCategory::SexualAssault,
        CrimeCategory::SexOffense,
        CrimeCategory::Kidnapping,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CrimeCategory::Homicide => "homicide",
            CrimeCategory::SexualAssault => "sexual-assault",
            CrimeCategory::SexOffense => "sex-offense",
            CrimeCategory::Kidnapping => "kidnapping",
        }
    }

    /// Approximate 2015 city-wide incident volume (order-of-magnitude
    /// match to the CLEAR extract).
    fn annual_volume(&self) -> usize {
        match self {
            CrimeCategory::Homicide => 480,
            CrimeCategory::SexualAssault => 1_430,
            CrimeCategory::SexOffense => 1_050,
            CrimeCategory::Kidnapping => 210,
        }
    }

    /// Mild summer-peaking seasonality (weight per month, 1-indexed).
    fn seasonality(&self, month: u8) -> f64 {
        let phase = (month as f64 - 7.0) / 12.0 * std::f64::consts::TAU;
        1.0 + 0.25 * phase.cos()
    }
}

/// A single incident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrimeIncident {
    /// Category.
    pub category: CrimeCategory,
    /// Location.
    pub location: Point,
    /// Month 1..=12 of 2015.
    pub month: u8,
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrimeGeneratorConfig {
    /// Spatial domain; defaults to the central-Chicago district so the
    /// alert radii of §7 span one to a few grid cells.
    pub bbox: BoundingBox,
    /// Hotspots per category.
    pub hotspots_per_category: usize,
    /// Hotspot standard deviation in degrees (~0.01° ≈ 1.1 km).
    pub hotspot_sigma_deg: f64,
    /// Fraction of incidents drawn uniformly over the box (background
    /// noise floor).
    pub background_fraction: f64,
    /// Scales all annual volumes (1.0 = CLEAR-like).
    pub volume_scale: f64,
}

impl Default for CrimeGeneratorConfig {
    fn default() -> Self {
        CrimeGeneratorConfig {
            bbox: BoundingBox::chicago_downtown(),
            hotspots_per_category: 6,
            hotspot_sigma_deg: 0.004,
            background_fraction: 0.15,
            volume_scale: 1.0,
        }
    }
}

/// The generated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrimeDataset {
    /// All incidents, in generation order.
    pub incidents: Vec<CrimeIncident>,
    /// The spatial domain incidents were drawn from.
    pub bbox: BoundingBox,
}

/// Approximate standard normal sampler (Box–Muller).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl CrimeDataset {
    /// Generates the dataset. Deterministic for a seeded `rng`.
    pub fn generate<R: Rng>(config: &CrimeGeneratorConfig, rng: &mut R) -> Self {
        let mut incidents = Vec::new();
        let bbox = config.bbox;
        let lat_span = bbox.max_lat - bbox.min_lat;
        let lon_span = bbox.max_lon - bbox.min_lon;

        for category in CrimeCategory::ALL {
            // Category-specific hotspot mixture with unequal weights so the
            // resulting surface is skewed (popular areas dominate).
            let hotspots: Vec<(Point, f64)> = (0..config.hotspots_per_category)
                .map(|k| {
                    let p = Point::new(
                        bbox.min_lat + rng.gen::<f64>() * lat_span,
                        bbox.min_lon + rng.gen::<f64>() * lon_span,
                    );
                    (p, 1.0 / (k as f64 + 1.0))
                })
                .collect();
            let weight_total: f64 = hotspots.iter().map(|h| h.1).sum();

            // Month weights from seasonality.
            let month_weights: Vec<f64> = (1..=12).map(|m| category.seasonality(m)).collect();
            let month_total: f64 = month_weights.iter().sum();

            let volume = (category.annual_volume() as f64 * config.volume_scale).round() as usize;
            for _ in 0..volume {
                // month ~ seasonality
                let mut pick = rng.gen::<f64>() * month_total;
                let mut month = 12u8;
                for (i, w) in month_weights.iter().enumerate() {
                    if pick < *w {
                        month = i as u8 + 1;
                        break;
                    }
                    pick -= w;
                }

                // location: hotspot mixture or uniform background
                let location = if rng.gen::<f64>() < config.background_fraction {
                    Point::new(
                        bbox.min_lat + rng.gen::<f64>() * lat_span,
                        bbox.min_lon + rng.gen::<f64>() * lon_span,
                    )
                } else {
                    let mut pick = rng.gen::<f64>() * weight_total;
                    let mut chosen = hotspots[0].0;
                    for (p, w) in &hotspots {
                        if pick < *w {
                            chosen = *p;
                            break;
                        }
                        pick -= w;
                    }
                    // rejection-sample inside the box
                    loop {
                        let p = Point::new(
                            chosen.lat + gaussian(rng) * config.hotspot_sigma_deg,
                            chosen.lon + gaussian(rng) * config.hotspot_sigma_deg,
                        );
                        if bbox.contains(&p) {
                            break p;
                        }
                    }
                };

                incidents.push(CrimeIncident {
                    category,
                    location,
                    month,
                });
            }
        }

        CrimeDataset { incidents, bbox }
    }

    /// Total incidents.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Fig. 8-style statistics: incidents per (category, month).
    pub fn monthly_counts(&self) -> Vec<(CrimeCategory, [usize; 12])> {
        CrimeCategory::ALL
            .iter()
            .map(|&cat| {
                let mut months = [0usize; 12];
                for inc in self.incidents.iter().filter(|i| i.category == cat) {
                    months[inc.month as usize - 1] += 1;
                }
                (cat, months)
            })
            .collect()
    }

    /// Per-cell incident counts for one category over a month range
    /// (inclusive), on `grid`.
    pub fn cell_counts(
        &self,
        grid: &Grid,
        category: CrimeCategory,
        months: std::ops::RangeInclusive<u8>,
    ) -> Vec<u32> {
        let mut counts = vec![0u32; grid.n_cells()];
        for inc in &self.incidents {
            if inc.category == category && months.contains(&inc.month) {
                if let Some(CellId(c)) = grid.cell_of(&inc.location) {
                    counts[c] += 1;
                }
            }
        }
        counts
    }

    /// Per-cell counts across all categories.
    pub fn cell_counts_total(&self, grid: &Grid, months: std::ops::RangeInclusive<u8>) -> Vec<u32> {
        let mut counts = vec![0u32; grid.n_cells()];
        for inc in &self.incidents {
            if months.contains(&inc.month) {
                if let Some(CellId(c)) = grid.cell_of(&inc.location) {
                    counts[c] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> CrimeDataset {
        CrimeDataset::generate(
            &CrimeGeneratorConfig::default(),
            &mut StdRng::seed_from_u64(2015),
        )
    }

    #[test]
    fn volumes_match_configuration() {
        let ds = dataset();
        let counts = ds.monthly_counts();
        let totals: Vec<usize> = counts.iter().map(|(_, m)| m.iter().sum()).collect();
        assert_eq!(totals, vec![480, 1_430, 1_050, 210]);
        assert_eq!(ds.len(), 480 + 1_430 + 1_050 + 210);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a, b);
    }

    #[test]
    fn incidents_inside_bbox() {
        let ds = dataset();
        assert!(ds.incidents.iter().all(|i| ds.bbox.contains(&i.location)));
        assert!(ds.incidents.iter().all(|i| (1..=12).contains(&i.month)));
    }

    #[test]
    fn seasonality_peaks_in_summer() {
        let ds = dataset();
        let counts = ds.monthly_counts();
        // Sum across categories; July (index 6) should beat January.
        let total_by_month: Vec<usize> = (0..12)
            .map(|m| counts.iter().map(|(_, months)| months[m]).sum())
            .collect();
        assert!(
            total_by_month[6] > total_by_month[0],
            "July {} should exceed January {}",
            total_by_month[6],
            total_by_month[0]
        );
    }

    #[test]
    fn spatial_distribution_is_clustered() {
        // Hotspot mixture: the busiest cells hold far more than the mean.
        let ds = dataset();
        let grid = Grid::chicago_downtown_32();
        let counts = ds.cell_counts_total(&grid, 1..=12);
        let total: u32 = counts.iter().sum();
        let max = *counts.iter().max().unwrap();
        let mean = total as f64 / counts.len() as f64;
        assert!(
            max as f64 > 8.0 * mean,
            "max {max} should be ≫ mean {mean:.1}"
        );
    }

    #[test]
    fn category_and_month_filters() {
        let ds = dataset();
        let grid = Grid::chicago_downtown_32();
        let homicide_all = ds.cell_counts(&grid, CrimeCategory::Homicide, 1..=12);
        let homicide_dec = ds.cell_counts(&grid, CrimeCategory::Homicide, 12..=12);
        let sum_all: u32 = homicide_all.iter().sum();
        let sum_dec: u32 = homicide_dec.iter().sum();
        assert!(sum_dec < sum_all);
        assert_eq!(sum_all, 480);
    }

    #[test]
    fn volume_scale() {
        let cfg = CrimeGeneratorConfig {
            volume_scale: 0.1,
            ..CrimeGeneratorConfig::default()
        };
        let ds = CrimeDataset::generate(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(ds.len(), 48 + 143 + 105 + 21);
    }
}
