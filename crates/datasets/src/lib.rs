//! # sla-datasets
//!
//! Dataset substrate for the paper's evaluation (§7).
//!
//! The real-data experiments use the Chicago Police Department CLEAR crime
//! extract for 2015 (four categories: homicide, sexual assault, sex
//! offense, kidnapping) overlaid with a 32×32 grid, and a logistic
//! regression trained on January–November that predicts per-cell alert
//! likelihoods for December (92.9 % accuracy in the paper).
//!
//! The proprietary extract cannot be shipped, so this crate builds the
//! closest synthetic equivalent (see DESIGN.md §5):
//!
//! * [`crime`] — a seeded spatio-temporal point process over the Chicago
//!   bounding box with per-category hotspot mixtures, realistic annual
//!   volumes and monthly seasonality; reproduces the Fig. 8 statistics
//!   table structurally.
//! * [`logreg`] — from-scratch logistic regression (standardized features,
//!   batch gradient descent) trained with the same protocol, producing the
//!   per-cell likelihood surface the encoders consume.
//! * [`workload`] — the paper's alert workloads: radius sweeps (Fig. 9/10),
//!   mixed short/long workloads W1–W4 (Fig. 11), and multi-epoch
//!   subscription-churn workloads for the service lifecycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crime;
pub mod logreg;
pub mod workload;

pub use crime::{CrimeCategory, CrimeDataset, CrimeGeneratorConfig, CrimeIncident};
pub use logreg::{CrimeRiskModel, LogisticRegression, TrainConfig};
pub use workload::{
    ChurnConfig, ChurnEpoch, ChurnEvent, ChurnWorkload, MixedWorkload, RadiusSweep, Workload,
};
