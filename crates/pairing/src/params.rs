//! Group parameter generation: the composite modulus `N = P · Q`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use sla_bigint::{gen_prime, BigUint};

/// Public parameters of a composite-order bilinear group.
///
/// `P` and `Q` are equal-bit-length primes and `N = P · Q` is the group
/// order, mirroring the setup of Boneh–Waters (TCC 2007) referenced by the
/// paper (§2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupParams {
    /// Prime factor `P` (the "payload" subgroup order in HVE).
    pub p: BigUint,
    /// Prime factor `Q` (the "blinding" subgroup order in HVE).
    pub q: BigUint,
    /// Composite group order `N = P · Q`.
    pub n: BigUint,
}

impl GroupParams {
    /// Generates fresh parameters with `bits`-bit prime factors.
    ///
    /// 64–128 bits per prime is plenty for simulation and testing; a
    /// deployment-grade configuration would use ≥ 512-bit factors (the
    /// paper's §6 discusses 128-bit security via modern curves).
    ///
    /// # Panics
    /// Panics if `bits < 8`.
    pub fn generate<R: Rng>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 8, "prime factors below 8 bits are degenerate");
        let p = gen_prime(bits, rng);
        let q = loop {
            let q = gen_prime(bits, rng);
            if q != p {
                break q;
            }
        };
        let n = &p * &q;
        GroupParams { p, q, n }
    }

    /// Constructs parameters from known factors (used in tests).
    ///
    /// # Panics
    /// Panics if `p == q` or either factor is < 2.
    pub fn from_factors(p: BigUint, q: BigUint) -> Self {
        assert!(p != q, "P and Q must be distinct");
        assert!(p >= BigUint::from_u64(2) && q >= BigUint::from_u64(2));
        let n = &p * &q;
        GroupParams { p, q, n }
    }

    /// Bit length of the composite order `N`.
    pub fn order_bits(&self) -> usize {
        self.n.bit_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_produces_distinct_primes() {
        let mut rng = StdRng::seed_from_u64(42);
        let params = GroupParams::generate(48, &mut rng);
        assert_ne!(params.p, params.q);
        assert_eq!(params.n, &params.p * &params.q);
        assert_eq!(params.p.bit_len(), 48);
        assert_eq!(params.q.bit_len(), 48);
        assert_eq!(params.order_bits(), 96);
    }

    #[test]
    fn from_factors_checks_distinctness() {
        let p = BigUint::from_u64(1_000_000_007);
        let q = BigUint::from_u64(998_244_353);
        let params = GroupParams::from_factors(p.clone(), q.clone());
        assert_eq!(params.n, &p * &q);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn equal_factors_rejected() {
        let p = BigUint::from_u64(101);
        GroupParams::from_factors(p.clone(), p);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(43);
        let params = GroupParams::generate(32, &mut rng);
        let json = serde_json::to_string(&params).unwrap();
        let back: GroupParams = serde_json::from_str(&json).unwrap();
        assert_eq!(params, back);
    }
}
