//! Wall-clock cost model for the simulated pairing.
//!
//! The exponent-representation pairing is a single modular multiplication,
//! orders of magnitude cheaper than a real Miller loop + final
//! exponentiation. When benchmarks should *time* like a curve-backed
//! engine, [`CostModel::Calibrated`] injects a configurable amount of extra
//! modular work per pairing. Operation *counts* are identical either way.

use sla_bigint::{BigUint, Reducer};

/// How much synthetic work each pairing performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Pairings are a single modular multiplication; rely on [`super::OpCounters`]
    /// for cost comparisons. This is the default and what the figure
    /// experiments use (the paper reports operation counts, not seconds).
    #[default]
    CountOnly,
    /// Each pairing additionally performs `modmuls_per_pairing` modular
    /// squarings on a scratch value, approximating the relative cost of a
    /// real pairing (a BN-curve pairing costs on the order of 10^4 modular
    /// multiplications).
    Calibrated {
        /// Extra modular squarings executed per pairing.
        modmuls_per_pairing: u32,
    },
}

impl CostModel {
    /// Performs the synthetic work mandated by the model, squaring inside
    /// the engine's residue domain so calibrated runs exercise the same
    /// arithmetic (one reduction pass per product) as real pairings.
    pub(crate) fn burn(&self, seed: &BigUint, reducer: &Reducer) {
        if let CostModel::Calibrated {
            modmuls_per_pairing,
        } = self
        {
            let mut x = seed.clone();
            for _ in 0..*modmuls_per_pairing {
                x = reducer.residue_mul(&x, &x);
            }
            std::hint::black_box(&x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_only_is_free() {
        let n = BigUint::from_u64(101);
        CostModel::CountOnly.burn(&BigUint::from_u64(7), &Reducer::new(&n).unwrap());
    }

    #[test]
    fn calibrated_executes() {
        let n = BigUint::from_u64(1_000_000_007);
        CostModel::Calibrated {
            modmuls_per_pairing: 16,
        }
        .burn(&BigUint::from_u64(7), &Reducer::new(&n).unwrap());
    }

    #[test]
    fn default_is_count_only() {
        assert_eq!(CostModel::default(), CostModel::CountOnly);
    }
}
