//! Fixed-base exponentiation precomputation for the simulated group.
//!
//! In the exponent representation a group exponentiation `a^e` is the
//! *log-domain scalar product* `log(a)·e mod N` — a single modular
//! multiplication, not a square-and-multiply ladder. The radix-2^w power
//! tables of [`sla_bigint::FixedBaseTable`] are therefore the wrong shape
//! at this layer (a chain of `bits/w` dependent table additions costs
//! more than one two-limb product); the profitable per-base
//! precomputation is the Montgomery *double-lift*:
//!
//! ```text
//! mul_ready = log(a) · R² mod N        (one-time, per base)
//! a^e       = mont_mul(mul_ready, e) = (log(a)·e) · R mod N
//! ```
//!
//! — **one** CIOS pass per exponentiation, landing directly in the
//! residue domain, versus the generic path's two (exponent conversion
//! plus domain product). Under a Barrett reducer (even orders, canonical
//! domain) the same shape degenerates gracefully: `mul_ready` is the
//! canonical log and the product is one Barrett reduction.
//!
//! [`SimulatedGroup`](crate::SimulatedGroup) builds a [`FixedBaseMul`]
//! for its four fixed generators (`g`, `g_p`, `g_q`, `gt`) at
//! construction, and hands them out for arbitrary bases — HVE key
//! material, typically — through
//! [`BilinearGroup::prepare_g`](crate::BilinearGroup::prepare_g).

use crate::{GElem, GtElem};
use sla_bigint::{BigUint, Reducer};
use std::borrow::Cow;
use std::sync::Arc;

/// Per-base precomputation mapping an exponent to the base's power with a
/// single reduction pass.
#[derive(Debug, Clone)]
pub(crate) struct FixedBaseMul {
    ctx: Arc<Reducer>,
    /// Residue-domain image of the base log (for base identification and
    /// as the value the exponent `1` must map back to).
    base_res: BigUint,
    /// `log(a)·R² mod N` under Montgomery reducers (so one `mont_mul`
    /// against a canonical exponent yields the residue-domain power);
    /// the canonical log under Barrett reducers.
    mul_ready: BigUint,
}

impl FixedBaseMul {
    /// Builds the precomputation for `base_res` (residue form).
    pub(crate) fn new(ctx: Arc<Reducer>, base_res: BigUint) -> Self {
        // Lifting the residue once more through the domain map gives
        // log·R² (Montgomery) or the canonical log (Barrett) — exactly
        // the left operand that makes `residue_mul(·, e)` a one-pass
        // exponentiation.
        let mul_ready = ctx.to_residue(&base_res);
        FixedBaseMul {
            ctx,
            base_res,
            mul_ready,
        }
    }

    /// The residue-domain base log (for table-hit identification).
    pub(crate) fn base_res(&self) -> &BigUint {
        &self.base_res
    }

    /// The reduction context the precomputation was built for.
    pub(crate) fn ctx(&self) -> &Reducer {
        &self.ctx
    }

    /// Residue of `log(base) · e mod N` — one reduction pass.
    pub(crate) fn scalar_mul(&self, e: &BigUint) -> BigUint {
        let (l, r) = self.scalar_mul_operands(e);
        self.ctx.residue_mul(&l, &r)
    }

    /// The `(left, right)` operand pair whose single domain product *is*
    /// [`FixedBaseMul::scalar_mul`]. Batch exponentiation gathers one
    /// pair per element and hands the whole slice to
    /// [`Reducer::residue_mul_batch`], so N prepared exponentiations
    /// advance in lockstep through the SIMD kernels while staying
    /// byte-identical to N serial `scalar_mul` calls.
    pub(crate) fn scalar_mul_operands<'a>(
        &'a self,
        e: &'a BigUint,
    ) -> (Cow<'a, BigUint>, Cow<'a, BigUint>) {
        let n = self.ctx.modulus();
        let e = if e < n {
            Cow::Borrowed(e)
        } else {
            // log·e ≡ log·(e mod N); oversized exponents are cold-path.
            Cow::Owned(e % n)
        };
        (Cow::Borrowed(&self.mul_ready), e)
    }
}

/// A base in `G` prepared for repeated exponentiation.
///
/// Obtained from [`BilinearGroup::prepare_g`](crate::BilinearGroup::prepare_g);
/// engines that precompute (the simulated engine does) attach a
/// `FixedBaseMul` table, others fall back to the plain element. Exponentiating
/// through a prepared base is metered exactly like
/// [`pow_g`](crate::BilinearGroup::pow_g).
#[derive(Debug, Clone)]
pub struct PreparedG {
    pub(crate) base: GElem,
    pub(crate) table: Option<FixedBaseMul>,
}

/// A base in `GT` prepared for repeated exponentiation (see [`PreparedG`]).
#[derive(Debug, Clone)]
pub struct PreparedGt {
    pub(crate) base: GtElem,
    pub(crate) table: Option<FixedBaseMul>,
}

impl PreparedG {
    /// Wraps a base without precomputation (the trait-default fallback).
    pub fn unprepared(base: GElem) -> Self {
        PreparedG { base, table: None }
    }

    /// The underlying base element.
    pub fn base(&self) -> &GElem {
        &self.base
    }
}

impl PreparedGt {
    /// Wraps a base without precomputation (the trait-default fallback).
    pub fn unprepared(base: GtElem) -> Self {
        PreparedGt { base, table: None }
    }

    /// The underlying base element.
    pub fn base(&self) -> &GtElem {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: u64) -> Arc<Reducer> {
        Arc::new(Reducer::new(&BigUint::from_u64(n)).expect("modulus > 1"))
    }

    #[test]
    fn scalar_mul_matches_mod_mul() {
        let ctx = fixture(0xffff_ffff_0000_0001);
        let n = ctx.modulus().clone();
        for base in [0u64, 1, 2, 0xdead_beef, 0xffff_ffff_0000_0000] {
            let b = BigUint::from_u64(base);
            let fixed = FixedBaseMul::new(ctx.clone(), ctx.to_residue(&b));
            for e in [0u64, 1, 15, 16, 0xcafe_babe, u64::MAX] {
                let e = BigUint::from_u64(e);
                let got = ctx.from_residue(&fixed.scalar_mul(&e));
                assert_eq!(got, b.mod_mul(&e, &n), "base = {base}, e = {e}");
            }
        }
    }

    #[test]
    fn oversized_exponents_fold_modulo_n() {
        let ctx = fixture(1_000_003);
        let b = BigUint::from_u64(777);
        let fixed = FixedBaseMul::new(ctx.clone(), ctx.to_residue(&b));
        let huge = BigUint::one().shl_bits(300);
        assert_eq!(
            ctx.from_residue(&fixed.scalar_mul(&huge)),
            b.mod_mul(&huge, ctx.modulus())
        );
    }

    #[test]
    fn even_modulus_precomputation_works() {
        // Degenerate even group orders take the Barrett (canonical)
        // domain; the precomputation must behave identically.
        let ctx = fixture(1 << 20);
        let b = BigUint::from_u64(12345);
        let fixed = FixedBaseMul::new(ctx.clone(), ctx.to_residue(&b));
        for e in [0u64, 3, 1 << 19, (1 << 20) + 7] {
            let e = BigUint::from_u64(e);
            assert_eq!(
                ctx.from_residue(&fixed.scalar_mul(&e)),
                b.mod_mul(&e, ctx.modulus())
            );
        }
    }
}
