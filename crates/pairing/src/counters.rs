//! Thread-safe operation counters.
//!
//! The paper's performance metric is the *number of bilinear pairing
//! operations* executed during token matching (§7: "We use as performance
//! metric the number of HVE bilinear map pairing operations"). The counters
//! here let every experiment read that number directly off the engine, and
//! the test-suite cross-checks them against the analytic cost model.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of group operations performed by an engine.
#[derive(Debug, Default)]
pub struct OpCounters {
    pairings: AtomicU64,
    g_mults: AtomicU64,
    g_exps: AtomicU64,
    gt_mults: AtomicU64,
    gt_exps: AtomicU64,
    canonicalizations: AtomicU64,
}

impl OpCounters {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_pairing(&self) {
        self.pairings.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_pairings(&self, n: u64) {
        self.pairings.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn record_g_mult(&self) {
        self.g_mults.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_g_exp(&self) {
        self.g_exps.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_g_exps(&self, n: u64) {
        self.g_exps.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn record_gt_mult(&self) {
        self.gt_mults.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_gt_exp(&self) {
        self.gt_exps.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_gt_exps(&self, n: u64) {
        self.gt_exps.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn record_canonicalization(&self) {
        self.canonicalizations.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bilinear pairings evaluated so far.
    pub fn pairings(&self) -> u64 {
        self.pairings.load(Ordering::Relaxed)
    }

    /// Total multiplications in `G`.
    pub fn g_mults(&self) -> u64 {
        self.g_mults.load(Ordering::Relaxed)
    }

    /// Total exponentiations in `G`.
    pub fn g_exps(&self) -> u64 {
        self.g_exps.load(Ordering::Relaxed)
    }

    /// Total multiplications in `GT`.
    pub fn gt_mults(&self) -> u64 {
        self.gt_mults.load(Ordering::Relaxed)
    }

    /// Total exponentiations in `GT`.
    pub fn gt_exps(&self) -> u64 {
        self.gt_exps.load(Ordering::Relaxed)
    }

    /// Total residue-domain → canonical conversions requested through the
    /// engine (the `from_residue` passes a Montgomery-domain element pays
    /// when its canonical log is actually needed, e.g. message decoding).
    pub fn canonicalizations(&self) -> u64 {
        self.canonicalizations.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.pairings.store(0, Ordering::Relaxed);
        self.g_mults.store(0, Ordering::Relaxed);
        self.g_exps.store(0, Ordering::Relaxed);
        self.gt_mults.store(0, Ordering::Relaxed);
        self.gt_exps.store(0, Ordering::Relaxed);
        self.canonicalizations.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            pairings: self.pairings(),
            g_mults: self.g_mults(),
            g_exps: self.g_exps(),
            gt_mults: self.gt_mults(),
            gt_exps: self.gt_exps(),
            canonicalizations: self.canonicalizations(),
        }
    }
}

/// Immutable snapshot of [`OpCounters`]; subtracting two snapshots yields
/// the cost of the work between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Bilinear pairings.
    pub pairings: u64,
    /// Multiplications in `G`.
    pub g_mults: u64,
    /// Exponentiations in `G`.
    pub g_exps: u64,
    /// Multiplications in `GT`.
    pub gt_mults: u64,
    /// Exponentiations in `GT`.
    pub gt_exps: u64,
    /// Residue → canonical conversions.
    pub canonicalizations: u64,
}

impl std::ops::Sub for CounterSnapshot {
    type Output = CounterSnapshot;
    fn sub(self, rhs: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            pairings: self.pairings - rhs.pairings,
            g_mults: self.g_mults - rhs.g_mults,
            g_exps: self.g_exps - rhs.g_exps,
            gt_mults: self.gt_mults - rhs.gt_mults,
            gt_exps: self.gt_exps - rhs.gt_exps,
            canonicalizations: self.canonicalizations - rhs.canonicalizations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = OpCounters::new();
        c.record_pairing();
        c.record_pairing();
        c.record_g_exp();
        assert_eq!(c.pairings(), 2);
        assert_eq!(c.g_exps(), 1);
        let snap = c.snapshot();
        assert_eq!(snap.pairings, 2);
        c.reset();
        assert_eq!(c.pairings(), 0);
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let c = OpCounters::new();
        c.record_pairing();
        let before = c.snapshot();
        c.record_pairing();
        c.record_gt_mult();
        let delta = c.snapshot() - before;
        assert_eq!(delta.pairings, 1);
        assert_eq!(delta.gt_mults, 1);
        assert_eq!(delta.g_exps, 0);
    }
}
