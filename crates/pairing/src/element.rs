//! Group element wrappers.
//!
//! Elements carry their discrete logarithm with respect to the engine's
//! abstract generators (`g` for `G`, `gt = e(g,g)` for `GT`). The newtypes
//! prevent accidentally mixing `G` and `GT` values or treating exponents as
//! scalars; all arithmetic goes through the engine so operations are
//! counted.

use serde::{Deserialize, Serialize};
use sla_bigint::BigUint;

/// Element of the source group `G` (stored as `log_g`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GElem(pub(crate) BigUint);

/// Element of the target group `GT` (stored as `log_gt`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GtElem(pub(crate) BigUint);

impl GElem {
    /// The identity element `g^0`.
    pub fn identity() -> Self {
        GElem(BigUint::zero())
    }

    /// `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.0.is_zero()
    }

    /// Exposes the discrete logarithm. Only meaningful for the simulated
    /// backend; used by tests to verify algebraic identities.
    pub fn discrete_log(&self) -> &BigUint {
        &self.0
    }
}

impl GtElem {
    /// The identity element `gt^0`.
    pub fn identity() -> Self {
        GtElem(BigUint::zero())
    }

    /// `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.0.is_zero()
    }

    /// Exposes the discrete logarithm (simulation-only introspection).
    pub fn discrete_log(&self) -> &BigUint {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert!(GElem::identity().is_identity());
        assert!(GtElem::identity().is_identity());
        assert_eq!(GElem::identity().discrete_log(), &BigUint::zero());
    }

    #[test]
    fn serde_roundtrip() {
        let e = GElem(BigUint::from_u64(123456));
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<GElem>(&json).unwrap(), e);
    }
}
