//! Group element wrappers.
//!
//! Elements carry their discrete logarithm with respect to the engine's
//! abstract generators (`g` for `G`, `gt = e(g,g)` for `GT`). The newtypes
//! prevent accidentally mixing `G` and `GT` values or treating exponents as
//! scalars; all arithmetic goes through the engine so operations are
//! counted.
//!
//! ## Representation: Montgomery-domain logs, canonical boundary
//!
//! Engine-produced elements keep their log in the **residue domain** of
//! the group's shared [`Reducer`] (Montgomery form `x·R mod N` for the
//! odd composite orders the protocol uses), so chained group operations
//! never pay the two per-op domain-conversion passes the previous
//! canonical representation required — a pairing is now a *single* CIOS
//! pass. Conversion back to the canonical residue happens only at the
//! three boundaries:
//!
//! * [`GElem::discrete_log`] / [`GtElem::discrete_log`] (introspection),
//! * equality/hashing against elements in a different representation, and
//! * serde — the wire encoding is the canonical log's hex string, **byte
//!   identical** to the pre-refactor derived encoding, and deserialized
//!   elements start out canonical (the engine re-enters the domain on
//!   first use).
//!
//! Within one representation (same modulus ⇒ same `R`) the domain map is
//! a bijection, so residues compare directly without converting.

use serde::{Deserialize, Serialize};
use sla_bigint::{BigUint, Reducer};
use std::borrow::Cow;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A discrete logarithm in one of two representations.
#[derive(Debug, Clone)]
pub(crate) enum Log {
    /// Canonical residue in `[0, N)` (identity elements, deserialized
    /// material, and engine-less construction).
    Canonical(BigUint),
    /// Residue-domain value (`x·R mod N` for Montgomery reducers) plus
    /// the shared context that defines the domain.
    Residue {
        /// The domain image of the log.
        value: BigUint,
        /// The reducer whose modulus (and `R`) the value lives under.
        ctx: Arc<Reducer>,
    },
}

impl Log {
    /// The canonical (standard-form) log, converting if necessary.
    pub(crate) fn canonical(&self) -> Cow<'_, BigUint> {
        match self {
            Log::Canonical(v) => Cow::Borrowed(v),
            Log::Residue { value, ctx } => Cow::Owned(ctx.from_residue(value)),
        }
    }

    /// Zero is zero in every domain (`0·R = 0`), so the identity test
    /// needs no conversion.
    fn is_zero(&self) -> bool {
        match self {
            Log::Canonical(v) => v.is_zero(),
            Log::Residue { value, .. } => value.is_zero(),
        }
    }

    fn eq_log(&self, other: &Log) -> bool {
        match (self, other) {
            (Log::Canonical(a), Log::Canonical(b)) => a == b,
            // Same domain ⇒ the domain map is a bijection.
            (Log::Residue { value: a, ctx: ca }, Log::Residue { value: b, ctx: cb })
                if Arc::ptr_eq(ca, cb) || ca.same_domain(cb) =>
            {
                a == b
            }
            _ => self.canonical() == other.canonical(),
        }
    }
}

macro_rules! element_impls {
    ($ty:ident, $gen:literal) => {
        impl $ty {
            /// The identity element (generator to the zeroth power).
            pub fn identity() -> Self {
                $ty(Log::Canonical(BigUint::zero()))
            }

            /// Wraps a canonical (standard-form) log.
            pub(crate) fn canonical(log: BigUint) -> Self {
                $ty(Log::Canonical(log))
            }

            /// Reconstructs an element from its canonical discrete log —
            /// the inverse of [`Self::discrete_log`], and the entry point
            /// deserializers (serde, the `sla-persist` binary codec) use.
            /// Like serde-deserialized material, the element starts out in
            /// canonical form; the engine re-enters its residue domain on
            /// first use.
            pub fn from_canonical_log(log: BigUint) -> Self {
                Self::canonical(log)
            }

            /// Wraps a residue-domain log under `ctx`.
            pub(crate) fn residue(value: BigUint, ctx: Arc<Reducer>) -> Self {
                $ty(Log::Residue { value, ctx })
            }

            /// `true` iff this is the identity.
            pub fn is_identity(&self) -> bool {
                self.0.is_zero()
            }

            /// The canonical discrete logarithm with respect to
            #[doc = concat!("`", $gen, "`.")]
            ///
            /// This is the **conversion boundary** out of the Montgomery
            /// domain: residue-form elements pay one reduction pass here
            /// and nowhere else. Only meaningful for the simulated
            /// backend; used by tests to verify algebraic identities and
            /// by message decoding.
            pub fn discrete_log(&self) -> BigUint {
                self.0.canonical().into_owned()
            }
        }

        impl PartialEq for $ty {
            fn eq(&self, other: &Self) -> bool {
                self.0.eq_log(&other.0)
            }
        }

        impl Eq for $ty {}

        impl Hash for $ty {
            fn hash<H: Hasher>(&self, state: &mut H) {
                // Hash the canonical log so mixed representations of the
                // same element collide, as Eq requires.
                self.0.canonical().hash(state);
            }
        }

        impl Serialize for $ty {
            fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                // Canonical hex string — byte-identical to the derived
                // transparent-newtype encoding of the canonical-log era.
                self.0.canonical().serialize(serializer)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                BigUint::deserialize(deserializer).map(Self::canonical)
            }
        }
    };
}

/// Element of the source group `G` (stored as `log_g`).
#[derive(Debug, Clone)]
pub struct GElem(pub(crate) Log);

/// Element of the target group `GT` (stored as `log_gt`).
#[derive(Debug, Clone)]
pub struct GtElem(pub(crate) Log);

element_impls!(GElem, "g");
element_impls!(GtElem, "gt = e(g, g)");

#[cfg(test)]
mod tests {
    use super::*;

    fn reducer(n: u64) -> Arc<Reducer> {
        Arc::new(Reducer::new(&BigUint::from_u64(n)).expect("modulus > 1"))
    }

    #[test]
    fn identities() {
        assert!(GElem::identity().is_identity());
        assert!(GtElem::identity().is_identity());
        assert_eq!(GElem::identity().discrete_log(), BigUint::zero());
    }

    #[test]
    fn serde_roundtrip() {
        let e = GElem::canonical(BigUint::from_u64(123456));
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<GElem>(&json).unwrap(), e);
    }

    #[test]
    fn residue_serializes_canonically() {
        let ctx = reducer(1_000_003);
        let v = BigUint::from_u64(424242);
        let res = GElem::residue(ctx.to_residue(&v), ctx);
        let can = GElem::canonical(v);
        assert_eq!(
            serde_json::to_string(&res).unwrap(),
            serde_json::to_string(&can).unwrap(),
            "wire bytes must not depend on the in-memory representation"
        );
    }

    #[test]
    fn mixed_representation_equality_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let ctx = reducer(1_000_003);
        let v = BigUint::from_u64(987654);
        let res = GtElem::residue(ctx.to_residue(&v), ctx);
        let can = GtElem::canonical(v.clone());
        assert_eq!(res, can);
        assert_ne!(res, GtElem::canonical(&v + &BigUint::one()));

        let hash = |e: &GtElem| {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&res), hash(&can));
    }

    #[test]
    fn residue_zero_is_identity() {
        let ctx = reducer(97);
        assert!(GElem::residue(BigUint::zero(), ctx).is_identity());
    }
}
