//! The [`BilinearGroup`] abstraction and its simulated implementation.

use crate::{CostModel, GElem, GroupParams, GtElem, OpCounters};
use rand::Rng;
use sla_bigint::{random_below, random_nonzero_below, BigUint, MontgomeryCtx};

/// A symmetric bilinear group of composite order `N = P·Q`.
///
/// This is the seam between the HVE scheme and the group backend: the HVE
/// crate is generic over this trait, so a curve-based pairing engine can be
/// swapped in without touching the scheme. All operations are instance
/// methods (not methods on elements) so the engine can meter them.
pub trait BilinearGroup {
    /// Group order `N`.
    fn order(&self) -> &BigUint;
    /// Prime factor `P`.
    fn p(&self) -> &BigUint;
    /// Prime factor `Q`.
    fn q(&self) -> &BigUint;

    /// Canonical generator of the full group `G`.
    fn g(&self) -> GElem;
    /// Canonical generator of the order-`P` subgroup `G_p`.
    fn gp_generator(&self) -> GElem;
    /// Canonical generator of the order-`Q` subgroup `G_q`.
    fn gq_generator(&self) -> GElem;

    /// Group law in `G`.
    fn mul_g(&self, a: &GElem, b: &GElem) -> GElem;
    /// Exponentiation in `G`.
    fn pow_g(&self, a: &GElem, e: &BigUint) -> GElem;
    /// Inverse in `G`.
    fn inv_g(&self, a: &GElem) -> GElem;

    /// Group law in `GT`.
    fn mul_gt(&self, a: &GtElem, b: &GtElem) -> GtElem;
    /// Exponentiation in `GT`.
    fn pow_gt(&self, a: &GtElem, e: &BigUint) -> GtElem;
    /// Inverse in `GT`.
    fn inv_gt(&self, a: &GtElem) -> GtElem;
    /// Division in `GT` (`a · b^{-1}`), a common HVE step.
    fn div_gt(&self, a: &GtElem, b: &GtElem) -> GtElem {
        let inv = self.inv_gt(b);
        self.mul_gt(a, &inv)
    }

    /// The bilinear map `e : G × G → GT`.
    fn pair(&self, a: &GElem, b: &GElem) -> GtElem;

    /// Uniformly random element of the order-`P` subgroup `G_p` (excluding
    /// the identity).
    fn random_gp<R: Rng>(&self, rng: &mut R) -> GElem
    where
        Self: Sized;
    /// Uniformly random element of the order-`Q` subgroup `G_q` (excluding
    /// the identity).
    fn random_gq<R: Rng>(&self, rng: &mut R) -> GElem
    where
        Self: Sized;
    /// Uniformly random scalar in `[0, P)`.
    fn random_zp<R: Rng>(&self, rng: &mut R) -> BigUint
    where
        Self: Sized;
    /// Uniformly random scalar in `[0, N)`.
    fn random_zn<R: Rng>(&self, rng: &mut R) -> BigUint
    where
        Self: Sized;

    /// Operation meters.
    fn counters(&self) -> &OpCounters;
}

/// Exponent-representation implementation of [`BilinearGroup`].
///
/// See the crate docs for the simulation argument. Deterministic given the
/// RNG used to generate [`GroupParams`].
///
/// On construction the engine precomputes a [`MontgomeryCtx`] for the
/// group order `N` (always odd for `N = P·Q` with odd primes), so the hot
/// operations — `pow_g`/`pow_gt`/`pair`, each one modular multiplication
/// in the exponent representation — reduce with division-free CIOS passes
/// instead of Knuth Algorithm-D division. Elements stay in canonical
/// (standard, fully reduced) form throughout, so operation counts and all
/// algebraic invariants are unchanged.
#[derive(Debug)]
pub struct SimulatedGroup {
    params: GroupParams,
    cost: CostModel,
    counters: OpCounters,
    /// Montgomery fast lane for reduction mod `N`; `None` only for the
    /// degenerate even-order groups constructible in tests.
    mont: Option<MontgomeryCtx>,
}

impl SimulatedGroup {
    /// Builds an engine over existing parameters.
    pub fn new(params: GroupParams) -> Self {
        let mont = MontgomeryCtx::new(&params.n);
        SimulatedGroup {
            params,
            cost: CostModel::default(),
            counters: OpCounters::new(),
            mont,
        }
    }

    /// `(a · b) mod N` through the Montgomery fast path when available.
    fn mul_mod_n(&self, a: &BigUint, b: &BigUint) -> BigUint {
        match &self.mont {
            Some(ctx) => ctx.mod_mul(a, b),
            None => a.mod_mul(b, &self.params.n),
        }
    }

    /// Generates fresh parameters with `bits`-bit prime factors.
    pub fn generate<R: Rng>(bits: usize, rng: &mut R) -> Self {
        Self::new(GroupParams::generate(bits, rng))
    }

    /// Sets the wall-clock cost model (see [`CostModel`]).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The group parameters.
    pub fn params(&self) -> &GroupParams {
        &self.params
    }
}

impl BilinearGroup for SimulatedGroup {
    fn order(&self) -> &BigUint {
        &self.params.n
    }
    fn p(&self) -> &BigUint {
        &self.params.p
    }
    fn q(&self) -> &BigUint {
        &self.params.q
    }

    fn g(&self) -> GElem {
        GElem(BigUint::one())
    }
    fn gp_generator(&self) -> GElem {
        GElem(self.params.q.clone())
    }
    fn gq_generator(&self) -> GElem {
        GElem(self.params.p.clone())
    }

    fn mul_g(&self, a: &GElem, b: &GElem) -> GElem {
        self.counters.record_g_mult();
        GElem(a.0.mod_add(&b.0, &self.params.n))
    }

    fn pow_g(&self, a: &GElem, e: &BigUint) -> GElem {
        self.counters.record_g_exp();
        GElem(self.mul_mod_n(&a.0, e))
    }

    fn inv_g(&self, a: &GElem) -> GElem {
        GElem(BigUint::zero().mod_sub(&a.0, &self.params.n))
    }

    fn mul_gt(&self, a: &GtElem, b: &GtElem) -> GtElem {
        self.counters.record_gt_mult();
        GtElem(a.0.mod_add(&b.0, &self.params.n))
    }

    fn pow_gt(&self, a: &GtElem, e: &BigUint) -> GtElem {
        self.counters.record_gt_exp();
        GtElem(self.mul_mod_n(&a.0, e))
    }

    fn inv_gt(&self, a: &GtElem) -> GtElem {
        GtElem(BigUint::zero().mod_sub(&a.0, &self.params.n))
    }

    fn pair(&self, a: &GElem, b: &GElem) -> GtElem {
        self.counters.record_pairing();
        let out = self.mul_mod_n(&a.0, &b.0);
        self.cost.burn(&out, &self.params.n, self.mont.as_ref());
        GtElem(out)
    }

    fn random_gp<R: Rng>(&self, rng: &mut R) -> GElem {
        // g_p^r for r in [1, P): exponent Q·r mod N.
        let r = random_nonzero_below(&self.params.p, rng);
        GElem(self.mul_mod_n(&self.params.q, &r))
    }

    fn random_gq<R: Rng>(&self, rng: &mut R) -> GElem {
        let r = random_nonzero_below(&self.params.q, rng);
        GElem(self.mul_mod_n(&self.params.p, &r))
    }

    fn random_zp<R: Rng>(&self, rng: &mut R) -> BigUint {
        random_below(&self.params.p, rng)
    }

    fn random_zn<R: Rng>(&self, rng: &mut R) -> BigUint {
        random_below(&self.params.n, rng)
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SimulatedGroup, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xabcd);
        let grp = SimulatedGroup::generate(48, &mut rng);
        (grp, rng)
    }

    #[test]
    fn group_laws() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gq(&mut rng);
        // associativity / commutativity via exponents
        assert_eq!(grp.mul_g(&a, &b), grp.mul_g(&b, &a));
        // identity
        assert_eq!(grp.mul_g(&a, &GElem::identity()), a);
        // inverse
        assert!(grp.mul_g(&a, &grp.inv_g(&a)).is_identity());
    }

    #[test]
    fn bilinearity() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        let x = grp.random_zn(&mut rng);
        let y = grp.random_zn(&mut rng);
        let lhs = grp.pair(&grp.pow_g(&a, &x), &grp.pow_g(&b, &y));
        let exp = x.mod_mul(&y, grp.order());
        let rhs = grp.pow_gt(&grp.pair(&a, &b), &exp);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn symmetry() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gq(&mut rng);
        assert_eq!(grp.pair(&a, &b), grp.pair(&b, &a));
    }

    #[test]
    fn cross_subgroup_annihilation() {
        // e(G_p, G_q) = 1: the property HVE's blinding terms rely on.
        let (grp, mut rng) = setup();
        for _ in 0..10 {
            let a = grp.random_gp(&mut rng);
            let b = grp.random_gq(&mut rng);
            assert!(grp.pair(&a, &b).is_identity());
        }
    }

    #[test]
    fn subgroup_orders() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        // a^P = identity for a in G_p
        assert!(grp.pow_g(&a, grp.p()).is_identity());
        let b = grp.random_gq(&mut rng);
        assert!(grp.pow_g(&b, grp.q()).is_identity());
        // but a^Q != identity (a has order exactly P for random sampling)
        assert!(!grp.pow_g(&a, grp.q()).is_identity());
    }

    #[test]
    fn pairing_counter_increments() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        assert_eq!(grp.counters().pairings(), 0);
        let _ = grp.pair(&a, &a);
        let _ = grp.pair(&a, &a);
        assert_eq!(grp.counters().pairings(), 2);
        grp.counters().reset();
        assert_eq!(grp.counters().pairings(), 0);
    }

    #[test]
    fn gt_division() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        let ab = grp.pair(&a, &b);
        let quotient = grp.div_gt(&ab, &ab);
        assert!(quotient.is_identity());
    }

    #[test]
    fn calibrated_cost_model_still_correct() {
        let mut rng = StdRng::seed_from_u64(5);
        let grp = SimulatedGroup::generate(32, &mut rng).with_cost_model(CostModel::Calibrated {
            modmuls_per_pairing: 8,
        });
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        assert_eq!(grp.pair(&a, &b), grp.pair(&b, &a));
        assert_eq!(grp.counters().pairings(), 2);
    }
}
