//! The [`BilinearGroup`] abstraction and its simulated implementation.

use crate::element::Log;
use crate::table::FixedBaseMul;
use crate::{CostModel, GElem, GroupParams, GtElem, OpCounters, PreparedG, PreparedGt};
use rand::Rng;
use sla_bigint::{random_below, random_nonzero_below, BigUint, Reducer};
use std::borrow::Cow;
use std::sync::Arc;

/// A symmetric bilinear group of composite order `N = P·Q`.
///
/// This is the seam between the HVE scheme and the group backend: the HVE
/// crate is generic over this trait, so a curve-based pairing engine can be
/// swapped in without touching the scheme. All operations are instance
/// methods (not methods on elements) so the engine can meter them.
pub trait BilinearGroup {
    /// Group order `N`.
    fn order(&self) -> &BigUint;
    /// Prime factor `P`.
    fn p(&self) -> &BigUint;
    /// Prime factor `Q`.
    fn q(&self) -> &BigUint;

    /// Canonical generator of the full group `G`.
    fn g(&self) -> GElem;
    /// Canonical generator of the order-`P` subgroup `G_p`.
    fn gp_generator(&self) -> GElem;
    /// Canonical generator of the order-`Q` subgroup `G_q`.
    fn gq_generator(&self) -> GElem;

    /// Group law in `G`.
    fn mul_g(&self, a: &GElem, b: &GElem) -> GElem;
    /// Exponentiation in `G`.
    fn pow_g(&self, a: &GElem, e: &BigUint) -> GElem;
    /// Inverse in `G`.
    fn inv_g(&self, a: &GElem) -> GElem;

    /// Group law in `GT`.
    fn mul_gt(&self, a: &GtElem, b: &GtElem) -> GtElem;
    /// Exponentiation in `GT`.
    fn pow_gt(&self, a: &GtElem, e: &BigUint) -> GtElem;
    /// Inverse in `GT`.
    fn inv_gt(&self, a: &GtElem) -> GtElem;
    /// Division in `GT` (`a · b^{-1}`), a common HVE step.
    fn div_gt(&self, a: &GtElem, b: &GtElem) -> GtElem {
        let inv = self.inv_gt(b);
        self.mul_gt(a, &inv)
    }

    /// The bilinear map `e : G × G → GT`.
    fn pair(&self, a: &GElem, b: &GElem) -> GtElem;

    /// The bilinear map over a batch of **independent** pairs.
    ///
    /// Engines may drive all pairs through one lockstep instruction
    /// stream (the simulated engine uses the SIMD batch kernels of the
    /// bigint layer); the default is a serial loop. The contract is
    /// strict: output `i` is **byte-identical** to `self.pair(a_i, b_i)`,
    /// results are in input order, and the pairing counter advances by
    /// exactly `pairs.len()` — batching is a throughput optimization,
    /// never a semantic or accounting change.
    fn pair_batch(&self, pairs: &[(&GElem, &GElem)]) -> Vec<GtElem> {
        pairs.iter().map(|(a, b)| self.pair(a, b)).collect()
    }

    /// Exponentiation in `G` over a batch of **independent**
    /// `(base, exponent)` pairs.
    ///
    /// Same strict contract as [`BilinearGroup::pair_batch`]: output `i`
    /// is byte-identical to `self.pow_g(a_i, e_i)`, results are in input
    /// order, and the `G`-exponentiation counter advances by exactly
    /// `items.len()`. The simulated engine drives the whole batch
    /// through one lockstep sweep; the default is a serial loop.
    fn pow_g_batch(&self, items: &[(&GElem, &BigUint)]) -> Vec<GElem> {
        items.iter().map(|(a, e)| self.pow_g(a, e)).collect()
    }

    /// Exponentiation in `GT` over a batch of independent pairs (see
    /// [`BilinearGroup::pow_g_batch`] for the contract).
    fn pow_gt_batch(&self, items: &[(&GtElem, &BigUint)]) -> Vec<GtElem> {
        items.iter().map(|(a, e)| self.pow_gt(a, e)).collect()
    }

    /// Batched exponentiation through prepared `G` bases — metered and
    /// byte-identical exactly like mapping
    /// [`BilinearGroup::pow_prepared_g`] over the slice.
    fn pow_prepared_g_batch(&self, items: &[(&PreparedG, &BigUint)]) -> Vec<GElem> {
        items
            .iter()
            .map(|(b, e)| self.pow_prepared_g(b, e))
            .collect()
    }

    /// Batched exponentiation through prepared `GT` bases (see
    /// [`BilinearGroup::pow_prepared_g_batch`]).
    fn pow_prepared_gt_batch(&self, items: &[(&PreparedGt, &BigUint)]) -> Vec<GtElem> {
        items
            .iter()
            .map(|(b, e)| self.pow_prepared_gt(b, e))
            .collect()
    }

    /// Dispatch hint for batch-pow **callers**: whether regrouping many
    /// exponentiations into the `*_batch` entry points is expected to
    /// beat calling the serial ops in a loop on this engine. The batch
    /// entry points stay correct (byte-identical, identically metered)
    /// either way — this only tells orchestration layers (e.g. the HVE
    /// phase batchers) whether the gather/scatter bookkeeping they pay
    /// to build a batch will amortize. Default: `true` (engines with
    /// real ladder exponentiations win from lockstep batching).
    fn prefers_batched_pow(&self) -> bool {
        true
    }

    /// The canonical discrete log of a `GT` element, metered as one
    /// canonicalization in [`OpCounters`]. This is the **conversion
    /// boundary** out of the engine's residue domain: every call pays
    /// (at most) one `from_residue` pass, so consumers that only need a
    /// match/no-match decision should use [`BilinearGroup::eq_gt`] and
    /// convert on match only.
    fn gt_canonical(&self, a: &GtElem) -> BigUint {
        self.counters().record_canonicalization();
        a.discrete_log()
    }

    /// Equality of two `GT` elements decided **inside the residue
    /// domain** — the comparison never converts an engine-produced
    /// element back to canonical form, so it is safe on the hottest
    /// matching paths. (Canonical-form operands — deserialized material —
    /// are lifted *into* the domain instead, which for Montgomery moduli
    /// is a single CIOS pass.)
    fn eq_gt(&self, a: &GtElem, b: &GtElem) -> bool {
        a == b
    }

    /// Prepares a base in `G` for repeated exponentiation (key material,
    /// generators). Engines may attach per-base precomputation; the
    /// default is a plain wrapper with no speedup.
    fn prepare_g(&self, a: &GElem) -> PreparedG {
        PreparedG::unprepared(a.clone())
    }

    /// Exponentiation through a prepared base — metered exactly like
    /// [`BilinearGroup::pow_g`], so op-count invariants are unchanged.
    fn pow_prepared_g(&self, base: &PreparedG, e: &BigUint) -> GElem {
        self.pow_g(&base.base, e)
    }

    /// Prepares a base in `GT` for repeated exponentiation.
    fn prepare_gt(&self, a: &GtElem) -> PreparedGt {
        PreparedGt::unprepared(a.clone())
    }

    /// Exponentiation through a prepared `GT` base (metered like
    /// [`BilinearGroup::pow_gt`]).
    fn pow_prepared_gt(&self, base: &PreparedGt, e: &BigUint) -> GtElem {
        self.pow_gt(&base.base, e)
    }

    /// Uniformly random element of the order-`P` subgroup `G_p` (excluding
    /// the identity).
    fn random_gp<R: Rng>(&self, rng: &mut R) -> GElem
    where
        Self: Sized;
    /// Uniformly random element of the order-`Q` subgroup `G_q` (excluding
    /// the identity).
    fn random_gq<R: Rng>(&self, rng: &mut R) -> GElem
    where
        Self: Sized;
    /// Uniformly random scalar in `[0, P)`.
    fn random_zp<R: Rng>(&self, rng: &mut R) -> BigUint
    where
        Self: Sized;
    /// Uniformly random scalar in `[0, N)`.
    fn random_zn<R: Rng>(&self, rng: &mut R) -> BigUint
    where
        Self: Sized;

    /// Operation meters.
    fn counters(&self) -> &OpCounters;
}

/// Exponent-representation implementation of [`BilinearGroup`].
///
/// See the crate docs for the simulation argument. Deterministic given the
/// RNG used to generate [`GroupParams`].
///
/// On construction the engine builds a shared [`Reducer`] for the group
/// order `N` (Montgomery for the odd `N = P·Q` orders, Barrett for the
/// degenerate even orders constructible in tests) and keeps every element
/// it produces **inside the residue domain**: a pairing is one domain
/// product (a single CIOS pass), the group law is one division-free
/// `mod_add`, and nothing converts back per operation. It also builds
/// fixed-base precomputations for the four generators, so
/// `pow_g`/`pow_gt` on `g`, `g_p`, `g_q` or `gt` (and on any base wrapped
/// via [`BilinearGroup::prepare_g`]) cost a single reduction pass.
/// Canonical conversion happens at `discrete_log()`/serde only; operation
/// counts and all algebraic invariants are unchanged.
#[derive(Debug)]
pub struct SimulatedGroup {
    params: GroupParams,
    cost: CostModel,
    counters: OpCounters,
    /// Shared reduction context defining the residue domain of every
    /// element this engine produces.
    reducer: Arc<Reducer>,
    /// Fixed-base precomputation for `g` — and for `gt = e(g, g)`, which
    /// shares it because both have log 1 (`pow_g`/`pow_gt` dispatch
    /// through the same [`SimulatedGroup::pow_log`]).
    g_table: FixedBaseMul,
    /// Fixed-base precomputation for the `G_p` generator `g^Q` (log `Q`).
    gp_table: FixedBaseMul,
    /// Fixed-base precomputation for the `G_q` generator `g^P` (log `P`).
    gq_table: FixedBaseMul,
}

impl SimulatedGroup {
    /// Builds an engine over existing parameters, precomputing the
    /// reduction context and the generator tables.
    pub fn new(params: GroupParams) -> Self {
        let reducer = Arc::new(Reducer::new(&params.n).expect("group order N = P·Q exceeds 1"));
        let one_res = reducer.to_residue(&BigUint::one());
        let g_table = FixedBaseMul::new(reducer.clone(), one_res);
        let gp_table = FixedBaseMul::new(reducer.clone(), reducer.to_residue(&params.q));
        let gq_table = FixedBaseMul::new(reducer.clone(), reducer.to_residue(&params.p));
        SimulatedGroup {
            params,
            cost: CostModel::default(),
            counters: OpCounters::new(),
            reducer,
            g_table,
            gp_table,
            gq_table,
        }
    }

    /// Generates fresh parameters with `bits`-bit prime factors.
    pub fn generate<R: Rng>(bits: usize, rng: &mut R) -> Self {
        Self::new(GroupParams::generate(bits, rng))
    }

    /// Sets the wall-clock cost model (see [`CostModel`]).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The group parameters.
    pub fn params(&self) -> &GroupParams {
        &self.params
    }

    /// The engine's residue domain of `log`: borrowed when the element
    /// already lives in this engine's domain (the hot path), converted
    /// otherwise (identity elements, deserialized material, foreign
    /// engines).
    fn residue_of<'a>(&self, log: &'a Log) -> Cow<'a, BigUint> {
        match log {
            Log::Residue { value, ctx }
                if Arc::ptr_eq(ctx, &self.reducer) || ctx.same_domain(&self.reducer) =>
            {
                Cow::Borrowed(value)
            }
            Log::Residue { value, ctx } => {
                Cow::Owned(self.reducer.to_residue(&ctx.from_residue(value)))
            }
            Log::Canonical(v) if v.is_zero() => Cow::Owned(BigUint::zero()),
            Log::Canonical(v) => Cow::Owned(self.reducer.to_residue(v)),
        }
    }

    /// Residue of `log(a) · e mod N`: fixed-base tables for the cached
    /// generators, otherwise one exponent conversion plus one domain
    /// product.
    fn pow_log(&self, log: &Log, e: &BigUint) -> BigUint {
        let (l, r) = self.pow_log_operands(log, e);
        self.reducer.residue_mul(&l, &r)
    }

    /// The `(left, right)` operand pair whose single domain product is
    /// [`SimulatedGroup::pow_log`]: the cached generator tables'
    /// `mul_ready` against the canonical exponent on a table hit, the
    /// base residue against the exponent's domain image otherwise. The
    /// batch exponentiation paths gather one pair per element and run a
    /// single lockstep sweep — same operands, so byte-identical results.
    fn pow_log_operands<'a>(
        &'a self,
        log: &'a Log,
        e: &'a BigUint,
    ) -> (Cow<'a, BigUint>, Cow<'a, BigUint>) {
        let r = self.residue_of(log);
        for table in [&self.g_table, &self.gp_table, &self.gq_table] {
            if *r == *table.base_res() {
                return table.scalar_mul_operands(e);
            }
        }
        let er = self.reducer.to_residue(e);
        (r, Cow::Owned(er))
    }

    /// Runs the gathered operand pairs of a batch exponentiation as one
    /// lockstep sweep through [`Reducer::residue_mul_batch`].
    fn pow_operands_batch(&self, ops: &[(Cow<'_, BigUint>, Cow<'_, BigUint>)]) -> Vec<BigUint> {
        let refs: Vec<(&BigUint, &BigUint)> =
            ops.iter().map(|(l, r)| (l.as_ref(), r.as_ref())).collect();
        self.reducer.residue_mul_batch(&refs)
    }

    /// Wraps a residue-domain log as a `G` element of this engine.
    fn g_elem(&self, residue: BigUint) -> GElem {
        GElem::residue(residue, self.reducer.clone())
    }

    /// Wraps a residue-domain log as a `GT` element of this engine.
    fn gt_elem(&self, residue: BigUint) -> GtElem {
        GtElem::residue(residue, self.reducer.clone())
    }
}

impl BilinearGroup for SimulatedGroup {
    fn order(&self) -> &BigUint {
        &self.params.n
    }
    fn p(&self) -> &BigUint {
        &self.params.p
    }
    fn q(&self) -> &BigUint {
        &self.params.q
    }

    fn g(&self) -> GElem {
        self.g_elem(self.g_table.base_res().clone())
    }
    fn gp_generator(&self) -> GElem {
        self.g_elem(self.gp_table.base_res().clone())
    }
    fn gq_generator(&self) -> GElem {
        self.g_elem(self.gq_table.base_res().clone())
    }

    fn mul_g(&self, a: &GElem, b: &GElem) -> GElem {
        self.counters.record_g_mult();
        let (ra, rb) = (self.residue_of(&a.0), self.residue_of(&b.0));
        self.g_elem(ra.mod_add(&rb, &self.params.n))
    }

    fn pow_g(&self, a: &GElem, e: &BigUint) -> GElem {
        self.counters.record_g_exp();
        self.g_elem(self.pow_log(&a.0, e))
    }

    fn pow_g_batch(&self, items: &[(&GElem, &BigUint)]) -> Vec<GElem> {
        self.counters.record_g_exps(items.len() as u64);
        let ops: Vec<_> = items
            .iter()
            .map(|(a, e)| self.pow_log_operands(&a.0, e))
            .collect();
        self.pow_operands_batch(&ops)
            .into_iter()
            .map(|r| self.g_elem(r))
            .collect()
    }

    /// The simulated engine's "exponentiation" is a single residue
    /// product (~tens of ns), so batch regrouping by callers only wins
    /// when a forced `SLA_SIMD` kernel makes single ops the slow path
    /// (one CIOS pass is a serial carry chain the digit kernels lose
    /// on; batching is how they fill their lanes). Under auto dispatch
    /// the scalar single-op schedule is already fastest and the hint
    /// says so — measured on the x86-64 reference host: HVE batch
    /// orchestration lands at 0.6–0.9× serial under auto, 1.2–1.3×
    /// under a forced vector kernel.
    fn prefers_batched_pow(&self) -> bool {
        sla_bigint::KernelKind::active_forced().1
    }

    fn inv_g(&self, a: &GElem) -> GElem {
        let ra = self.residue_of(&a.0);
        self.g_elem(BigUint::zero().mod_sub(&ra, &self.params.n))
    }

    fn mul_gt(&self, a: &GtElem, b: &GtElem) -> GtElem {
        self.counters.record_gt_mult();
        let (ra, rb) = (self.residue_of(&a.0), self.residue_of(&b.0));
        self.gt_elem(ra.mod_add(&rb, &self.params.n))
    }

    fn pow_gt(&self, a: &GtElem, e: &BigUint) -> GtElem {
        self.counters.record_gt_exp();
        self.gt_elem(self.pow_log(&a.0, e))
    }

    fn pow_gt_batch(&self, items: &[(&GtElem, &BigUint)]) -> Vec<GtElem> {
        self.counters.record_gt_exps(items.len() as u64);
        let ops: Vec<_> = items
            .iter()
            .map(|(a, e)| self.pow_log_operands(&a.0, e))
            .collect();
        self.pow_operands_batch(&ops)
            .into_iter()
            .map(|r| self.gt_elem(r))
            .collect()
    }

    fn inv_gt(&self, a: &GtElem) -> GtElem {
        let ra = self.residue_of(&a.0);
        self.gt_elem(BigUint::zero().mod_sub(&ra, &self.params.n))
    }

    fn eq_gt(&self, a: &GtElem, b: &GtElem) -> bool {
        // Both operands are compared as residues of this engine's domain:
        // engine-produced elements are borrowed as-is, canonical ones are
        // lifted in. No from_residue pass on either side.
        self.residue_of(&a.0) == self.residue_of(&b.0)
    }

    fn pair(&self, a: &GElem, b: &GElem) -> GtElem {
        self.counters.record_pairing();
        // Both logs live in the residue domain, so the pairing's log
        // product is a *single* domain multiplication — the refactor
        // deleted the two per-op conversion passes this used to need.
        let (ra, rb) = (self.residue_of(&a.0), self.residue_of(&b.0));
        let out = self.reducer.residue_mul(&ra, &rb);
        self.cost.burn(&out, &self.reducer);
        self.gt_elem(out)
    }

    fn pair_batch(&self, pairs: &[(&GElem, &GElem)]) -> Vec<GtElem> {
        self.counters.record_pairings(pairs.len() as u64);
        // Lockstep path: gather every log into the residue domain once,
        // then hand the whole slice to the batch multiplier, which
        // advances four products per instruction through the SIMD
        // kernels. Cost burning stays per-output so the Calibrated model
        // meters exactly as many modmuls as the serial path.
        let residues: Vec<(Cow<'_, BigUint>, Cow<'_, BigUint>)> = pairs
            .iter()
            .map(|(a, b)| (self.residue_of(&a.0), self.residue_of(&b.0)))
            .collect();
        let refs: Vec<(&BigUint, &BigUint)> = residues
            .iter()
            .map(|(ra, rb)| (ra.as_ref(), rb.as_ref()))
            .collect();
        self.reducer
            .residue_mul_batch(&refs)
            .into_iter()
            .map(|out| {
                self.cost.burn(&out, &self.reducer);
                self.gt_elem(out)
            })
            .collect()
    }

    fn prepare_g(&self, a: &GElem) -> PreparedG {
        let res = self.residue_of(&a.0).into_owned();
        PreparedG {
            base: a.clone(),
            table: Some(FixedBaseMul::new(self.reducer.clone(), res)),
        }
    }

    fn pow_prepared_g(&self, base: &PreparedG, e: &BigUint) -> GElem {
        self.counters.record_g_exp();
        let res = match &base.table {
            Some(t) if t.ctx().same_domain(&self.reducer) => t.scalar_mul(e),
            _ => self.pow_log(&base.base.0, e),
        };
        self.g_elem(res)
    }

    fn pow_prepared_g_batch(&self, items: &[(&PreparedG, &BigUint)]) -> Vec<GElem> {
        self.counters.record_g_exps(items.len() as u64);
        let ops: Vec<_> = items
            .iter()
            .map(|(base, e)| match &base.table {
                Some(t) if t.ctx().same_domain(&self.reducer) => t.scalar_mul_operands(e),
                _ => self.pow_log_operands(&base.base.0, e),
            })
            .collect();
        self.pow_operands_batch(&ops)
            .into_iter()
            .map(|r| self.g_elem(r))
            .collect()
    }

    fn prepare_gt(&self, a: &GtElem) -> PreparedGt {
        let res = self.residue_of(&a.0).into_owned();
        PreparedGt {
            base: a.clone(),
            table: Some(FixedBaseMul::new(self.reducer.clone(), res)),
        }
    }

    fn pow_prepared_gt(&self, base: &PreparedGt, e: &BigUint) -> GtElem {
        self.counters.record_gt_exp();
        let res = match &base.table {
            Some(t) if t.ctx().same_domain(&self.reducer) => t.scalar_mul(e),
            _ => self.pow_log(&base.base.0, e),
        };
        self.gt_elem(res)
    }

    fn pow_prepared_gt_batch(&self, items: &[(&PreparedGt, &BigUint)]) -> Vec<GtElem> {
        self.counters.record_gt_exps(items.len() as u64);
        let ops: Vec<_> = items
            .iter()
            .map(|(base, e)| match &base.table {
                Some(t) if t.ctx().same_domain(&self.reducer) => t.scalar_mul_operands(e),
                _ => self.pow_log_operands(&base.base.0, e),
            })
            .collect();
        self.pow_operands_batch(&ops)
            .into_iter()
            .map(|r| self.gt_elem(r))
            .collect()
    }

    fn random_gp<R: Rng>(&self, rng: &mut R) -> GElem {
        // g_p^r for r in [1, P): exponent Q·r mod N, via the G_p table.
        let r = random_nonzero_below(&self.params.p, rng);
        self.g_elem(self.gp_table.scalar_mul(&r))
    }

    fn random_gq<R: Rng>(&self, rng: &mut R) -> GElem {
        let r = random_nonzero_below(&self.params.q, rng);
        self.g_elem(self.gq_table.scalar_mul(&r))
    }

    fn random_zp<R: Rng>(&self, rng: &mut R) -> BigUint {
        random_below(&self.params.p, rng)
    }

    fn random_zn<R: Rng>(&self, rng: &mut R) -> BigUint {
        random_below(&self.params.n, rng)
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SimulatedGroup, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xabcd);
        let grp = SimulatedGroup::generate(48, &mut rng);
        (grp, rng)
    }

    #[test]
    fn group_laws() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gq(&mut rng);
        // associativity / commutativity via exponents
        assert_eq!(grp.mul_g(&a, &b), grp.mul_g(&b, &a));
        // identity
        assert_eq!(grp.mul_g(&a, &GElem::identity()), a);
        // inverse
        assert!(grp.mul_g(&a, &grp.inv_g(&a)).is_identity());
    }

    #[test]
    fn bilinearity() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        let x = grp.random_zn(&mut rng);
        let y = grp.random_zn(&mut rng);
        let lhs = grp.pair(&grp.pow_g(&a, &x), &grp.pow_g(&b, &y));
        let exp = x.mod_mul(&y, grp.order());
        let rhs = grp.pow_gt(&grp.pair(&a, &b), &exp);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn symmetry() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gq(&mut rng);
        assert_eq!(grp.pair(&a, &b), grp.pair(&b, &a));
    }

    #[test]
    fn cross_subgroup_annihilation() {
        // e(G_p, G_q) = 1: the property HVE's blinding terms rely on.
        let (grp, mut rng) = setup();
        for _ in 0..10 {
            let a = grp.random_gp(&mut rng);
            let b = grp.random_gq(&mut rng);
            assert!(grp.pair(&a, &b).is_identity());
        }
    }

    #[test]
    fn subgroup_orders() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        // a^P = identity for a in G_p
        assert!(grp.pow_g(&a, grp.p()).is_identity());
        let b = grp.random_gq(&mut rng);
        assert!(grp.pow_g(&b, grp.q()).is_identity());
        // but a^Q != identity (a has order exactly P for random sampling)
        assert!(!grp.pow_g(&a, grp.q()).is_identity());
    }

    #[test]
    fn pairing_counter_increments() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        assert_eq!(grp.counters().pairings(), 0);
        let _ = grp.pair(&a, &a);
        let _ = grp.pair(&a, &a);
        assert_eq!(grp.counters().pairings(), 2);
        grp.counters().reset();
        assert_eq!(grp.counters().pairings(), 0);
    }

    #[test]
    fn pair_batch_is_byte_identical_to_serial_pairs() {
        let (grp, mut rng) = setup();
        let elems: Vec<GElem> = (0..9)
            .map(|i| {
                if i % 3 == 0 {
                    grp.random_gq(&mut rng)
                } else {
                    grp.random_gp(&mut rng)
                }
            })
            .collect();
        // Mix in a canonical-form operand (post-serde state) so the
        // batch path exercises the Cow conversion arm too.
        let canonical = GElem::canonical(elems[1].discrete_log());
        let mut pairs: Vec<(&GElem, &GElem)> = elems
            .iter()
            .enumerate()
            .map(|(i, a)| (a, &elems[(i + 4) % elems.len()]))
            .collect();
        pairs.push((&canonical, &elems[5]));

        // Every width, including the empty batch and ragged remainders.
        for w in 0..=pairs.len() {
            let before = grp.counters().snapshot();
            let serial: Vec<GtElem> = pairs[..w].iter().map(|(a, b)| grp.pair(a, b)).collect();
            let mid = grp.counters().snapshot();
            let batched = grp.pair_batch(&pairs[..w]);
            let after = grp.counters().snapshot();
            assert_eq!(batched, serial, "width {w}");
            for (x, y) in batched.iter().zip(&serial) {
                assert_eq!(x.discrete_log(), y.discrete_log(), "width {w}");
            }
            assert_eq!((mid - before).pairings, w as u64);
            assert_eq!(
                after - mid,
                mid - before,
                "batch must meter exactly like serial at width {w}"
            );
        }
    }

    #[test]
    fn pair_batch_burns_calibrated_cost_per_output() {
        let mut rng = StdRng::seed_from_u64(7);
        let grp = SimulatedGroup::generate(32, &mut rng).with_cost_model(CostModel::Calibrated {
            modmuls_per_pairing: 4,
        });
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        let pairs = [(&a, &b), (&b, &a), (&a, &a), (&b, &b), (&a, &b)];
        let serial: Vec<GtElem> = pairs.iter().map(|(x, y)| grp.pair(x, y)).collect();
        assert_eq!(grp.pair_batch(&pairs), serial);
        assert_eq!(grp.counters().pairings(), 10);
    }

    #[test]
    fn pow_batches_are_byte_identical_and_meter_like_serial() {
        let (grp, mut rng) = setup();
        let mut elems: Vec<GElem> = (0..7)
            .map(|i| {
                if i % 3 == 0 {
                    grp.random_gq(&mut rng)
                } else {
                    grp.random_gp(&mut rng)
                }
            })
            .collect();
        // Generator-table hits and a canonical-form base exercise every
        // operand-selection arm.
        elems.push(grp.g());
        elems.push(grp.gp_generator());
        elems.push(GElem::canonical(elems[2].discrete_log()));
        let exps: Vec<BigUint> = (0..elems.len())
            .map(|i| {
                if i == 0 {
                    BigUint::zero()
                } else {
                    grp.random_zn(&mut rng)
                }
            })
            .collect();
        let items: Vec<(&GElem, &BigUint)> = elems.iter().zip(&exps).collect();

        for w in 0..=items.len() {
            let before = grp.counters().snapshot();
            let serial: Vec<GElem> = items[..w].iter().map(|(a, e)| grp.pow_g(a, e)).collect();
            let mid = grp.counters().snapshot();
            let batched = grp.pow_g_batch(&items[..w]);
            let after = grp.counters().snapshot();
            assert_eq!(batched, serial, "width {w}");
            assert_eq!((mid - before).g_exps, w as u64);
            assert_eq!(after - mid, mid - before, "metering at width {w}");
        }

        // Prepared bases: precomputed tables plus an unprepared fallback.
        let prepared: Vec<PreparedG> = elems.iter().map(|a| grp.prepare_g(a)).collect();
        let mut prep_items: Vec<(&PreparedG, &BigUint)> = prepared.iter().zip(&exps).collect();
        let plain = PreparedG::unprepared(elems[0].clone());
        prep_items.push((&plain, &exps[1]));
        let serial: Vec<GElem> = prep_items
            .iter()
            .map(|(b, e)| grp.pow_prepared_g(b, e))
            .collect();
        let before = grp.counters().snapshot();
        assert_eq!(grp.pow_prepared_g_batch(&prep_items), serial);
        let delta = grp.counters().snapshot() - before;
        assert_eq!(delta.g_exps, prep_items.len() as u64);

        // GT variants share the same machinery; pin one width each.
        let gts: Vec<GtElem> = elems.iter().map(|a| grp.pair(a, &elems[1])).collect();
        let gt_items: Vec<(&GtElem, &BigUint)> = gts.iter().zip(&exps).collect();
        let serial: Vec<GtElem> = gt_items.iter().map(|(a, e)| grp.pow_gt(a, e)).collect();
        assert_eq!(grp.pow_gt_batch(&gt_items), serial);
        let pgts: Vec<PreparedGt> = gts.iter().map(|a| grp.prepare_gt(a)).collect();
        let pgt_items: Vec<(&PreparedGt, &BigUint)> = pgts.iter().zip(&exps).collect();
        let serial: Vec<GtElem> = pgt_items
            .iter()
            .map(|(b, e)| grp.pow_prepared_gt(b, e))
            .collect();
        let before = grp.counters().snapshot();
        assert_eq!(grp.pow_prepared_gt_batch(&pgt_items), serial);
        assert_eq!(
            (grp.counters().snapshot() - before).gt_exps,
            pgt_items.len() as u64
        );
    }

    #[test]
    fn gt_division() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        let ab = grp.pair(&a, &b);
        let quotient = grp.div_gt(&ab, &ab);
        assert!(quotient.is_identity());
    }

    #[test]
    fn calibrated_cost_model_still_correct() {
        let mut rng = StdRng::seed_from_u64(5);
        let grp = SimulatedGroup::generate(32, &mut rng).with_cost_model(CostModel::Calibrated {
            modmuls_per_pairing: 8,
        });
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        assert_eq!(grp.pair(&a, &b), grp.pair(&b, &a));
        assert_eq!(grp.counters().pairings(), 2);
    }

    #[test]
    fn generator_exponentiation_uses_tables_and_agrees() {
        // pow_g on the cached generators must equal the log product the
        // generic path computes, for both representations of the base.
        let (grp, mut rng) = setup();
        let e = grp.random_zn(&mut rng);
        let n = grp.order();

        let via_table = grp.pow_g(&grp.g(), &e);
        assert_eq!(via_table.discrete_log(), &e % n);

        let gp = grp.gp_generator();
        assert_eq!(grp.pow_g(&gp, &e).discrete_log(), grp.q().mod_mul(&e, n));
        // Canonical-representation base (as after deserialization).
        let gp_canonical = GElem::canonical(grp.q().clone());
        assert_eq!(grp.pow_g(&gp_canonical, &e), grp.pow_g(&gp, &e));
    }

    #[test]
    fn prepared_bases_match_generic_pow_and_count_identically() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let e = grp.random_zn(&mut rng);

        let prepared = grp.prepare_g(&a);
        let before = grp.counters().snapshot();
        let fast = grp.pow_prepared_g(&prepared, &e);
        let slow = grp.pow_g(&a, &e);
        let delta = grp.counters().snapshot() - before;
        assert_eq!(fast, slow);
        assert_eq!(delta.g_exps, 2, "prepared pow meters like pow_g");

        let gt = grp.pair(&a, &a);
        let pgt = grp.prepare_gt(&gt);
        assert_eq!(grp.pow_prepared_gt(&pgt, &e), grp.pow_gt(&gt, &e));
    }

    #[test]
    fn unprepared_fallback_agrees() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let e = grp.random_zn(&mut rng);
        let plain = PreparedG::unprepared(a.clone());
        assert_eq!(grp.pow_prepared_g(&plain, &e), grp.pow_g(&a, &e));
    }

    #[test]
    fn eq_gt_is_conversion_free_and_agrees_with_partial_eq() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        let x = grp.pair(&a, &b);
        let y = grp.pair(&b, &a);
        let z = grp.mul_gt(&x, &x);

        let before = grp.counters().snapshot();
        assert!(grp.eq_gt(&x, &y));
        assert!(!grp.eq_gt(&x, &z));
        // Canonical-form operand (post-serde state) still compares right.
        let x_canonical = GtElem::canonical(x.discrete_log());
        assert!(grp.eq_gt(&x, &x_canonical));
        let delta = grp.counters().snapshot() - before;
        assert_eq!(
            delta.canonicalizations, 0,
            "eq_gt must never leave the residue domain"
        );
    }

    #[test]
    fn gt_canonical_is_metered() {
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let x = grp.pair(&a, &a);
        let before = grp.counters().snapshot();
        let log = grp.gt_canonical(&x);
        let delta = grp.counters().snapshot() - before;
        assert_eq!(log, x.discrete_log());
        assert_eq!(delta.canonicalizations, 1);
    }

    #[test]
    fn deserialized_material_interoperates() {
        // Canonical-representation elements (the post-serde state) mix
        // freely with residue-domain ones.
        let (grp, mut rng) = setup();
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gp(&mut rng);
        let a2 = GElem::canonical(a.discrete_log());
        assert_eq!(a, a2);
        assert_eq!(grp.mul_g(&a2, &b), grp.mul_g(&a, &b));
        assert_eq!(grp.pair(&a2, &b), grp.pair(&a, &b));
        assert_eq!(grp.inv_g(&a2), grp.inv_g(&a));
    }
}
