//! # sla-pairing
//!
//! A **composite-order symmetric bilinear group** `e : G × G → GT` with
//! `|G| = |GT| = N = P · Q` (`P`, `Q` prime), as required by the
//! Boneh–Waters Hidden Vector Encryption scheme used in the EDBT 2021
//! secure-alert paper.
//!
//! ## Instantiation strategy
//!
//! Production composite-order pairing curves are impractical to build from
//! scratch, so this crate implements the group in the **exponent
//! representation** (a generic-group-model simulation): an element of `G` is
//! stored as its discrete logarithm `x` with respect to a fixed abstract
//! generator `g`, so the element *is* `g^x`. Then:
//!
//! * group law: `g^x · g^y = g^{x+y mod N}`
//! * exponentiation: `(g^x)^k = g^{xk mod N}`
//! * pairing: `e(g^x, g^y) = gt^{xy mod N}` where `gt = e(g, g)`
//! * subgroups: `G_p = ⟨g^Q⟩` (order `P`) and `G_q = ⟨g^P⟩` (order `Q`);
//!   cross-subgroup pairings annihilate because `e(g^{Qa}, g^{Pb}) =
//!   gt^{N·ab} = 1`, exactly the property HVE's blinding relies on.
//!
//! Every algebraic identity of a real composite-order pairing holds, so the
//! HVE scheme built on top is *functionally* exact and its
//! **pairing-operation counts — the metric the paper reports — are
//! faithful**. The representation is of course not hiding (discrete logs are
//! stored in the clear), so this is a simulation backend, not a secure
//! cryptographic instantiation; the [`BilinearGroup`] trait is the seam
//! where a curve-based engine would slot in.
//!
//! ## Montgomery-domain representation
//!
//! Engine-produced elements keep their discrete log in the **residue
//! domain** of a shared [`sla_bigint::Reducer`] (Montgomery form for the
//! odd composite orders the protocol uses), so every pairing is a single
//! reduction pass and the group law is a division-free addition — no
//! per-operation domain round trips. Canonical conversion happens only at
//! `discrete_log()`, cross-representation equality, and serde (whose wire
//! bytes are unchanged from the canonical-representation era). The engine
//! precomputes fixed-base tables for `g`, `g_p`, `g_q` and `gt`, and
//! [`BilinearGroup::prepare_g`]/[`BilinearGroup::prepare_gt`] extend the
//! same speedup to arbitrary repeated bases such as HVE key material.
//!
//! ## Cost accounting
//!
//! The engine counts pairings / exponentiations / multiplications in
//! [`OpCounters`] and can inject calibrated modular work per pairing via
//! [`CostModel`] so that wall-clock benchmarks scale the way a real pairing
//! backend would.
//!
//! ## Example
//!
//! ```
//! use sla_pairing::{BilinearGroup, SimulatedGroup};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let grp = SimulatedGroup::generate(64, &mut rng);
//! let a = grp.random_gp(&mut rng);
//! let b = grp.random_gp(&mut rng);
//! // bilinearity: e(a, b)^2 == e(a^2, b)
//! let two = sla_bigint::BigUint::from_u64(2);
//! assert_eq!(
//!     grp.pow_gt(&grp.pair(&a, &b), &two),
//!     grp.pair(&grp.pow_g(&a, &two), &b)
//! );
//! assert_eq!(grp.counters().pairings(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod counters;
mod element;
mod group;
mod params;
mod table;

pub use cost::CostModel;
pub use counters::{CounterSnapshot, OpCounters};
pub use element::{GElem, GtElem};
pub use group::{BilinearGroup, SimulatedGroup};
pub use params::GroupParams;
pub use table::{PreparedG, PreparedGt};
