//! Property tests for the Montgomery-domain element representation.
//!
//! The refactor moved `GElem`/`GtElem` logs into the residue domain of
//! the engine's shared `Reducer`; these tests pin the two contracts that
//! make the change invisible from outside:
//!
//! 1. **Serde canonicality** — the wire encoding of any engine-produced
//!    element is the canonical log's hex string, byte-identical to the
//!    pre-refactor derived (transparent newtype) encoding, regardless of
//!    the in-memory representation.
//! 2. **Representation transparency** — canonical-representation elements
//!    (the post-deserialization state) are equal to, hash like, and
//!    operate identically to their residue-domain twins.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sla_bigint::BigUint;
use sla_pairing::{BilinearGroup, GElem, GtElem, SimulatedGroup};

fn group(seed: u64) -> (SimulatedGroup, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let grp = SimulatedGroup::generate(40, &mut rng);
    (grp, rng)
}

/// The pre-refactor encoding: `GElem` was `#[derive(Serialize)]` on a
/// newtype over the canonical `BigUint` log, which serializes
/// transparently as the log's hex string.
fn legacy_encoding(canonical_log: &BigUint) -> String {
    serde_json::to_string(canonical_log).expect("BigUint serializes")
}

proptest! {
    #[test]
    fn serde_bytes_are_canonical_and_representation_independent(seed in any::<u64>()) {
        let (grp, mut rng) = group(seed);
        // A residue-domain element straight off the engine...
        let a = grp.random_gp(&mut rng);
        let e = grp.random_zn(&mut rng);
        let b = grp.pow_g(&a, &e);
        let gt = grp.pair(&a, &b);

        for (json, log) in [
            (serde_json::to_string(&a).unwrap(), a.discrete_log()),
            (serde_json::to_string(&b).unwrap(), b.discrete_log()),
            (serde_json::to_string(&gt).unwrap(), gt.discrete_log()),
        ] {
            // ...must serialize exactly as the pre-refactor canonical
            // newtype did.
            prop_assert_eq!(&json, &legacy_encoding(&log));
        }
    }

    #[test]
    fn serde_round_trip_preserves_equality_and_ops(seed in any::<u64>()) {
        let (grp, mut rng) = group(seed);
        let a = grp.random_gp(&mut rng);
        let b = grp.random_gq(&mut rng);

        let a2: GElem = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        prop_assert_eq!(&a2, &a);

        // Deserialized (canonical) elements interoperate with
        // residue-domain ones bit-for-bit.
        prop_assert_eq!(grp.mul_g(&a2, &b), grp.mul_g(&a, &b));
        prop_assert_eq!(grp.pair(&a2, &b), grp.pair(&a, &b));
        let e = grp.random_zn(&mut rng);
        prop_assert_eq!(grp.pow_g(&a2, &e), grp.pow_g(&a, &e));

        let gt = grp.pair(&a, &a);
        let gt2: GtElem = serde_json::from_str(&serde_json::to_string(&gt).unwrap()).unwrap();
        prop_assert_eq!(grp.pow_gt(&gt2, &e), grp.pow_gt(&gt, &e));
    }

    #[test]
    fn generator_tables_agree_with_direct_log_arithmetic(seed in any::<u64>()) {
        let (grp, mut rng) = group(seed);
        let e = grp.random_zn(&mut rng);
        let n = grp.order();
        // g has log 1, g_p has log Q, g_q has log P.
        prop_assert_eq!(grp.pow_g(&grp.g(), &e).discrete_log(), &e % n);
        prop_assert_eq!(
            grp.pow_g(&grp.gp_generator(), &e).discrete_log(),
            grp.q().mod_mul(&e, n)
        );
        prop_assert_eq!(
            grp.pow_g(&grp.gq_generator(), &e).discrete_log(),
            grp.p().mod_mul(&e, n)
        );
    }

    #[test]
    fn prepared_bases_agree_with_generic_pow(seed in any::<u64>()) {
        let (grp, mut rng) = group(seed);
        let a = grp.random_gp(&mut rng);
        let prepared = grp.prepare_g(&a);
        let gt = grp.pair(&a, &a);
        let pgt = grp.prepare_gt(&gt);
        for _ in 0..4 {
            let e = grp.random_zn(&mut rng);
            prop_assert_eq!(grp.pow_prepared_g(&prepared, &e), grp.pow_g(&a, &e));
            prop_assert_eq!(grp.pow_prepared_gt(&pgt, &e), grp.pow_gt(&gt, &e));
        }
    }
}
