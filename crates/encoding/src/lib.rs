//! # sla-encoding
//!
//! The **primary contribution** of the EDBT 2021 paper: variable-length
//! (Huffman) encoding of grid cells for Hidden Vector Encryption, plus
//! every baseline the paper evaluates against.
//!
//! ## What lives here
//!
//! * [`code`] — bit strings, `{0,1,*}` codewords, prefix property, Kraft
//!   sums (§3.1).
//! * [`prefix_tree`] — the node-arena prefix tree with the paper's five
//!   per-node attributes (§3.2 II).
//! * [`huffman`] — binary and B-ary Huffman construction, Algorithm 2 and
//!   §4.
//! * [`balanced`] — the probability-agnostic balanced-tree baseline.
//! * [`coding_tree`] — Algorithm 1: grid indexes (zero-padded) and the
//!   coding tree (star-padded), §4 expansion and granularity refinement.
//! * [`minimize`] — Algorithm 3: deterministic token minimization.
//! * [`qm`] — Quine–McCluskey boolean minimization (the aggregation used
//!   by the fixed-length baselines \[14\]/\[23\]).
//! * [`fixed`] — fixed-length natural and gray/SGO code assignments.
//! * [`encoder`] — the [`CellCodebook`] facade
//!   unifying all five schemes behind one API.
//! * [`theory`] — Thm 1 (Poisson alert counts), Thm 3/4 (depth bounds),
//!   §5 length-excess analysis, Fig. 13 statistics.
//!
//! ## Quick example
//!
//! ```
//! use sla_encoding::encoder::{CellCodebook, EncoderKind};
//!
//! // Five cells with the paper's Fig. 4 probabilities.
//! let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
//! let codebook = CellCodebook::build(EncoderKind::Huffman, &probs);
//!
//! // Alert zone = cells with indexes 001, 100, 110:
//! let tokens = codebook.tokens_for(&[1, 2, 4]);
//! let printed: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
//! assert_eq!(printed, vec!["001", "1**"]); // the paper's §3.3 result
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balanced;
pub mod code;
pub mod coding_tree;
pub mod encoder;
mod error;
pub mod fixed;
pub mod huffman;
pub mod minimize;
pub mod prefix_tree;
pub mod qm;
pub mod theory;

pub use code::{BitString, Codeword, Symbol};
pub use coding_tree::{CharWord, CodingScheme};
pub use encoder::{CellCodebook, EncoderKind};
pub use error::EncodingError;
pub use prefix_tree::{Node, NodeId, PrefixTree};
