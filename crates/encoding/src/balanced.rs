//! Balanced-tree baseline (§3.2, last paragraph).
//!
//! "The balanced tree is a complete binary tree constructed in `log2(n)`
//! steps. Given a tuple of probabilities corresponding to grid cells, they
//! are sorted in ascending order and placed in a priority queue. In the
//! `j`-th step, nodes `Q[2i]` and `Q[2i+1]` are paired ... and each pair is
//! replaced with a parent node in the queue."
//!
//! The paper uses it to show that *variable-length structure alone* does
//! not help — the probability-driven depth assignment of Huffman does.

use crate::prefix_tree::{NodeId, PrefixTree};

/// Builds the balanced baseline tree over cell probabilities.
///
/// # Panics
/// Panics if `probs` is empty or contains negative/non-finite values.
pub fn build_balanced_tree(probs: &[f64]) -> PrefixTree {
    assert!(!probs.is_empty(), "at least one cell required");
    for (i, &p) in probs.iter().enumerate() {
        assert!(
            p.is_finite() && p >= 0.0,
            "probability of cell {i} must be finite and non-negative, got {p}"
        );
    }

    let mut tree = PrefixTree::new(2);

    // Sort cells ascending by probability (stable: ties keep cell order).
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| probs[a].total_cmp(&probs[b]).then(a.cmp(&b)));

    let mut queue: Vec<NodeId> = order
        .iter()
        .map(|&cell| tree.add_leaf(probs[cell], Some(cell)))
        .collect();

    if queue.len() == 1 {
        let root = tree.add_internal(&[queue[0]]);
        tree.finalize(root);
        return tree;
    }

    while queue.len() > 1 {
        let mut next = Vec::with_capacity(queue.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < queue.len() {
            next.push(tree.add_internal(&[queue[i], queue[i + 1]]));
            i += 2;
        }
        if i < queue.len() {
            // Odd element carries over to the next round unpaired.
            next.push(queue[i]);
        }
        queue = next;
    }

    tree.finalize(queue[0]);
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_is_perfectly_balanced() {
        let probs = [0.4, 0.1, 0.3, 0.2];
        let tree = build_balanced_tree(&probs);
        assert_eq!(tree.reference_length(), 2);
        for leaf in tree.leaves_in_order() {
            assert_eq!(tree.node(leaf).code.len(), 2);
        }
    }

    #[test]
    fn five_cells_depth_three() {
        // n = 5: step 1 pairs (4 -> 2 nodes) + 1 carry; step 2 pairs 2;
        // step 3 pairs the last two. Depth = 3.
        let probs = [0.1, 0.2, 0.5, 0.4, 0.6];
        let tree = build_balanced_tree(&probs);
        assert_eq!(tree.reference_length(), 3);
        assert_eq!(tree.leaves_in_order().len(), 5);
    }

    #[test]
    fn ignores_probability_skew() {
        // Unlike Huffman, extreme skew does not change the depth profile.
        let skewed = [0.96, 0.01, 0.01, 0.01, 0.01];
        let uniform = [0.2, 0.2, 0.2, 0.2, 0.2];
        let t_skew = build_balanced_tree(&skewed);
        let t_uni = build_balanced_tree(&uniform);
        let lens = |t: &PrefixTree| {
            let mut v: Vec<usize> = t
                .leaves_in_order()
                .iter()
                .map(|&l| t.node(l).code.len())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(lens(&t_skew), lens(&t_uni));
    }

    #[test]
    fn all_cells_present_once() {
        let probs: Vec<f64> = (0..37).map(|i| (i as f64 + 1.0) / 100.0).collect();
        let tree = build_balanced_tree(&probs);
        let mut cells: Vec<usize> = tree
            .leaves_in_order()
            .iter()
            .filter_map(|&l| tree.node(l).cell)
            .collect();
        cells.sort_unstable();
        assert_eq!(cells, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn single_cell() {
        let tree = build_balanced_tree(&[1.0]);
        assert_eq!(tree.reference_length(), 1);
    }
}
