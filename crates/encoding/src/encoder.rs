//! Unified grid-encoder facade: one entry point for the paper's proposed
//! scheme and every baseline it is evaluated against (§7).

use crate::balanced::build_balanced_tree;
use crate::code::{BitString, Codeword};
use crate::coding_tree::CodingScheme;
use crate::error::EncodingError;
use crate::fixed::{gray_sgo_assignment, natural_assignment, unused_codes};
use crate::huffman::{build_bary_huffman_tree, build_huffman_tree};
use crate::minimize::minimize_to_patterns;
use crate::qm::minimize_boolean;
use serde::{Deserialize, Serialize};

/// Which encoding scheme to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncoderKind {
    /// Fixed-length natural binary codes with boolean minimization —
    /// the baseline of \[14\] (all cells equally likely).
    BasicFixed,
    /// Fixed-length gray-code assignment ranked by probability with
    /// boolean minimization — approximates the SGO of \[23\].
    GraySgo,
    /// Variable-length balanced tree (probability-agnostic) with
    /// deterministic minimization — the paper's sanity baseline.
    Balanced,
    /// Binary Huffman coding tree with deterministic minimization —
    /// **the paper's proposal**.
    Huffman,
    /// B-ary Huffman with §4 expansion; `BaryHuffman(3)` is the ternary
    /// scheme of Fig. 6.
    BaryHuffman(usize),
}

impl EncoderKind {
    /// Human-readable name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            EncoderKind::BasicFixed => "basic-fixed".to_string(),
            EncoderKind::GraySgo => "sgo-gray".to_string(),
            EncoderKind::Balanced => "balanced".to_string(),
            EncoderKind::Huffman => "huffman".to_string(),
            EncoderKind::BaryHuffman(b) => format!("huffman-{b}ary"),
        }
    }

    /// All encoders compared in the paper's figures (binary alphabet).
    pub fn paper_lineup() -> Vec<EncoderKind> {
        vec![
            EncoderKind::BasicFixed,
            EncoderKind::GraySgo,
            EncoderKind::Balanced,
            EncoderKind::Huffman,
        ]
    }
}

/// How tokens are generated for an alert set.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum TokenStrategy {
    /// Algorithm 3 over a coding tree (variable-length schemes).
    Tree(CodingScheme),
    /// Quine–McCluskey boolean minimization (fixed-length schemes);
    /// unused codes serve as don't-cares.
    Boolean {
        width: usize,
        codes: Vec<u64>,
        dont_cares: Vec<u64>,
    },
}

/// A complete cell codebook: per-cell indexes plus a token-generation
/// strategy. This is the artifact the Trusted Authority builds at system
/// initialization (Fig. 3) and the single API the protocol layer needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellCodebook {
    kind: EncoderKind,
    width_bits: usize,
    indexes: Vec<BitString>,
    strategy: TokenStrategy,
}

impl CellCodebook {
    /// Builds the codebook for `probs[i]` = likelihood of cell `i` being
    /// alerted. Probabilities need not be normalized.
    ///
    /// # Panics
    /// Panics if `probs` is empty or invalid for the chosen scheme; use
    /// [`Self::try_build`] for a fallible version.
    pub fn build(kind: EncoderKind, probs: &[f64]) -> Self {
        Self::try_build(kind, probs).expect("invalid probability surface for codebook")
    }

    /// Fallible [`Self::build`]: rejects empty/invalid probability
    /// surfaces, degenerate B-ary arities, and any build whose codes
    /// come out unprefixable (`ZeroWidthCode` — a degenerate
    /// distribution such as a single cell must still yield a ≥ 1-bit
    /// code) with the matching [`EncodingError`] instead of panicking.
    pub fn try_build(kind: EncoderKind, probs: &[f64]) -> Result<Self, EncodingError> {
        if probs.is_empty() {
            return Err(EncodingError::EmptyProbabilities);
        }
        for (cell, &value) in probs.iter().enumerate() {
            if !(value.is_finite() && value >= 0.0) {
                return Err(EncodingError::InvalidProbability { cell, value });
            }
        }
        if let EncoderKind::BaryHuffman(arity) = kind {
            if arity < 2 {
                return Err(EncodingError::InvalidArity { arity });
            }
        }
        let built = Self::build_validated(kind, probs);
        // A zero-length index could neither be prefix-matched by a token
        // nor HVE-encrypted; the built-in encoders pad degenerate inputs
        // (single cell, one-hot mass) to 1-bit codes, and this guard
        // keeps that a hard contract for every encoder behind the facade.
        if let Some(cell) = built.indexes.iter().position(|c| c.is_empty()) {
            return Err(EncodingError::ZeroWidthCode { cell });
        }
        Ok(built)
    }

    /// Shared body of [`Self::build`]/[`Self::try_build`] on validated
    /// inputs.
    fn build_validated(kind: EncoderKind, probs: &[f64]) -> Self {
        match kind {
            EncoderKind::BasicFixed | EncoderKind::GraySgo => {
                let indexes = if kind == EncoderKind::BasicFixed {
                    natural_assignment(probs.len())
                } else {
                    gray_sgo_assignment(probs)
                };
                let width = indexes[0].len();
                let dont_cares = unused_codes(&indexes);
                let codes = indexes.iter().map(|c| c.to_u64()).collect();
                CellCodebook {
                    kind,
                    width_bits: width,
                    indexes,
                    strategy: TokenStrategy::Boolean {
                        width,
                        codes,
                        dont_cares,
                    },
                }
            }
            EncoderKind::Balanced | EncoderKind::Huffman | EncoderKind::BaryHuffman(_) => {
                let tree = match kind {
                    EncoderKind::Balanced => build_balanced_tree(probs),
                    EncoderKind::Huffman => build_huffman_tree(probs),
                    EncoderKind::BaryHuffman(b) => build_bary_huffman_tree(probs, b),
                    _ => unreachable!(),
                };
                let scheme = CodingScheme::from_tree(&tree);
                CellCodebook {
                    kind,
                    width_bits: scheme.width_bits(),
                    indexes: scheme.indexes().to_vec(),
                    strategy: TokenStrategy::Tree(scheme),
                }
            }
        }
    }

    /// The scheme that produced this codebook.
    pub fn kind(&self) -> EncoderKind {
        self.kind
    }

    /// HVE width `l` in bits (all indexes and tokens have this length —
    /// the equal-length requirement of §2).
    pub fn width_bits(&self) -> usize {
        self.width_bits
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.indexes.len()
    }

    /// The index users in `cell` encrypt.
    pub fn index_of(&self, cell: usize) -> &BitString {
        &self.indexes[cell]
    }

    /// All indexes.
    pub fn indexes(&self) -> &[BitString] {
        &self.indexes
    }

    /// The underlying coding scheme, for variable-length codebooks.
    pub fn coding_scheme(&self) -> Option<&CodingScheme> {
        match &self.strategy {
            TokenStrategy::Tree(s) => Some(s),
            TokenStrategy::Boolean { .. } => None,
        }
    }

    /// Generates minimized token patterns for an alert set.
    ///
    /// # Panics
    /// Panics on out-of-range cells; use [`Self::try_tokens_for`] for a
    /// fallible version.
    pub fn tokens_for(&self, alert_cells: &[usize]) -> Vec<Codeword> {
        for &c in alert_cells {
            assert!(c < self.n_cells(), "cell {c} out of range");
        }
        self.tokens_for_validated(alert_cells)
    }

    /// Fallible [`Self::tokens_for`]: `Err(EncodingError::CellOutOfRange)`
    /// on the first out-of-range alert cell.
    pub fn try_tokens_for(&self, alert_cells: &[usize]) -> Result<Vec<Codeword>, EncodingError> {
        for &cell in alert_cells {
            if cell >= self.n_cells() {
                return Err(EncodingError::CellOutOfRange {
                    cell,
                    n_cells: self.n_cells(),
                });
            }
        }
        Ok(self.tokens_for_validated(alert_cells))
    }

    /// Shared body of the token generators on validated cells.
    fn tokens_for_validated(&self, alert_cells: &[usize]) -> Vec<Codeword> {
        match &self.strategy {
            TokenStrategy::Tree(scheme) => minimize_to_patterns(scheme, alert_cells),
            TokenStrategy::Boolean {
                width,
                codes,
                dont_cares,
            } => {
                let mut minterms: Vec<u64> = alert_cells.iter().map(|&c| codes[c]).collect();
                minterms.sort_unstable();
                minterms.dedup();
                minimize_boolean(&minterms, dont_cares, *width)
            }
        }
    }

    /// Total pairing operations to evaluate the alert against
    /// `num_ciphertexts` ciphertexts (the paper's Figure 9–12 metric).
    pub fn pairing_cost(&self, alert_cells: &[usize], num_ciphertexts: u64) -> u64 {
        crate::minimize::pairing_cost(&self.tokens_for(alert_cells), num_ciphertexts)
    }

    /// Verification helper: token set must cover exactly the alert set.
    pub fn coverage_errors(
        &self,
        tokens: &[Codeword],
        alert_cells: &[usize],
    ) -> (Vec<usize>, Vec<usize>) {
        let alerted: std::collections::HashSet<usize> = alert_cells.iter().copied().collect();
        let mut missed = Vec::new();
        let mut false_pos = Vec::new();
        for cell in 0..self.n_cells() {
            let covered = tokens.iter().any(|t| t.matches(self.index_of(cell)));
            if alerted.contains(&cell) && !covered {
                missed.push(cell);
            }
            if !alerted.contains(&cell) && covered {
                false_pos.push(cell);
            }
        }
        (missed, false_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG4_PROBS: [f64; 5] = [0.1, 0.2, 0.5, 0.4, 0.6];

    fn all_kinds() -> Vec<EncoderKind> {
        vec![
            EncoderKind::BasicFixed,
            EncoderKind::GraySgo,
            EncoderKind::Balanced,
            EncoderKind::Huffman,
            EncoderKind::BaryHuffman(3),
            EncoderKind::BaryHuffman(4),
        ]
    }

    #[test]
    fn all_encoders_cover_exactly() {
        for kind in all_kinds() {
            let cb = CellCodebook::build(kind, &FIG4_PROBS);
            for mask in 0u32..32 {
                let alert: Vec<usize> = (0..5).filter(|&c| (mask >> c) & 1 == 1).collect();
                let tokens = cb.tokens_for(&alert);
                let (missed, fp) = cb.coverage_errors(&tokens, &alert);
                assert!(
                    missed.is_empty() && fp.is_empty(),
                    "{}: mask {mask:#b} missed={missed:?} fp={fp:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn indexes_have_uniform_width() {
        for kind in all_kinds() {
            let cb = CellCodebook::build(kind, &FIG4_PROBS);
            for cell in 0..cb.n_cells() {
                assert_eq!(cb.index_of(cell).len(), cb.width_bits(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn tokens_have_codebook_width() {
        for kind in all_kinds() {
            let cb = CellCodebook::build(kind, &FIG4_PROBS);
            for tokens in [cb.tokens_for(&[0]), cb.tokens_for(&[1, 2, 4])] {
                for t in tokens {
                    assert_eq!(t.len(), cb.width_bits(), "{}", kind.name());
                }
            }
        }
    }

    #[test]
    fn huffman_beats_balanced_on_skewed_single_cell() {
        // The most likely cell gets the shortest Huffman code, so single-
        // cell alerts on it are cheaper than under the balanced tree.
        let probs = [0.01, 0.01, 0.02, 0.9, 0.03, 0.01, 0.01, 0.01];
        let huff = CellCodebook::build(EncoderKind::Huffman, &probs);
        let bal = CellCodebook::build(EncoderKind::Balanced, &probs);
        let hot_cell = 3;
        assert!(
            huff.pairing_cost(&[hot_cell], 1) < bal.pairing_cost(&[hot_cell], 1),
            "huffman {} vs balanced {}",
            huff.pairing_cost(&[hot_cell], 1),
            bal.pairing_cost(&[hot_cell], 1)
        );
    }

    #[test]
    fn basic_fixed_ignores_probabilities() {
        let cb1 = CellCodebook::build(EncoderKind::BasicFixed, &[0.9, 0.05, 0.05]);
        let cb2 = CellCodebook::build(EncoderKind::BasicFixed, &[0.05, 0.05, 0.9]);
        assert_eq!(cb1.indexes(), cb2.indexes());
    }

    #[test]
    fn serde_roundtrip() {
        let cb = CellCodebook::build(EncoderKind::Huffman, &FIG4_PROBS);
        let json = serde_json::to_string(&cb).unwrap();
        let back: CellCodebook = serde_json::from_str(&json).unwrap();
        assert_eq!(back.indexes(), cb.indexes());
        assert_eq!(back.width_bits(), cb.width_bits());
        let t1 = cb.tokens_for(&[0, 2, 4]);
        let t2 = back.tokens_for(&[0, 2, 4]);
        assert_eq!(t1, t2);
    }

    #[test]
    fn try_build_and_try_tokens_for_return_typed_errors() {
        assert_eq!(
            CellCodebook::try_build(EncoderKind::Huffman, &[]).unwrap_err(),
            EncodingError::EmptyProbabilities
        );
        assert!(matches!(
            CellCodebook::try_build(EncoderKind::Huffman, &[0.5, f64::NAN]),
            Err(EncodingError::InvalidProbability { cell: 1, .. })
        ));
        assert_eq!(
            CellCodebook::try_build(EncoderKind::BaryHuffman(1), &FIG4_PROBS).unwrap_err(),
            EncodingError::InvalidArity { arity: 1 }
        );

        let cb = CellCodebook::try_build(EncoderKind::Huffman, &FIG4_PROBS).unwrap();
        assert_eq!(
            cb.try_tokens_for(&[1, 9]).unwrap_err(),
            EncodingError::CellOutOfRange {
                cell: 9,
                n_cells: 5
            }
        );
        assert_eq!(cb.try_tokens_for(&[1, 2]).unwrap(), cb.tokens_for(&[1, 2]));
    }

    #[test]
    fn degenerate_distributions_yield_prefixable_codes() {
        // A single cell, a one-hot surface, and an all-zero surface are
        // the degenerate inputs that could tempt an encoder into a
        // zero-length "code"; every kind must instead produce uniform
        // ≥ 1-bit indexes that still cover exactly.
        let surfaces: [&[f64]; 4] = [&[1.0], &[0.0], &[1.0, 0.0], &[1.0, 0.0, 0.0, 0.0]];
        for kind in all_kinds() {
            for probs in surfaces {
                let cb = CellCodebook::try_build(kind, probs)
                    .unwrap_or_else(|e| panic!("{} over {probs:?}: {e}", kind.name()));
                assert!(
                    cb.width_bits() >= 1,
                    "{} over {probs:?}: zero-width codebook",
                    kind.name()
                );
                for cell in 0..cb.n_cells() {
                    assert_eq!(
                        cb.index_of(cell).len(),
                        cb.width_bits(),
                        "{} over {probs:?}: cell {cell} has a non-uniform code",
                        kind.name()
                    );
                }
                // Single-cell alerts on every cell still cover exactly.
                for cell in 0..cb.n_cells() {
                    let tokens = cb.try_tokens_for(&[cell]).unwrap();
                    assert!(!tokens.is_empty());
                    let (missed, fp) = cb.coverage_errors(&tokens, &[cell]);
                    assert!(
                        missed.is_empty() && fp.is_empty(),
                        "{} over {probs:?}: cell {cell} missed={missed:?} fp={fp:?}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EncoderKind::Huffman.name(), "huffman");
        assert_eq!(EncoderKind::BaryHuffman(3).name(), "huffman-3ary");
        assert_eq!(EncoderKind::paper_lineup().len(), 4);
    }
}
