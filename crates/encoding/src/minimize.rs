//! Algorithm 3: **deterministic minimization** of alert-zone tokens on the
//! coding tree.
//!
//! Instead of boolean minimization over fixed-length codes, alerted cells
//! are mapped to their leaf codewords (unique by Thm 2), split into
//! clusters of *consecutive* leaves (tree order), and each cluster is
//! greedily covered by the deepest common subtree roots whose leaf sets are
//! fully alerted — "all leaves under a common subtree root must be alerted;
//! otherwise ... a user would be falsely notified".

use crate::code::Codeword;
use crate::coding_tree::{CharWord, CodingScheme};

/// Runs Algorithm 3: returns the minimized token codewords (character
/// level) for the given set of alerted cells.
///
/// Duplicate cells are tolerated; output order follows tree order. An empty
/// alert set yields no tokens.
///
/// # Panics
/// Panics if any cell id is out of range.
pub fn minimize_tokens(scheme: &CodingScheme, alert_cells: &[usize]) -> Vec<CharWord> {
    let rl = scheme.reference_length();

    // Map alert cells to leaf positions (lines 6-10) and sort so that
    // clusters of consecutive leaves are maximal.
    let mut positions: Vec<usize> = alert_cells
        .iter()
        .map(|&c| {
            assert!(c < scheme.n_cells(), "cell {c} out of range");
            scheme.leaf_position(c)
        })
        .collect();
    positions.sort_unstable();
    positions.dedup();

    // Split into clusters of consecutive positions (lines 11-20).
    let mut clusters: Vec<&[usize]> = Vec::new();
    let mut start = 0;
    for i in 1..=positions.len() {
        if i == positions.len() || positions[i] != positions[i - 1] + 1 {
            clusters.push(&positions[start..i]);
            start = i;
        }
    }

    // Greedy maximal-subtree covering per cluster (lines 21-37).
    let mut tokens = Vec::new();
    for cluster_positions in clusters {
        let words: Vec<CharWord> = cluster_positions
            .iter()
            .map(|&p| scheme.leaves()[p].clone())
            .collect();
        let mut lo = 0;
        while lo < words.len() {
            let mut l = words.len() - lo;
            loop {
                if l == 1 {
                    tokens.push(words[lo].clone());
                    lo += 1;
                    break;
                }
                let prefix = CharWord::common_prefix(&words[lo..lo + l]);
                let padded = prefix.pad_stars_to(rl);
                if scheme.parent_dict().get(&padded) == Some(&l) {
                    tokens.push(padded);
                    lo += l;
                    break;
                }
                l -= 1;
            }
        }
    }
    tokens
}

/// Convenience: minimize and expand to bit-level HVE patterns.
pub fn minimize_to_patterns(scheme: &CodingScheme, alert_cells: &[usize]) -> Vec<Codeword> {
    minimize_tokens(scheme, alert_cells)
        .iter()
        .map(|w| scheme.expand_codeword(w))
        .collect()
}

/// Test/verification helper: checks that a token set covers **exactly** the
/// alert set — every alerted cell's index matches some token, and no
/// non-alerted cell's index matches any token. Returns the misclassified
/// cells `(missed, false_positives)`.
pub fn coverage_errors(
    scheme: &CodingScheme,
    tokens: &[Codeword],
    alert_cells: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    let alerted: std::collections::HashSet<usize> = alert_cells.iter().copied().collect();
    let mut missed = Vec::new();
    let mut false_pos = Vec::new();
    for cell in 0..scheme.n_cells() {
        let covered = tokens.iter().any(|t| t.matches(scheme.index_of(cell)));
        if alerted.contains(&cell) && !covered {
            missed.push(cell);
        }
        if !alerted.contains(&cell) && covered {
            false_pos.push(cell);
        }
    }
    (missed, false_pos)
}

/// Total number of non-star *bits* across expanded tokens — the HVE cost
/// driver ("the number of expensive bilinear maps is proportional to the
/// count of non-star bits", §2.1).
pub fn non_star_cost(patterns: &[Codeword]) -> u64 {
    patterns.iter().map(|p| p.non_star_count() as u64).sum()
}

/// Pairing operations for evaluating `patterns` against `num_ciphertexts`
/// ciphertexts: each (token, ciphertext) evaluation costs `1 + 2·non_star`
/// pairings (§2.1, Eq. 2).
pub fn pairing_cost(patterns: &[Codeword], num_ciphertexts: u64) -> u64 {
    patterns
        .iter()
        .map(|p| 1 + 2 * p.non_star_count() as u64)
        .sum::<u64>()
        * num_ciphertexts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding_tree::CodingScheme;
    use crate::huffman::{build_bary_huffman_tree, build_huffman_tree};

    const FIG4_PROBS: [f64; 5] = [0.1, 0.2, 0.5, 0.4, 0.6];

    fn fig4_scheme() -> CodingScheme {
        CodingScheme::from_tree(&build_huffman_tree(&FIG4_PROBS))
    }

    #[test]
    fn paper_running_example() {
        // §3.3: alert cells with indexes [001, 100, 110] map to leaves
        // [001, 10*, 11*]; clusters [001] and [10*, 11*]; tokens
        // {001, 1**}. Index 001 belongs to cell 1 under Algorithm 2's
        // deterministic child order (see coding_tree tests).
        let scheme = fig4_scheme();
        let tokens = minimize_tokens(&scheme, &[1, 2, 4]);
        let strs: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, vec!["001", "1**"]);
    }

    #[test]
    fn full_grid_collapses_to_root() {
        let scheme = fig4_scheme();
        let tokens = minimize_tokens(&scheme, &[0, 1, 2, 3, 4]);
        let strs: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, vec!["***"]);
    }

    #[test]
    fn single_cell_uses_leaf_codeword() {
        let scheme = fig4_scheme();
        let tokens = minimize_tokens(&scheme, &[4]);
        let strs: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, vec!["11*"]);
    }

    #[test]
    fn subtree_cluster_compresses() {
        // v2 (000) and v1 (001) are the two leaves of subtree 00*.
        let scheme = fig4_scheme();
        let tokens = minimize_tokens(&scheme, &[0, 1]);
        let strs: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, vec!["00*"]);
    }

    #[test]
    fn consecutive_but_not_a_subtree_stays_split() {
        // Leaves 01* (v4) and 10* (v3) are consecutive in tree order but
        // their common ancestor (the root) has 5 leaves, so they cannot
        // merge.
        let scheme = fig4_scheme();
        let tokens = minimize_tokens(&scheme, &[3, 2]);
        let strs: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, vec!["01*", "10*"]);
    }

    #[test]
    fn left_branch_collapses() {
        // v2, v1, v4 are exactly the 3 leaves of subtree 0**.
        let scheme = fig4_scheme();
        let tokens = minimize_tokens(&scheme, &[0, 1, 3]);
        let strs: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, vec!["0**"]);
    }

    #[test]
    fn empty_and_duplicate_inputs() {
        let scheme = fig4_scheme();
        assert!(minimize_tokens(&scheme, &[]).is_empty());
        let tokens = minimize_tokens(&scheme, &[2, 2, 2]);
        assert_eq!(tokens.len(), 1);
    }

    #[test]
    fn coverage_is_exact_for_all_32_subsets() {
        // Exhaustive: every subset of the 5-cell grid must be covered
        // exactly (no false positives / negatives) after expansion.
        let scheme = fig4_scheme();
        for mask in 0u32..32 {
            let alert: Vec<usize> = (0..5).filter(|&c| (mask >> c) & 1 == 1).collect();
            let patterns = minimize_to_patterns(&scheme, &alert);
            let (missed, false_pos) = coverage_errors(&scheme, &patterns, &alert);
            assert!(missed.is_empty(), "mask {mask:#b}: missed {missed:?}");
            assert!(
                false_pos.is_empty(),
                "mask {mask:#b}: false positives {false_pos:?}"
            );
        }
    }

    #[test]
    fn ternary_coverage_exact() {
        let tree = build_bary_huffman_tree(&FIG4_PROBS, 3);
        let scheme = CodingScheme::from_tree(&tree);
        for mask in 0u32..32 {
            let alert: Vec<usize> = (0..5).filter(|&c| (mask >> c) & 1 == 1).collect();
            let patterns = minimize_to_patterns(&scheme, &alert);
            let (missed, false_pos) = coverage_errors(&scheme, &patterns, &alert);
            assert!(missed.is_empty() && false_pos.is_empty(), "mask {mask:#b}");
        }
    }

    #[test]
    fn cost_helpers() {
        let scheme = fig4_scheme();
        let patterns = minimize_to_patterns(&scheme, &[0, 2, 4]);
        // tokens 001 (3 non-star) + 1** (1 non-star) = 4 non-star bits
        assert_eq!(non_star_cost(&patterns), 4);
        // pairing cost per ciphertext: (1+2*3) + (1+2*1) = 10
        assert_eq!(pairing_cost(&patterns, 1), 10);
        assert_eq!(pairing_cost(&patterns, 7), 70);
    }

    #[test]
    fn aggregation_reduces_cost_versus_naive() {
        // §2.2: aggregating tokens must never cost more than one token per
        // alerted cell.
        let scheme = fig4_scheme();
        for mask in 1u32..32 {
            let alert: Vec<usize> = (0..5).filter(|&c| (mask >> c) & 1 == 1).collect();
            let patterns = minimize_to_patterns(&scheme, &alert);
            let naive: u64 = alert
                .iter()
                .map(|&c| 1 + 2 * scheme.index_of(c).len() as u64)
                .sum();
            assert!(
                pairing_cost(&patterns, 1) <= naive,
                "mask {mask:#b}: {} > {naive}",
                pairing_cost(&patterns, 1)
            );
        }
    }
}
