//! Huffman tree construction (Algorithm 2) — binary and B-ary (§4).

use crate::prefix_tree::{NodeId, PrefixTree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority-queue entry; min-heap by (weight, insertion sequence) so that
/// ties break deterministically (FIFO), making every build reproducible.
struct Entry {
    weight: f64,
    seq: u64,
    id: NodeId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need min-first.
        other
            .weight
            .total_cmp(&self.weight)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Builds a binary Huffman tree over cell probabilities (Algorithm 2).
///
/// Leaf `i` corresponds to cell `i` with weight `probs[i]`; internal nodes
/// take the sum of their children. Extraction is deterministic: smallest
/// weight first, FIFO on ties.
///
/// # Panics
/// Panics if `probs` is empty or contains negative/non-finite values.
pub fn build_huffman_tree(probs: &[f64]) -> PrefixTree {
    build_bary_huffman_tree(probs, 2)
}

/// Builds a `B`-ary Huffman tree (§4): each round groups the `B` least
/// probable remaining nodes.
///
/// When `(n - 1) % (B - 1) != 0` the standard dummy-leaf padding (weight 0,
/// no cell) keeps the tree full so that Kraft equality — and therefore the
/// coding-tree construction — holds.
///
/// # Panics
/// Panics if `arity < 2`, `probs` is empty, or probabilities are invalid.
pub fn build_bary_huffman_tree(probs: &[f64], arity: usize) -> PrefixTree {
    assert!(arity >= 2, "Huffman arity must be >= 2");
    assert!(!probs.is_empty(), "at least one cell required");
    for (i, &p) in probs.iter().enumerate() {
        assert!(
            p.is_finite() && p >= 0.0,
            "probability of cell {i} must be finite and non-negative, got {p}"
        );
    }

    let mut tree = PrefixTree::new(arity);
    let mut seq = 0u64;
    let mut heap = BinaryHeap::with_capacity(probs.len() + arity);

    for (cell, &p) in probs.iter().enumerate() {
        let id = tree.add_leaf(p, Some(cell));
        heap.push(Entry { weight: p, seq, id });
        seq += 1;
    }

    // Dummy padding so the final merge consumes exactly `arity` nodes.
    if probs.len() > 1 {
        let rem = (probs.len() - 1) % (arity - 1);
        let dummies = if rem == 0 { 0 } else { arity - 1 - rem };
        for _ in 0..dummies {
            let id = tree.add_leaf(0.0, None);
            heap.push(Entry {
                weight: 0.0,
                seq,
                id,
            });
            seq += 1;
        }
    }

    if heap.len() == 1 {
        // Single cell: wrap in a root so the leaf gets a 1-character code
        // (an empty code cannot be encrypted).
        let only = heap.pop().expect("non-empty").id;
        let root = tree.add_internal(&[only]);
        tree.finalize(root);
        return tree;
    }

    while heap.len() > 1 {
        let take = arity.min(heap.len());
        let mut children = Vec::with_capacity(take);
        let mut weight = 0.0;
        for _ in 0..take {
            let e = heap.pop().expect("heap size checked");
            weight += e.weight;
            children.push(e.id);
        }
        let parent = tree.add_internal(&children);
        heap.push(Entry {
            weight,
            seq,
            id: parent,
        });
        seq += 1;
    }

    let root = heap.pop().expect("single root remains").id;
    tree.finalize(root);
    tree
}

/// Brute-force optimal expected code length over all full binary trees —
/// exponential, only usable for tiny `n`; the property tests compare
/// Huffman against this oracle.
pub fn optimal_average_length_bruteforce(probs: &[f64]) -> f64 {
    fn rec(groups: &[(f64, f64)]) -> f64 {
        // groups: (weight, accumulated cost). Merging two groups costs the
        // combined weight (each merge deepens the subtree by one level).
        if groups.len() == 1 {
            return groups[0].1;
        }
        let mut best = f64::INFINITY;
        for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                let a = groups[i];
                let b = groups[j];
                let merged = (a.0 + b.0, a.1 + b.1 + a.0 + b.0);
                let mut next: Vec<(f64, f64)> = groups
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != i && *k != j)
                    .map(|(_, g)| *g)
                    .collect();
                next.push(merged);
                best = best.min(rec(&next));
            }
        }
        best
    }
    if probs.len() <= 1 {
        return probs.iter().sum::<f64>();
    }
    let groups: Vec<(f64, f64)> = probs.iter().map(|&p| (p, 0.0)).collect();
    rec(&groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG4_PROBS: [f64; 5] = [0.1, 0.2, 0.5, 0.4, 0.6];

    #[test]
    fn fig4_running_example_lengths() {
        // Paper §3.2: Huffman over (0.1, 0.2, 0.5, 0.4, 0.6) yields code
        // lengths {v1:3, v2:3, v3:2, v4:2, v5:2} and RL = 3.
        let tree = build_huffman_tree(&FIG4_PROBS);
        assert_eq!(tree.reference_length(), 3);
        let mut lengths = vec![0usize; 5];
        for leaf in tree.leaves_in_order() {
            let node = tree.node(leaf);
            lengths[node.cell.expect("no dummies for binary")] = node.code.len();
        }
        assert_eq!(lengths, vec![3, 3, 2, 2, 2]);
    }

    #[test]
    fn root_weight_is_total_mass() {
        let tree = build_huffman_tree(&FIG4_PROBS);
        let total: f64 = FIG4_PROBS.iter().sum();
        assert!((tree.node(tree.root()).weight - total).abs() < 1e-9);
    }

    #[test]
    fn uniform_probs_give_balanced_depths() {
        let probs = vec![0.125; 8];
        let tree = build_huffman_tree(&probs);
        assert_eq!(tree.reference_length(), 3);
        for leaf in tree.leaves_in_order() {
            assert_eq!(tree.node(leaf).code.len(), 3);
        }
    }

    #[test]
    fn skewed_probs_give_skewed_depths() {
        // Geometric probabilities force a maximally deep tree.
        let probs = [0.5, 0.25, 0.125, 0.0625, 0.0625];
        let tree = build_huffman_tree(&probs);
        assert_eq!(tree.reference_length(), 4);
        let lens: Vec<usize> = (0..5)
            .map(|c| {
                tree.leaves_in_order()
                    .iter()
                    .find(|&&l| tree.node(l).cell == Some(c))
                    .map(|&l| tree.node(l).code.len())
                    .unwrap()
            })
            .collect();
        assert_eq!(lens, vec![1, 2, 3, 4, 4]);
    }

    #[test]
    fn matches_bruteforce_optimum_small() {
        for probs in [
            vec![0.1, 0.9],
            vec![0.2, 0.3, 0.5],
            vec![0.1, 0.2, 0.5, 0.4, 0.6],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.05, 0.1, 0.15, 0.3, 0.4],
        ] {
            let tree = build_huffman_tree(&probs);
            let opt = optimal_average_length_bruteforce(&probs);
            assert!(
                (tree.average_code_length() - opt).abs() < 1e-9,
                "Huffman {} vs optimal {} for {probs:?}",
                tree.average_code_length(),
                opt
            );
        }
    }

    #[test]
    fn ternary_fig6_example() {
        // §4 Fig. 6a: 3-ary Huffman over the running example groups
        // (v2, v1, v4) first, then (r1, v3, v5); RL = 2.
        let tree = build_bary_huffman_tree(&FIG4_PROBS, 3);
        assert_eq!(tree.reference_length(), 2);
        let code_of = |cell: usize| {
            tree.leaves_in_order()
                .iter()
                .find(|&&l| tree.node(l).cell == Some(cell))
                .map(|&l| tree.node(l).code.clone())
                .unwrap()
        };
        // v3 and v5 sit directly under the root (codes of length 1),
        // v1, v2, v4 under r1 (length 2).
        assert_eq!(code_of(2).len(), 1);
        assert_eq!(code_of(4).len(), 1);
        assert_eq!(code_of(0).len(), 2);
        assert_eq!(code_of(1).len(), 2);
        assert_eq!(code_of(3).len(), 2);
        // no dummies needed: (5-1) % (3-1) == 0
        assert_eq!(tree.leaves_in_order().len(), 5);
    }

    #[test]
    fn bary_dummy_padding() {
        // n = 6, B = 3: (6-1) % 2 = 1 -> one dummy leaf added.
        let probs = [0.1, 0.1, 0.2, 0.2, 0.2, 0.2];
        let tree = build_bary_huffman_tree(&probs, 3);
        let leaves = tree.leaves_in_order();
        assert_eq!(leaves.len(), 7);
        let dummies = leaves
            .iter()
            .filter(|&&l| tree.node(l).cell.is_none())
            .count();
        assert_eq!(dummies, 1);
        // All real cells present exactly once.
        let mut cells: Vec<usize> = leaves.iter().filter_map(|&l| tree.node(l).cell).collect();
        cells.sort_unstable();
        assert_eq!(cells, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_cell_gets_nonempty_code() {
        let tree = build_huffman_tree(&[1.0]);
        assert_eq!(tree.reference_length(), 1);
        let leaves = tree.leaves_in_order();
        assert_eq!(leaves.len(), 1);
        assert_eq!(tree.node(leaves[0]).code, vec![0]);
    }

    #[test]
    fn deterministic_under_ties() {
        let probs = vec![0.25; 16];
        let t1 = build_huffman_tree(&probs);
        let t2 = build_huffman_tree(&probs);
        let codes = |t: &PrefixTree| {
            t.leaves_in_order()
                .iter()
                .map(|&l| (t.node(l).cell, t.node(l).code.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(codes(&t1), codes(&t2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_probability_rejected() {
        build_huffman_tree(&[0.5, -0.1]);
    }
}
