//! Typed errors for the fallible codebook entry points.

use std::fmt;

/// Why a codebook could not be built or queried.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EncodingError {
    /// A codebook over zero cells.
    EmptyProbabilities,
    /// A negative or non-finite likelihood score.
    InvalidProbability {
        /// Offending cell index.
        cell: usize,
        /// Offending value.
        value: f64,
    },
    /// A B-ary Huffman arity below 2.
    InvalidArity {
        /// The requested arity.
        arity: usize,
    },
    /// An alert cell outside the codebook's domain.
    CellOutOfRange {
        /// The offending cell.
        cell: usize,
        /// Number of cells the codebook covers.
        n_cells: usize,
    },
    /// The build produced an empty (zero-length) code for a cell — such a
    /// code cannot prefix any index and cannot be encrypted. Every
    /// built-in encoder pads degenerate distributions (a single cell, or
    /// all mass on one cell) to 1-bit codes, so this is a
    /// defense-in-depth guard for future encoders.
    ZeroWidthCode {
        /// The cell whose code came out empty.
        cell: usize,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::EmptyProbabilities => write!(f, "at least one cell required"),
            EncodingError::InvalidProbability { cell, value } => {
                write!(f, "invalid probability {value} at cell {cell}")
            }
            EncodingError::InvalidArity { arity } => {
                write!(f, "Huffman arity must be >= 2 (got {arity})")
            }
            EncodingError::CellOutOfRange { cell, n_cells } => {
                write!(f, "cell {cell} out of range (codebook covers {n_cells})")
            }
            EncodingError::ZeroWidthCode { cell } => {
                write!(
                    f,
                    "degenerate distribution: cell {cell} received an empty code"
                )
            }
        }
    }
}

impl std::error::Error for EncodingError {}
