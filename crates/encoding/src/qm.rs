//! Quine–McCluskey boolean minimization.
//!
//! The fixed-length baselines (\[14\] "basic HVE" and \[23\] SGO) aggregate
//! alert-cell codes by boolean minimization ("binary expression
//! minimization", §2.2 — e.g. `{100, 000} → *00`; §3.3 — `{0000, 0010,
//! 0110, 0100} → 0**0`). Karnaugh maps are the by-hand method the papers
//! cite; Quine–McCluskey is its algorithmic equivalent: combine implicants
//! differing in one bit, keep the primes, then pick a minimal cover
//! (essential primes + greedy set cover).

use crate::code::{Codeword, Symbol};
use std::collections::{HashMap, HashSet};

/// An implicant over `width` bits: `value` on the non-star positions,
/// `mask` bits set on star positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Implicant {
    value: u64,
    mask: u64,
}

impl Implicant {
    fn covers(&self, minterm: u64) -> bool {
        (minterm | self.mask) == (self.value | self.mask)
    }

    fn to_codeword(self, width: usize) -> Codeword {
        let symbols: Vec<Symbol> = (0..width)
            .rev()
            .map(|i| {
                if (self.mask >> i) & 1 == 1 {
                    Symbol::Star
                } else {
                    Symbol::from_bit((self.value >> i) & 1 == 1)
                }
            })
            .collect();
        Codeword::from_symbols(&symbols)
    }
}

/// Minimizes the boolean function that is 1 exactly on `minterms`
/// (optionally also allowing `dont_cares` to be covered), returning a set
/// of `{0,1,*}` codewords that together match *exactly* the minterms plus
/// possibly some don't-cares, and nothing else.
///
/// `width` is the code length in bits. Typical alert zones have at most a
/// few hundred minterms, well within QM's practical range.
///
/// # Panics
/// Panics if `width > 60` or any term does not fit in `width` bits.
pub fn minimize_boolean(minterms: &[u64], dont_cares: &[u64], width: usize) -> Vec<Codeword> {
    assert!(width <= 60, "QM widths beyond 60 bits are not supported");
    for &m in minterms.iter().chain(dont_cares) {
        assert!(
            width == 64 || m < (1u64 << width),
            "term {m} exceeds width {width}"
        );
    }
    if minterms.is_empty() {
        return Vec::new();
    }

    let minterms: HashSet<u64> = minterms.iter().copied().collect();
    let dont_cares: HashSet<u64> = dont_cares
        .iter()
        .copied()
        .filter(|d| !minterms.contains(d))
        .collect();

    // Phase 1: iteratively combine implicants differing in exactly one
    // non-star bit; uncombined implicants are prime.
    let mut current: HashSet<Implicant> = minterms
        .iter()
        .chain(dont_cares.iter())
        .map(|&m| Implicant { value: m, mask: 0 })
        .collect();
    let mut primes: HashSet<Implicant> = HashSet::new();

    while !current.is_empty() {
        // Group by (mask, popcount of value&!mask) so only candidates that
        // can combine are compared.
        let mut groups: HashMap<(u64, u32), Vec<Implicant>> = HashMap::new();
        for imp in &current {
            let ones = (imp.value & !imp.mask).count_ones();
            groups.entry((imp.mask, ones)).or_default().push(*imp);
        }

        let mut next: HashSet<Implicant> = HashSet::new();
        let mut combined: HashSet<Implicant> = HashSet::new();

        for (&(mask, ones), group) in &groups {
            if let Some(upper) = groups.get(&(mask, ones + 1)) {
                for a in group {
                    for b in upper {
                        let diff = (a.value & !mask) ^ (b.value & !mask);
                        if diff.count_ones() == 1 {
                            combined.insert(*a);
                            combined.insert(*b);
                            next.insert(Implicant {
                                value: a.value & !diff,
                                mask: mask | diff,
                            });
                        }
                    }
                }
            }
        }

        for imp in &current {
            if !combined.contains(imp) {
                primes.insert(*imp);
            }
        }
        current = next;
    }

    // Phase 2: prime-implicant chart over the *required* minterms.
    let minterm_list: Vec<u64> = {
        let mut v: Vec<u64> = minterms.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let prime_list: Vec<Implicant> = {
        let mut v: Vec<Implicant> = primes.into_iter().collect();
        v.sort_unstable();
        v
    };

    let covers: Vec<Vec<usize>> = prime_list
        .iter()
        .map(|p| {
            minterm_list
                .iter()
                .enumerate()
                .filter_map(|(i, &m)| p.covers(m).then_some(i))
                .collect()
        })
        .collect();

    let mut chosen: Vec<usize> = Vec::new();
    let mut uncovered: HashSet<usize> = (0..minterm_list.len()).collect();

    // Essential primes: minterms covered by exactly one prime.
    for (mi, _) in minterm_list.iter().enumerate() {
        let candidates: Vec<usize> = covers
            .iter()
            .enumerate()
            .filter_map(|(pi, c)| c.contains(&mi).then_some(pi))
            .collect();
        if candidates.len() == 1 && !chosen.contains(&candidates[0]) {
            chosen.push(candidates[0]);
            for &covered in &covers[candidates[0]] {
                uncovered.remove(&covered);
            }
        }
    }

    // Greedy cover for the remainder (largest marginal coverage first;
    // ties broken by prime order for determinism).
    while !uncovered.is_empty() {
        let (best, gain) = covers
            .iter()
            .enumerate()
            .filter(|(pi, _)| !chosen.contains(pi))
            .map(|(pi, c)| (pi, c.iter().filter(|m| uncovered.contains(m)).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("primes must cover all minterms");
        assert!(
            gain > 0,
            "cover stalled: primes cannot cover remaining minterms"
        );
        chosen.push(best);
        for &covered in &covers[best] {
            uncovered.remove(&covered);
        }
    }

    chosen.sort_unstable();
    chosen
        .into_iter()
        .map(|pi| prime_list[pi].to_codeword(width))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::BitString;

    /// Oracle: evaluates the token set on every point of the domain.
    fn verify_exact(tokens: &[Codeword], minterms: &[u64], dont_cares: &[u64], width: usize) {
        let minterms: HashSet<u64> = minterms.iter().copied().collect();
        let dont_cares: HashSet<u64> = dont_cares.iter().copied().collect();
        for x in 0..(1u64 << width) {
            let bits = BitString::from_u64(x, width);
            let covered = tokens.iter().any(|t| t.matches(&bits));
            if minterms.contains(&x) {
                assert!(covered, "minterm {x:0width$b} not covered");
            } else if !dont_cares.contains(&x) {
                assert!(!covered, "non-minterm {x:0width$b} wrongly covered");
            }
        }
    }

    #[test]
    fn paper_sec22_example() {
        // §2.2: {100, 000} minimize to *00.
        let tokens = minimize_boolean(&[0b100, 0b000], &[], 3);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].to_string(), "*00");
    }

    #[test]
    fn paper_sec33_example() {
        // §3.3: {0000, 0010, 0110, 0100} minimize to the single token 0**0.
        let tokens = minimize_boolean(&[0b0000, 0b0010, 0b0110, 0b0100], &[], 4);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].to_string(), "0**0");
    }

    #[test]
    fn single_minterm_is_itself() {
        let tokens = minimize_boolean(&[0b101], &[], 3);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].to_string(), "101");
    }

    #[test]
    fn full_domain_collapses_to_all_stars() {
        let tokens = minimize_boolean(&(0..8).collect::<Vec<u64>>(), &[], 3);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].to_string(), "***");
    }

    #[test]
    fn dont_cares_enable_larger_cubes() {
        // minterms {00, 01}, don't care {11}: without DC the best is 0*;
        // with DC 11 the pair {01, 11} can also merge, but 0* already
        // covers everything required, so output stays exact.
        let tokens = minimize_boolean(&[0b00, 0b01], &[0b11], 2);
        verify_exact(&tokens, &[0b00, 0b01], &[0b11], 2);
        // Classic DC win: minterms {0, 2}, don't cares {1, 3} -> single **.
        let tokens = minimize_boolean(&[0b00, 0b10], &[0b01, 0b11], 2);
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].to_string(), "**");
    }

    #[test]
    fn disjoint_minterms_stay_separate() {
        let tokens = minimize_boolean(&[0b000, 0b011], &[], 3);
        assert_eq!(tokens.len(), 2);
        verify_exact(&tokens, &[0b000, 0b011], &[], 3);
    }

    #[test]
    fn exhaustive_width_4_subsets() {
        // Every one of the 2^16 subsets of a 4-bit domain minimizes to an
        // exactly-equivalent cover.
        for mask in 1u32..(1 << 16) {
            // Sample sparsely to keep the test fast but varied.
            if mask % 57 != 0 {
                continue;
            }
            let minterms: Vec<u64> = (0..16).filter(|&b| (mask >> b) & 1 == 1).collect();
            let tokens = minimize_boolean(&minterms, &[], 4);
            verify_exact(&tokens, &minterms, &[], 4);
        }
    }

    #[test]
    fn empty_input_no_tokens() {
        assert!(minimize_boolean(&[], &[], 4).is_empty());
    }

    #[test]
    fn never_worse_than_one_token_per_minterm() {
        for mask in [0x8421u32, 0xff00, 0x0f0f, 0x1234, 0xfedc] {
            let minterms: Vec<u64> = (0..16).filter(|&b| (mask >> b) & 1 == 1).collect();
            let tokens = minimize_boolean(&minterms, &[], 4);
            assert!(tokens.len() <= minterms.len());
            let cost: usize = tokens.iter().map(|t| t.non_star_count()).sum();
            assert!(cost <= 4 * minterms.len());
        }
    }
}
