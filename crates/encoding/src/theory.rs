//! Analytic results of the paper: Poisson alert model (Thm 1), depth
//! bounds (Thm 3, Thm 4), encryption-length overhead `LE` (§5) and code
//! statistics used by Figures 7 and 13.

use crate::prefix_tree::PrefixTree;

/// Euler–Mascheroni constant γ (Table 1; used in the §5 harmonic
/// approximation, Eq. 18).
pub const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;

/// The golden ratio φ = (1 + √5)/2 (Thm 4).
pub const GOLDEN_RATIO: f64 = 1.618_033_988_749_895;

/// Poisson pmf `P(Y = k)` with rate λ (Thm 1 uses λ = 1: the number of
/// alerted cells is approximately `Pois(1)`, so compact zones dominate).
pub fn poisson_pmf(k: u32, lambda: f64) -> f64 {
    let mut log_fact = 0.0;
    for i in 1..=k {
        log_fact += (i as f64).ln();
    }
    (k as f64 * lambda.ln() - lambda - log_fact).exp()
}

/// Thm 1 specialization: `P(Y = k) = e^{-1} / k!`.
pub fn alert_cell_count_pmf(k: u32) -> f64 {
    poisson_pmf(k, 1.0)
}

/// Thm 3: the depth RL of a B-ary Huffman tree with `n` leaves is at most
/// `⌈(n-1)/(B-1)⌉`.
pub fn thm3_depth_bound(n: usize, b: usize) -> usize {
    assert!(b >= 2 && n >= 1);
    (n - 1).div_ceil(b - 1)
}

/// Thm 4 (Buro): the maximum codeword length of a binary Huffman tree is
/// at most `log_φ(1/p_min)` where `p_min` is the smallest *normalized*
/// symbol probability.
pub fn thm4_golden_ratio_bound(p_min: f64) -> f64 {
    assert!(p_min > 0.0 && p_min <= 1.0);
    (1.0 / p_min).ln() / GOLDEN_RATIO.ln()
}

/// Minimum fixed-length RL for `n` symbols over a B-character alphabet:
/// `⌈log_B n⌉` (§5).
pub fn fixed_rl(n: usize, b: usize) -> usize {
    assert!(b >= 2 && n >= 1);
    if n == 1 {
        return 1;
    }
    let mut rl = 0;
    let mut capacity = 1usize;
    while capacity < n {
        capacity = capacity.saturating_mul(b);
        rl += 1;
    }
    rl
}

/// `LE`: the extra reference length a variable-length code pays over the
/// fixed-length minimum (§5). For the binary alphabet
/// `LE = RL_huffman − ⌈log2 n⌉` (Eq. 11); for B-ary the paper multiplies
/// by `B` for the bit expansion (Eq. 14).
pub fn length_excess(rl_variable: usize, n: usize, b: usize) -> i64 {
    let base = fixed_rl(n, b) as i64;
    let diff = rl_variable as i64 - base;
    if b == 2 {
        diff
    } else {
        b as i64 * diff
    }
}

/// Eq. 13: analytic upper bound on binary `LE` given the smallest
/// normalized probability: `log_φ(1/p_n) − ⌈log2 n⌉`.
pub fn le_upper_bound_binary(p_min: f64, n: usize) -> f64 {
    thm4_golden_ratio_bound(p_min) - fixed_rl(n, 2) as f64
}

/// `n`-th harmonic number, exactly for small `n`, with the asymptotic
/// expansion `ln n + γ + 1/(2n)` beyond (Eq. 18's approximation).
pub fn harmonic(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 1_000 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        let nf = n as f64;
        nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf)
    }
}

/// Eq. 16: upper bound on `E[LE(n)]` when the alphabet size `B` is drawn
/// uniformly from `{2, …, n}`:
/// `(Σ_{i=2}^n i(n-1)/(i-1) + Σ i − Σ i⌈log_i n⌉) / (n-1)`.
pub fn expected_le_upper_bound(n: usize) -> f64 {
    assert!(n >= 2);
    let mut sum = 0.0;
    for i in 2..=n {
        let fi = i as f64;
        sum += fi * (n as f64 - 1.0) / (fi - 1.0);
        sum += fi;
        sum -= fi * fixed_rl(n, i) as f64;
    }
    sum / (n as f64 - 1.0)
}

/// Shannon entropy (bits) of a normalized probability vector — the
/// information-theoretic lower bound on average code length.
pub fn entropy_bits(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.log2())
        .sum()
}

/// Statistics of a prefix tree's code lengths over *cells* (dummies
/// excluded), probability-weighted where applicable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeLengthStats {
    /// Probability-weighted average code length `Σ p_i·l_i / Σ p_i`.
    pub weighted_average: f64,
    /// Unweighted mean code length.
    pub mean: f64,
    /// Maximum code length (= RL).
    pub max: usize,
    /// Minimum code length.
    pub min: usize,
    /// `mean / max` — the Fig. 13 "average-to-maximum code length ratio".
    pub avg_to_max_ratio: f64,
}

/// Computes [`CodeLengthStats`] for a finalized tree.
pub fn code_length_stats(tree: &PrefixTree) -> CodeLengthStats {
    let mut total_weight = 0.0;
    let mut weighted = 0.0;
    let mut sum = 0usize;
    let mut count = 0usize;
    let mut max = 0usize;
    let mut min = usize::MAX;
    for leaf in tree.leaves_in_order() {
        let node = tree.node(leaf);
        if node.cell.is_none() {
            continue;
        }
        let l = node.code.len();
        total_weight += node.weight;
        weighted += node.weight * l as f64;
        sum += l;
        count += 1;
        max = max.max(l);
        min = min.min(l);
    }
    assert!(count > 0, "tree has no cells");
    let mean = sum as f64 / count as f64;
    CodeLengthStats {
        weighted_average: if total_weight > 0.0 {
            weighted / total_weight
        } else {
            mean
        },
        mean,
        max,
        min,
        avg_to_max_ratio: mean / max as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::{build_bary_huffman_tree, build_huffman_tree};

    #[test]
    fn poisson_thm1() {
        // P(Y=0) = P(Y=1) = e^-1; maximum at k <= 1 then drops fast (§2.3).
        let p0 = alert_cell_count_pmf(0);
        let p1 = alert_cell_count_pmf(1);
        assert!((p0 - (-1.0f64).exp()).abs() < 1e-12);
        assert!((p0 - p1).abs() < 1e-12);
        assert!(alert_cell_count_pmf(2) < p1);
        assert!(alert_cell_count_pmf(5) < 0.005);
        // pmf sums to ~1
        let total: f64 = (0..30).map(alert_cell_count_pmf).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thm3_bound_holds_empirically() {
        for b in [2usize, 3, 4, 5] {
            for n in [2usize, 5, 17, 64, 100] {
                // Worst case for depth: geometric-ish probabilities.
                let probs: Vec<f64> = (0..n).map(|i| 0.5f64.powi(i.min(40) as i32)).collect();
                let tree = build_bary_huffman_tree(&probs, b);
                assert!(
                    tree.reference_length() <= thm3_depth_bound(n, b),
                    "n={n} B={b}: RL {} > bound {}",
                    tree.reference_length(),
                    thm3_depth_bound(n, b)
                );
            }
        }
    }

    #[test]
    fn thm4_bound_holds_empirically() {
        for n in [3usize, 8, 20, 50] {
            let probs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let total: f64 = probs.iter().sum();
            let normalized: Vec<f64> = probs.iter().map(|p| p / total).collect();
            let tree = build_huffman_tree(&normalized);
            let p_min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                tree.reference_length() as f64 <= thm4_golden_ratio_bound(p_min) + 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn fixed_rl_is_ceil_log() {
        assert_eq!(fixed_rl(1, 2), 1);
        assert_eq!(fixed_rl(2, 2), 1);
        assert_eq!(fixed_rl(5, 2), 3);
        assert_eq!(fixed_rl(1024, 2), 10);
        assert_eq!(fixed_rl(5, 3), 2);
        assert_eq!(fixed_rl(9, 3), 2);
        assert_eq!(fixed_rl(10, 3), 3);
        assert_eq!(fixed_rl(27, 3), 3);
    }

    #[test]
    fn length_excess_binary_and_bary() {
        // uniform probs: Huffman is balanced, LE = 0
        let probs = vec![0.125; 8];
        let tree = build_huffman_tree(&probs);
        assert_eq!(length_excess(tree.reference_length(), 8, 2), 0);
        // skewed probs: positive LE, within Eq. 13's bound
        let probs = [0.6, 0.2, 0.1, 0.05, 0.03, 0.02];
        let total: f64 = probs.iter().sum();
        let norm: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let tree = build_huffman_tree(&norm);
        let le = length_excess(tree.reference_length(), 6, 2);
        assert!(le >= 0);
        let bound = le_upper_bound_binary(0.02 / total, 6);
        assert!(le as f64 <= bound + 1e-9, "LE {le} > bound {bound}");
    }

    #[test]
    fn harmonic_matches_asymptotic() {
        // exact vs expansion agree where they hand over
        let exact: f64 = (1..=1000).map(|i| 1.0 / i as f64).sum();
        let approx = 1000.0f64.ln() + EULER_MASCHERONI + 1.0 / 2000.0;
        assert!((exact - approx).abs() < 1e-6);
        assert!(harmonic(0) == 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!(harmonic(10_000) > harmonic(1_000));
    }

    #[test]
    fn expected_le_bound_grows_linearly() {
        // Eq. 16's dominant term is ~n, so the bound grows without bound
        // but stays sane for small n.
        let b10 = expected_le_upper_bound(10);
        let b100 = expected_le_upper_bound(100);
        assert!(b10 > 0.0);
        assert!(b100 > b10);
    }

    #[test]
    fn entropy_bounds_average_length() {
        // Shannon: H(P) <= L_huffman < H(P) + 1.
        let probs = [0.4, 0.3, 0.2, 0.05, 0.05];
        let tree = build_huffman_tree(&probs);
        let h = entropy_bits(&probs);
        let avg = tree.average_code_length(); // weights sum to 1 here
        assert!(avg >= h - 1e-9, "avg {avg} < entropy {h}");
        assert!(avg < h + 1.0, "avg {avg} >= entropy+1 {}", h + 1.0);
    }

    #[test]
    fn fig13_ratio_decreases_with_grid_size() {
        // Larger grids under the same sigmoid skew produce deeper trees
        // whose average-to-max ratio falls (§7.2 / Fig. 13 trend). The
        // paper samples x ~ U(0,1) per cell (footnote 1); we use a
        // deterministic xorshift so the test is reproducible.
        let mk = |n: usize| {
            let mut state = 0x9e3779b97f4a7c15u64;
            let probs: Vec<f64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let x = (state >> 11) as f64 / (1u64 << 53) as f64;
                    1.0 / (1.0 + (-20.0 * (x - 0.95)).exp())
                })
                .collect();
            let tree = build_huffman_tree(&probs);
            let stats = code_length_stats(&tree);
            Fig13Point {
                ratio: stats.avg_to_max_ratio,
                max: stats.max,
                weighted: stats.weighted_average,
            }
        };
        struct Fig13Point {
            ratio: f64,
            max: usize,
            weighted: f64,
        }
        let small = mk(64);
        let large = mk(4096);
        // Robust structural facts behind the paper's Fig. 13 discussion:
        // the tree stays strictly skewed (average < max) at every size,
        // and the maximum depth grows with the grid.
        assert!(small.ratio > 0.0 && small.ratio < 1.0);
        assert!(large.ratio > 0.0 && large.ratio < 1.0);
        assert!(large.max > small.max, "depth should grow with grid size");
        // High-probability cells keep short codes: the probability-
        // weighted average stays well below the maximum length.
        assert!(large.weighted < 0.5 * large.max as f64);
    }

    #[test]
    fn code_length_stats_basics() {
        let tree = build_huffman_tree(&[0.1, 0.2, 0.5, 0.4, 0.6]);
        let stats = code_length_stats(&tree);
        assert_eq!(stats.max, 3);
        assert_eq!(stats.min, 2);
        assert!((stats.mean - 2.4).abs() < 1e-12);
        assert!((stats.avg_to_max_ratio - 0.8).abs() < 1e-12);
        // weighted average uses normalized weights
        let expected = (0.1 * 3.0 + 0.2 * 3.0 + 0.5 * 2.0 + 0.4 * 2.0 + 0.6 * 2.0) / 1.8;
        assert!((stats.weighted_average - expected).abs() < 1e-12);
    }
}
