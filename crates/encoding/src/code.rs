//! Code representations: binary strings, ternary `{0,1,*}` codewords and
//! B-ary symbol strings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A symbol of the extended binary alphabet `Σ* = {0, 1, *}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Symbol {
    /// Binary zero.
    Zero,
    /// Binary one.
    One,
    /// Wildcard ("don't care").
    Star,
}

impl Symbol {
    /// Creates a non-star symbol from a bit.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Symbol::One
        } else {
            Symbol::Zero
        }
    }

    /// The bit value, or `None` for a star.
    pub fn bit(self) -> Option<bool> {
        match self {
            Symbol::Zero => Some(false),
            Symbol::One => Some(true),
            Symbol::Star => None,
        }
    }

    /// `true` for the wildcard symbol.
    pub fn is_star(self) -> bool {
        self == Symbol::Star
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Symbol::Zero => "0",
            Symbol::One => "1",
            Symbol::Star => "*",
        })
    }
}

/// A variable-length binary string (a prefix code or padded index).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct BitString(Vec<bool>);

impl BitString {
    /// The empty string.
    pub fn new() -> Self {
        BitString(Vec::new())
    }

    /// Builds from bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        BitString(bits.to_vec())
    }

    /// Parses from a `"0101"` literal.
    ///
    /// # Panics
    /// Panics on characters other than `0`/`1` (this is a test/fixture
    /// convenience; use [`BitString::try_parse`] for fallible parsing).
    pub fn parse(s: &str) -> Self {
        Self::try_parse(s).expect("invalid bit character")
    }

    /// Fallible parse from a `"0101"` literal.
    pub fn try_parse(s: &str) -> Option<Self> {
        s.chars()
            .map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(BitString)
    }

    /// The bits.
    pub fn bits(&self) -> &[bool] {
        &self.0
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty string.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends a bit, returning the extended string.
    pub fn push(&self, bit: bool) -> Self {
        let mut v = self.0.clone();
        v.push(bit);
        BitString(v)
    }

    /// Right-pads with `bit` up to `len` (Algorithm 1's index padding).
    pub fn pad_to(&self, len: usize, bit: bool) -> Self {
        let mut v = self.0.clone();
        while v.len() < len {
            v.push(bit);
        }
        BitString(v)
    }

    /// `true` iff `self` is a (strict or equal) prefix of `other`.
    pub fn is_prefix_of(&self, other: &BitString) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Interprets the bits as a big-endian integer.
    pub fn to_u64(&self) -> u64 {
        assert!(self.0.len() <= 64, "bit string exceeds 64 bits");
        self.0.iter().fold(0u64, |acc, &b| (acc << 1) | b as u64)
    }

    /// Builds the `width`-bit big-endian representation of `value`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width <= 64);
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        BitString((0..width).rev().map(|i| (value >> i) & 1 == 1).collect())
    }

    /// Converts to an all-non-star [`Codeword`].
    pub fn to_codeword(&self) -> Codeword {
        Codeword(self.0.iter().map(|&b| Symbol::from_bit(b)).collect())
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// A codeword over the extended alphabet `{0, 1, *}` — the objects living
/// on the paper's *coding tree*, and the shape of HVE token patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Codeword(Vec<Symbol>);

impl Codeword {
    /// The empty codeword.
    pub fn new() -> Self {
        Codeword(Vec::new())
    }

    /// Builds from symbols.
    pub fn from_symbols(symbols: &[Symbol]) -> Self {
        Codeword(symbols.to_vec())
    }

    /// Parses from a `"01*"` literal.
    ///
    /// # Panics
    /// Panics on invalid characters.
    pub fn parse(s: &str) -> Self {
        Codeword(
            s.chars()
                .map(|c| match c {
                    '0' => Symbol::Zero,
                    '1' => Symbol::One,
                    '*' => Symbol::Star,
                    other => panic!("invalid codeword character {other:?}"),
                })
                .collect(),
        )
    }

    /// The symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.0
    }

    /// Length in symbols.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty codeword.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of non-star symbols — the HVE cost driver.
    pub fn non_star_count(&self) -> usize {
        self.0.iter().filter(|s| !s.is_star()).count()
    }

    /// Right-pads with stars up to `len` (Algorithm 1's codeword padding).
    pub fn pad_stars_to(&self, len: usize) -> Self {
        let mut v = self.0.clone();
        while v.len() < len {
            v.push(Symbol::Star);
        }
        Codeword(v)
    }

    /// `true` iff the codeword matches the index: every non-star symbol
    /// equals the corresponding bit (§2.2 matching semantics).
    pub fn matches(&self, index: &BitString) -> bool {
        self.0.len() == index.len()
            && self
                .0
                .iter()
                .zip(index.bits())
                .all(|(s, &b)| s.bit().is_none_or(|sb| sb == b))
    }

    /// Longest common prefix (over raw symbols, stars included) of a
    /// non-empty slice of codewords — the "common bits" step of Alg. 3.
    pub fn common_prefix(words: &[Codeword]) -> Codeword {
        let Some(first) = words.first() else {
            return Codeword::new();
        };
        let mut len = first.len();
        for w in &words[1..] {
            let mut i = 0;
            while i < len && i < w.len() && w.0[i] == first.0[i] {
                i += 1;
            }
            len = i;
        }
        Codeword(first.0[..len].to_vec())
    }

    /// Converts to a [`BitString`] if star-free.
    pub fn to_bitstring(&self) -> Option<BitString> {
        self.0
            .iter()
            .map(|s| s.bit())
            .collect::<Option<Vec<_>>>()
            .map(|bits| BitString::from_bits(&bits))
    }

    /// Replaces stars with zeros (the §4 index finalization step).
    pub fn stars_to_zeros(&self) -> BitString {
        BitString::from_bits(
            &self
                .0
                .iter()
                .map(|s| s.bit().unwrap_or(false))
                .collect::<Vec<_>>(),
        )
    }

    /// Concatenates two codewords.
    pub fn concat(&self, other: &Codeword) -> Codeword {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Codeword(v)
    }
}

impl fmt::Display for Codeword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.0 {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Verifies the prefix property: no code in the set is a prefix of another
/// (§3.1). Returns the offending pair if violated.
pub fn check_prefix_property(codes: &[BitString]) -> Result<(), (usize, usize)> {
    for (i, a) in codes.iter().enumerate() {
        for (j, b) in codes.iter().enumerate() {
            if i != j && a.is_prefix_of(b) {
                return Err((i, j));
            }
        }
    }
    Ok(())
}

/// Kraft sum `Σ 2^{-l_i}` (§3.1, Eq. 5). A prefix code exists iff this is
/// ≤ 1; a *complete* prefix code (full tree) has sum exactly 1.
pub fn kraft_sum(lengths: &[usize]) -> f64 {
    lengths.iter().map(|&l| 0.5f64.powi(l as i32)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstring_basics() {
        let b = BitString::parse("1011");
        assert_eq!(b.len(), 4);
        assert_eq!(b.to_u64(), 0b1011);
        assert_eq!(BitString::from_u64(0b1011, 4), b);
        assert_eq!(b.to_string(), "1011");
        assert_eq!(b.pad_to(6, false).to_string(), "101100");
        assert!(BitString::try_parse("10x").is_none());
    }

    #[test]
    fn prefix_relation() {
        let a = BitString::parse("10");
        let b = BitString::parse("101");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
    }

    #[test]
    fn paper_prefix_code_example() {
        // §3.1: [000, 001, 01, 10, 11] is a prefix code.
        let codes: Vec<_> = ["000", "001", "01", "10", "11"]
            .iter()
            .map(|s| BitString::parse(s))
            .collect();
        assert!(check_prefix_property(&codes).is_ok());
        // Kraft sum of a complete code is exactly 1 (Eq. 5 tight).
        let lengths: Vec<_> = codes.iter().map(|c| c.len()).collect();
        assert!((kraft_sum(&lengths) - 1.0).abs() < 1e-12);

        // [0, 01] violates the prefix property.
        let bad = vec![BitString::parse("0"), BitString::parse("01")];
        assert_eq!(check_prefix_property(&bad), Err((0, 1)));
    }

    #[test]
    fn codeword_matching() {
        let cw = Codeword::parse("*00");
        assert!(cw.matches(&BitString::parse("000")));
        assert!(cw.matches(&BitString::parse("100")));
        assert!(!cw.matches(&BitString::parse("110")));
        assert!(!cw.matches(&BitString::parse("0000"))); // width mismatch
        assert_eq!(cw.non_star_count(), 2);
    }

    #[test]
    fn codeword_padding_and_conversion() {
        let cw = Codeword::parse("10").pad_stars_to(4);
        assert_eq!(cw.to_string(), "10**");
        assert_eq!(cw.to_bitstring(), None);
        assert_eq!(cw.stars_to_zeros().to_string(), "1000");
        let pure = Codeword::parse("101");
        assert_eq!(pure.to_bitstring().unwrap(), BitString::parse("101"));
    }

    #[test]
    fn common_prefix() {
        let words = vec![Codeword::parse("10*"), Codeword::parse("11*")];
        assert_eq!(Codeword::common_prefix(&words).to_string(), "1");
        let words = vec![Codeword::parse("001"), Codeword::parse("01*")];
        assert_eq!(Codeword::common_prefix(&words).to_string(), "0");
        let single = vec![Codeword::parse("01*")];
        assert_eq!(Codeword::common_prefix(&single).to_string(), "01*");
        assert_eq!(Codeword::common_prefix(&[]).to_string(), "");
    }

    #[test]
    fn kraft_inequality_violations() {
        // Three codes of length 1 cannot form a binary prefix code.
        assert!(kraft_sum(&[1, 1, 1]) > 1.0);
        assert!(kraft_sum(&[1, 2, 3, 3]) <= 1.0 + 1e-12);
    }
}
