//! Fixed-length encodings — the baselines the paper compares against.
//!
//! * **Natural** (\[14\], "basic HVE"): cell `i` gets the `⌈log2 n⌉`-bit
//!   binary representation of `i`; all cells are implicitly treated as
//!   equally likely.
//! * **Gray/SGO** (approximating \[23\], the "scaled gray optimizer"): cells
//!   are ranked by alert probability and assigned codes along a Gray-code
//!   walk, so cells with similar likelihood sit at Hamming distance 1 in
//!   code space. This realizes the objective of \[23\]'s hypercube graph
//!   embedding — probability-similar cells get aggregation-friendly codes —
//!   with a deterministic, reproducible construction (see DESIGN.md §5).
//!
//! Both aggregate alert-zone tokens with Quine–McCluskey
//! ([`crate::qm::minimize_boolean`]); codes above `n` are unused and can
//! optionally serve as don't-cares.

use crate::code::BitString;

/// Number of bits for a fixed-length encoding of `n` cells.
pub fn fixed_width(n: usize) -> usize {
    assert!(n > 0, "at least one cell required");
    (usize::BITS - (n - 1).max(1).leading_zeros()) as usize
}

/// Natural binary assignment: cell `i` ↦ `i` as a `fixed_width(n)`-bit
/// code.
pub fn natural_assignment(n: usize) -> Vec<BitString> {
    let width = fixed_width(n);
    (0..n)
        .map(|i| BitString::from_u64(i as u64, width))
        .collect()
}

/// The `i`-th Gray code.
pub fn gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Gray/SGO assignment: rank cells by probability (descending,
/// deterministic tie-break on cell id) and give rank `r` the code
/// `gray(r)`, so consecutive ranks differ in exactly one bit.
///
/// # Panics
/// Panics if `probs` is empty.
pub fn gray_sgo_assignment(probs: &[f64]) -> Vec<BitString> {
    let n = probs.len();
    let width = fixed_width(n);
    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]).then(a.cmp(&b)));

    let mut codes = vec![BitString::new(); n];
    for (rank, &cell) in ranked.iter().enumerate() {
        codes[cell] = BitString::from_u64(gray(rank as u64), width);
    }
    codes
}

/// Codes not assigned to any cell (usable as QM don't-cares: no honest
/// user ever encrypts them).
pub fn unused_codes(assignment: &[BitString]) -> Vec<u64> {
    let width = assignment.first().map_or(0, |c| c.len());
    let used: std::collections::HashSet<u64> = assignment.iter().map(|c| c.to_u64()).collect();
    (0..(1u64 << width)).filter(|c| !used.contains(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_formula() {
        assert_eq!(fixed_width(1), 1);
        assert_eq!(fixed_width(2), 1);
        assert_eq!(fixed_width(3), 2);
        assert_eq!(fixed_width(4), 2);
        assert_eq!(fixed_width(5), 3);
        assert_eq!(fixed_width(1024), 10);
        assert_eq!(fixed_width(1025), 11);
    }

    #[test]
    fn natural_codes_are_sequential() {
        let codes = natural_assignment(5);
        let strs: Vec<String> = codes.iter().map(|c| c.to_string()).collect();
        assert_eq!(strs, vec!["000", "001", "010", "011", "100"]);
    }

    #[test]
    fn gray_sequence() {
        let seq: Vec<u64> = (0..8).map(gray).collect();
        assert_eq!(seq, vec![0, 1, 3, 2, 6, 7, 5, 4]);
        // adjacent Gray codes differ in exactly one bit
        for i in 1..64u64 {
            assert_eq!((gray(i) ^ gray(i - 1)).count_ones(), 1);
        }
    }

    #[test]
    fn gray_sgo_gives_adjacent_codes_to_similar_probs() {
        let probs = [0.9, 0.05, 0.7, 0.5, 0.3];
        let codes = gray_sgo_assignment(&probs);
        // rank order: cell 0 (.9), cell 2 (.7), cell 3 (.5), cell 4 (.3),
        // cell 1 (.05)
        let rank_codes = [&codes[0], &codes[2], &codes[3], &codes[4], &codes[1]];
        for pair in rank_codes.windows(2) {
            let diff = pair[0].to_u64() ^ pair[1].to_u64();
            assert_eq!(diff.count_ones(), 1, "consecutive ranks not adjacent");
        }
    }

    #[test]
    fn assignments_are_permutations() {
        let probs: Vec<f64> = (0..37).map(|i| ((i * 7919) % 101) as f64 / 101.0).collect();
        for codes in [natural_assignment(37), gray_sgo_assignment(&probs)] {
            let mut values: Vec<u64> = codes.iter().map(|c| c.to_u64()).collect();
            values.sort_unstable();
            values.dedup();
            assert_eq!(values.len(), 37, "codes must be distinct");
            assert!(values.iter().all(|&v| v < 64));
        }
    }

    #[test]
    fn unused_codes_complement() {
        let codes = natural_assignment(5);
        assert_eq!(unused_codes(&codes), vec![5, 6, 7]);
        let full = natural_assignment(8);
        assert!(unused_codes(&full).is_empty());
    }
}
