//! Arena-based prefix trees (binary and B-ary).
//!
//! The paper stores five attributes per node — left child, right child,
//! parent, weight and code (§3.2 II) — which we generalize to a `children`
//! vector so the same structure serves binary Huffman, balanced trees and
//! B-ary Huffman (§4). Codes are assigned by the `Traverse` procedure of
//! Algorithm 1: following the `i`-th child edge appends character `i`.

use serde::{Deserialize, Serialize};

/// Index of a node within its [`PrefixTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// One node of a prefix tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Child nodes, ordered; empty for leaves.
    pub children: Vec<NodeId>,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Huffman weight: cell probability for leaves, children sum for
    /// internal nodes.
    pub weight: f64,
    /// Code assigned by traversal: the B-ary character string from the
    /// root (each element in `0..B`).
    pub code: Vec<u8>,
    /// For leaves: the grid cell this leaf encodes. Dummy leaves (B-ary
    /// padding) and internal nodes carry `None`.
    pub cell: Option<usize>,
}

impl Node {
    /// `true` iff the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A prefix tree over a `B`-character alphabet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixTree {
    nodes: Vec<Node>,
    root: Option<NodeId>,
    arity: usize,
}

impl PrefixTree {
    /// Creates an empty tree over a `B`-character alphabet.
    ///
    /// # Panics
    /// Panics if `arity < 2`.
    pub fn new(arity: usize) -> Self {
        assert!(arity >= 2, "prefix trees need arity >= 2");
        PrefixTree {
            nodes: Vec::new(),
            root: None,
            arity,
        }
    }

    /// Alphabet size `B`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Adds a leaf for `cell` with the given weight; `cell = None` creates
    /// a dummy leaf (used by B-ary padding).
    pub fn add_leaf(&mut self, weight: f64, cell: Option<usize>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            children: Vec::new(),
            parent: None,
            weight,
            code: Vec::new(),
            cell,
        });
        id
    }

    /// Adds an internal node adopting `children` (their weights are
    /// summed, Huffman-style).
    ///
    /// # Panics
    /// Panics if `children` is empty, exceeds the arity, or contains a node
    /// that already has a parent.
    pub fn add_internal(&mut self, children: &[NodeId]) -> NodeId {
        assert!(!children.is_empty(), "internal nodes need children");
        assert!(
            children.len() <= self.arity,
            "internal node exceeds tree arity"
        );
        let id = NodeId(self.nodes.len() as u32);
        let weight = children.iter().map(|c| self.node(*c).weight).sum();
        for &c in children {
            let child = &mut self.nodes[c.0 as usize];
            assert!(child.parent.is_none(), "child already has a parent");
            child.parent = Some(id);
        }
        self.nodes.push(Node {
            children: children.to_vec(),
            parent: None,
            weight,
            code: Vec::new(),
            cell: None,
        });
        id
    }

    /// Declares `root` the tree root and runs the code-assignment traversal
    /// of Algorithm 1 (`Traverse`): the `i`-th child edge appends character
    /// `i` to the parent's code.
    pub fn finalize(&mut self, root: NodeId) {
        self.root = Some(root);
        self.nodes[root.0 as usize].code = Vec::new();
        // Iterative DFS to avoid recursion limits on deep (skewed) trees.
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let code = self.node(id).code.clone();
            let children = self.node(id).children.clone();
            for (i, child) in children.iter().enumerate() {
                let mut child_code = code.clone();
                child_code.push(i as u8);
                self.nodes[child.0 as usize].code = child_code;
                stack.push(*child);
            }
        }
    }

    /// The root node.
    ///
    /// # Panics
    /// Panics if [`PrefixTree::finalize`] has not run.
    pub fn root(&self) -> NodeId {
        self.root.expect("tree not finalized")
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Reference length RL: the depth of the tree in characters (§3.1 —
    /// "the tree's depth... also indicates the maximum length of a prefix
    /// code").
    pub fn reference_length(&self) -> usize {
        self.leaves_in_order()
            .iter()
            .map(|&l| self.node(l).code.len())
            .max()
            .unwrap_or(0)
    }

    /// Leaves in left-to-right tree order ("ordered as they appear on the
    /// tree while traversing; no two edges of the tree cross path", §3.3).
    pub fn leaves_in_order(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if node.is_leaf() {
                out.push(id);
            } else {
                // push right-to-left so the leftmost child pops first
                for child in node.children.iter().rev() {
                    stack.push(*child);
                }
            }
        }
        out
    }

    /// Internal (subtree-root) nodes in traversal order.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if !node.is_leaf() {
                out.push(id);
                for child in node.children.iter().rev() {
                    stack.push(*child);
                }
            }
        }
        out
    }

    /// Number of leaf descendants of `id` (counting `id` itself when it is
    /// a leaf) — the values stored in Algorithm 3's `parentDict`.
    pub fn descendant_leaf_count(&self, id: NodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if node.is_leaf() {
                count += 1;
            } else {
                stack.extend(node.children.iter().copied());
            }
        }
        count
    }

    /// Expected (probability-weighted) code length `L(C(P)) = Σ p_i·len(c_i)`
    /// over real (non-dummy) leaves — the §3.1 minimization objective.
    pub fn average_code_length(&self) -> f64 {
        self.leaves_in_order()
            .iter()
            .filter(|&&l| self.node(l).cell.is_some())
            .map(|&l| {
                let n = self.node(l);
                n.weight * n.code.len() as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds the Fig. 4b tree:
    /// root r4 -> (r2 -> (r1 -> (v2, v1), v4), r3 is implicit via (v3, v5)).
    /// Weights follow the paper's running example.
    fn fig4_tree() -> (PrefixTree, Vec<NodeId>) {
        let mut t = PrefixTree::new(2);
        let v1 = t.add_leaf(0.1, Some(0));
        let v2 = t.add_leaf(0.2, Some(1));
        let v3 = t.add_leaf(0.5, Some(2));
        let v4 = t.add_leaf(0.4, Some(3));
        let v5 = t.add_leaf(0.6, Some(4));
        let r1 = t.add_internal(&[v2, v1]);
        let r2 = t.add_internal(&[r1, v4]);
        let r3 = t.add_internal(&[v3, v5]);
        let r4 = t.add_internal(&[r2, r3]);
        t.finalize(r4);
        (t, vec![v1, v2, v3, v4, v5])
    }

    #[test]
    fn fig4_codes() {
        let (t, v) = fig4_tree();
        // Paper §3.2 III: v1:001, v2:000, v3:10, v4:01, v5:11.
        assert_eq!(t.node(v[0]).code, vec![0, 0, 1]);
        assert_eq!(t.node(v[1]).code, vec![0, 0, 0]);
        assert_eq!(t.node(v[2]).code, vec![1, 0]);
        assert_eq!(t.node(v[3]).code, vec![0, 1]);
        assert_eq!(t.node(v[4]).code, vec![1, 1]);
        assert_eq!(t.reference_length(), 3);
    }

    #[test]
    fn fig4_leaf_order_and_counts() {
        let (t, v) = fig4_tree();
        // §3.3: leaves in order [v2, v1, v4, v3, v5].
        assert_eq!(t.leaves_in_order(), vec![v[1], v[0], v[3], v[2], v[4]]);
        // parentDict counts: [00*: 2, 0**: 3, 1**: 2, ***: 5]
        let internals = t.internal_nodes();
        let mut counts: Vec<(Vec<u8>, usize)> = internals
            .iter()
            .map(|&n| (t.node(n).code.clone(), t.descendant_leaf_count(n)))
            .collect();
        counts.sort();
        assert_eq!(
            counts,
            vec![(vec![], 5), (vec![0], 3), (vec![0, 0], 2), (vec![1], 2),]
        );
    }

    #[test]
    fn weights_propagate() {
        let (t, _) = fig4_tree();
        let root = t.root();
        assert!((t.node(root).weight - 1.8).abs() < 1e-9);
        assert!(
            (t.average_code_length() - (0.1 * 3.0 + 0.2 * 3.0 + 0.5 * 2.0 + 0.4 * 2.0 + 0.6 * 2.0))
                .abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn double_adoption_rejected() {
        let mut t = PrefixTree::new(2);
        let a = t.add_leaf(0.5, Some(0));
        let b = t.add_leaf(0.5, Some(1));
        let _r1 = t.add_internal(&[a, b]);
        let _r2 = t.add_internal(&[a]);
    }

    #[test]
    fn ternary_tree_codes() {
        // Fig. 6a: 3-ary tree; r1=(v2,v1,v4), root=(r1,v3,v5).
        let mut t = PrefixTree::new(3);
        let v1 = t.add_leaf(0.1, Some(0));
        let v2 = t.add_leaf(0.2, Some(1));
        let v3 = t.add_leaf(0.5, Some(2));
        let v4 = t.add_leaf(0.4, Some(3));
        let v5 = t.add_leaf(0.6, Some(4));
        let r1 = t.add_internal(&[v2, v1, v4]);
        let root = t.add_internal(&[r1, v3, v5]);
        t.finalize(root);
        // prefix code '02' is generated by adding '0' at r1 then '2' at v4
        assert_eq!(t.node(v4).code, vec![0, 2]);
        assert_eq!(t.node(v3).code, vec![1]);
        assert_eq!(t.node(v5).code, vec![2]);
        assert_eq!(t.reference_length(), 2);
    }

    #[test]
    fn deep_skewed_tree_no_stack_overflow() {
        // 2000-deep comb tree exercises the iterative traversals.
        let mut t = PrefixTree::new(2);
        let mut current = t.add_leaf(1.0, Some(0));
        for i in 1..2000 {
            let leaf = t.add_leaf(1.0, Some(i));
            current = t.add_internal(&[current, leaf]);
        }
        t.finalize(current);
        assert_eq!(t.reference_length(), 1999);
        assert_eq!(t.leaves_in_order().len(), 2000);
    }
}
