//! The coding scheme of Algorithm 1: grid **indexes** (zero-padded prefix
//! codes used by mobile users) and the **coding tree** (star-padded
//! codewords used by the TA for token minimization), plus the §4 expansion
//! of B-ary characters to bit vectors.

use crate::code::{BitString, Codeword, Symbol};
use crate::prefix_tree::PrefixTree;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A codeword at B-ary *character* granularity: `Some(c)` is character
/// `c ∈ 0..B`, `None` is the star character. For the binary alphabet this
/// coincides with [`Codeword`]; for `B > 2` it is the pre-expansion form of
/// §4.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CharWord(Vec<Option<u8>>);

impl CharWord {
    /// Builds from raw characters.
    pub fn from_chars(chars: &[Option<u8>]) -> Self {
        CharWord(chars.to_vec())
    }

    /// The characters.
    pub fn chars(&self) -> &[Option<u8>] {
        &self.0
    }

    /// Length in characters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty word.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of non-star characters.
    pub fn non_star_count(&self) -> usize {
        self.0.iter().filter(|c| c.is_some()).count()
    }

    /// Right-pads with stars to `len`.
    pub fn pad_stars_to(&self, len: usize) -> Self {
        let mut v = self.0.clone();
        while v.len() < len {
            v.push(None);
        }
        CharWord(v)
    }

    /// Longest common prefix of a slice of words (raw characters, stars
    /// included) — Alg. 3 line 26.
    pub fn common_prefix(words: &[CharWord]) -> CharWord {
        let Some(first) = words.first() else {
            return CharWord(Vec::new());
        };
        let mut len = first.len();
        for w in &words[1..] {
            let mut i = 0;
            while i < len && i < w.len() && w.0[i] == first.0[i] {
                i += 1;
            }
            len = i;
        }
        CharWord(first.0[..len].to_vec())
    }
}

impl fmt::Display for CharWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.0 {
            match c {
                Some(v) => write!(f, "{v}")?,
                None => f.write_str("*")?,
            }
        }
        Ok(())
    }
}

mod parent_dict_serde {
    use super::CharWord;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(
        map: &HashMap<CharWord, usize>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(&CharWord, &usize)> = map.iter().collect();
        entries.sort_by(|a, b| a.0.chars().cmp(b.0.chars()));
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<HashMap<CharWord, usize>, D::Error> {
        let entries: Vec<(CharWord, usize)> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

/// The full coding scheme produced by Algorithm 1 from a prefix tree:
/// per-cell indexes, the coding tree (leaf codewords + `parentDict`) and
/// the expansion machinery for B-ary alphabets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodingScheme {
    arity: usize,
    rl: usize,
    width_bits: usize,
    n_cells: usize,
    /// Raw prefix code (tree path characters) per cell.
    cell_codes: Vec<Vec<u8>>,
    /// Final binary index per cell (zero-padded; expanded for B > 2).
    cell_indexes: Vec<BitString>,
    /// Star-padded leaf codewords in tree order (dummy leaves included).
    leaves: Vec<CharWord>,
    /// Cell of each leaf position (`None` = dummy).
    leaf_cell: Vec<Option<usize>>,
    /// Leaf position of each cell (the Thm 2 bijection).
    leaf_pos_of_cell: Vec<usize>,
    /// Algorithm 3's `parentDict`: padded internal-node codeword →
    /// number of descendant leaves. (Serialized as an association list —
    /// JSON map keys must be strings.)
    #[serde(with = "parent_dict_serde")]
    parent_dict: HashMap<CharWord, usize>,
}

impl CodingScheme {
    /// Runs Algorithm 1 over a finalized prefix tree.
    ///
    /// # Panics
    /// Panics if the tree has no cells or a cell id is repeated.
    pub fn from_tree(tree: &PrefixTree) -> Self {
        let arity = tree.arity();
        let rl = tree.reference_length();
        let width_bits = if arity == 2 { rl } else { arity * rl };

        let leaf_ids = tree.leaves_in_order();
        let mut leaves = Vec::with_capacity(leaf_ids.len());
        let mut leaf_cell = Vec::with_capacity(leaf_ids.len());
        let mut cells: Vec<(usize, Vec<u8>)> = Vec::new();

        for (pos, &leaf) in leaf_ids.iter().enumerate() {
            let node = tree.node(leaf);
            let word = CharWord(node.code.iter().map(|&c| Some(c)).collect()).pad_stars_to(rl);
            leaves.push(word);
            leaf_cell.push(node.cell);
            if let Some(cell) = node.cell {
                cells.push((cell, node.code.clone()));
                // pos recorded below once n_cells is known
                let _ = pos;
            }
        }

        let n_cells = cells.len();
        assert!(n_cells > 0, "tree encodes no cells");
        let mut cell_codes = vec![Vec::new(); n_cells];
        let mut leaf_pos_of_cell = vec![usize::MAX; n_cells];
        for (pos, cell_opt) in leaf_cell.iter().enumerate() {
            if let Some(cell) = cell_opt {
                assert!(
                    leaf_pos_of_cell[*cell] == usize::MAX,
                    "cell {cell} appears on multiple leaves"
                );
                leaf_pos_of_cell[*cell] = pos;
            }
        }
        for (cell, code) in cells {
            cell_codes[cell] = code;
        }

        // Grid indexes (Algorithm 1, step III): zero-pad to RL, then (§4)
        // expand characters to bits and turn residual stars into zeros.
        let cell_indexes: Vec<BitString> = (0..n_cells)
            .map(|cell| Self::index_bits(arity, rl, &cell_codes[cell]))
            .collect();

        // parentDict (Algorithm 3 initialization).
        let mut parent_dict = HashMap::new();
        for node_id in tree.internal_nodes() {
            let node = tree.node(node_id);
            let word = CharWord(node.code.iter().map(|&c| Some(c)).collect()).pad_stars_to(rl);
            parent_dict.insert(word, tree.descendant_leaf_count(node_id));
        }

        CodingScheme {
            arity,
            rl,
            width_bits,
            n_cells,
            cell_codes,
            cell_indexes,
            leaves,
            leaf_cell,
            leaf_pos_of_cell,
            parent_dict,
        }
    }

    fn index_bits(arity: usize, rl: usize, code: &[u8]) -> BitString {
        if arity == 2 {
            // Binary: prefix code bits, zero-padded to RL (§3.2 III).
            let bits: Vec<bool> = code.iter().map(|&c| c == 1).collect();
            BitString::from_bits(&bits).pad_to(rl, false)
        } else {
            // B-ary (§4): data character i -> one-hot block (star bits
            // become zeros); padding characters -> all-zero blocks.
            let mut bits = Vec::with_capacity(arity * rl);
            for &c in code {
                for j in 0..arity {
                    bits.push(j == c as usize);
                }
            }
            while bits.len() < arity * rl {
                bits.push(false);
            }
            BitString::from_bits(&bits)
        }
    }

    /// Alphabet size `B`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Reference length RL in characters.
    pub fn reference_length(&self) -> usize {
        self.rl
    }

    /// HVE width `l` in bits: `RL` for the binary alphabet, `B·RL` after
    /// §4 expansion otherwise.
    pub fn width_bits(&self) -> usize {
        self.width_bits
    }

    /// Number of encoded cells.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// The binary index users encrypt for `cell`.
    pub fn index_of(&self, cell: usize) -> &BitString {
        &self.cell_indexes[cell]
    }

    /// All cell indexes.
    pub fn indexes(&self) -> &[BitString] {
        &self.cell_indexes
    }

    /// The raw prefix code (tree path) of `cell`.
    pub fn prefix_code_of(&self, cell: usize) -> &[u8] {
        &self.cell_codes[cell]
    }

    /// Star-padded leaf codewords in tree order (dummies included).
    pub fn leaves(&self) -> &[CharWord] {
        &self.leaves
    }

    /// Cell occupying each leaf position.
    pub fn leaf_cells(&self) -> &[Option<usize>] {
        &self.leaf_cell
    }

    /// Leaf position of `cell` (the Thm 2 bijection, index → unique leaf).
    pub fn leaf_position(&self, cell: usize) -> usize {
        self.leaf_pos_of_cell[cell]
    }

    /// Algorithm 3's `parentDict`.
    pub fn parent_dict(&self) -> &HashMap<CharWord, usize> {
        &self.parent_dict
    }

    /// Expands a character-level codeword into the bit-level HVE pattern
    /// (§4: character `i` ↦ B bits with the `(i+1)`-th set and stars
    /// elsewhere; `*` ↦ B stars). Binary codewords pass through unchanged.
    pub fn expand_codeword(&self, word: &CharWord) -> Codeword {
        assert_eq!(word.len(), self.rl, "codeword must be RL characters");
        if self.arity == 2 {
            let symbols: Vec<Symbol> = word
                .chars()
                .iter()
                .map(|c| match c {
                    Some(v) => Symbol::from_bit(*v == 1),
                    None => Symbol::Star,
                })
                .collect();
            return Codeword::from_symbols(&symbols);
        }
        let mut symbols = Vec::with_capacity(self.width_bits);
        for c in word.chars() {
            match c {
                Some(v) => {
                    for j in 0..self.arity {
                        symbols.push(if j == *v as usize {
                            Symbol::One
                        } else {
                            Symbol::Star
                        });
                    }
                }
                None => {
                    for _ in 0..self.arity {
                        symbols.push(Symbol::Star);
                    }
                }
            }
        }
        Codeword::from_symbols(&symbols)
    }

    /// §4 granularity refinement: the star bits of a cell's expanded index
    /// template can address sub-cells "without violating the structure of
    /// the grid or the coding tree". Returns the `2^s` refined indexes
    /// (`s` = star count); the all-zeros assignment is the cell's original
    /// index. For the binary alphabet there are no spare star bits and the
    /// cell's own index is returned.
    pub fn refinement_indexes(&self, cell: usize) -> Vec<BitString> {
        let template = self.index_template(cell);
        let star_positions: Vec<usize> = template
            .symbols()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_star().then_some(i))
            .collect();
        let s = star_positions.len();
        assert!(s < 24, "refinement would enumerate 2^{s} indexes");
        let mut out = Vec::with_capacity(1 << s);
        for assignment in 0..(1u32 << s) {
            let mut bits: Vec<bool> = template
                .symbols()
                .iter()
                .map(|sym| sym.bit().unwrap_or(false))
                .collect();
            for (k, &pos) in star_positions.iter().enumerate() {
                bits[pos] = (assignment >> k) & 1 == 1;
            }
            out.push(BitString::from_bits(&bits));
        }
        out
    }

    /// The expanded index *template* of a cell: data characters become
    /// one-hot blocks with star bits, padding characters become zero
    /// blocks (the intermediate form of Fig. 5b, before stars are zeroed).
    pub fn index_template(&self, cell: usize) -> Codeword {
        let code = &self.cell_codes[cell];
        if self.arity == 2 {
            return self.cell_indexes[cell].to_codeword();
        }
        let mut symbols = Vec::with_capacity(self.width_bits);
        for &c in code {
            for j in 0..self.arity {
                symbols.push(if j == c as usize {
                    Symbol::One
                } else {
                    Symbol::Star
                });
            }
        }
        while symbols.len() < self.width_bits {
            symbols.push(Symbol::Zero);
        }
        Codeword::from_symbols(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::{build_bary_huffman_tree, build_huffman_tree};

    const FIG4_PROBS: [f64; 5] = [0.1, 0.2, 0.5, 0.4, 0.6];

    #[test]
    fn fig4_indexes_are_zero_padded_prefix_codes() {
        // §3.2 III: the index multiset is {000, 001, 100, 010, 110}.
        // Note: the paper's narrative (§3.2 step 1) swaps the v1/v2 labels
        // relative to Fig. 4a; following Algorithm 2 verbatim (first
        // extracted = left child), the 0.1-probability cell gets 000 and
        // the 0.2 cell gets 001. Lengths and costs are identical.
        let tree = build_huffman_tree(&FIG4_PROBS);
        let scheme = CodingScheme::from_tree(&tree);
        assert_eq!(scheme.reference_length(), 3);
        assert_eq!(scheme.width_bits(), 3);
        let expected = ["000", "001", "100", "010", "110"];
        for (cell, exp) in expected.iter().enumerate() {
            assert_eq!(
                scheme.index_of(cell),
                &BitString::parse(exp),
                "cell v{}",
                cell + 1
            );
        }
    }

    #[test]
    fn fig4_parent_dict() {
        // §3.3: [00*: 2, 0**: 3, 1**: 2, ***: 5].
        let tree = build_huffman_tree(&FIG4_PROBS);
        let scheme = CodingScheme::from_tree(&tree);
        let dict = scheme.parent_dict();
        assert_eq!(dict.len(), 4);
        let get = |s: &str| {
            let chars: Vec<Option<u8>> = s
                .chars()
                .map(|c| match c {
                    '*' => None,
                    d => Some(d as u8 - b'0'),
                })
                .collect();
            dict.get(&CharWord::from_chars(&chars)).copied()
        };
        assert_eq!(get("00*"), Some(2));
        assert_eq!(get("0**"), Some(3));
        assert_eq!(get("1**"), Some(2));
        assert_eq!(get("***"), Some(5));
    }

    #[test]
    fn fig4_leaves_in_order() {
        // §3.3: leaf codewords in tree order are [000, 001, 01*, 10*, 11*]
        // (cells: 0.1-cell, 0.2-cell, v4, v3, v5 — see labeling note above).
        let tree = build_huffman_tree(&FIG4_PROBS);
        let scheme = CodingScheme::from_tree(&tree);
        let printed: Vec<String> = scheme.leaves().iter().map(|w| w.to_string()).collect();
        assert_eq!(printed, vec!["000", "001", "01*", "10*", "11*"]);
        let cells: Vec<Option<usize>> = scheme.leaf_cells().to_vec();
        assert_eq!(cells, vec![Some(0), Some(1), Some(3), Some(2), Some(4)]);
        // bijection: cell -> leaf -> cell
        for cell in 0..5 {
            let pos = scheme.leaf_position(cell);
            assert_eq!(scheme.leaf_cells()[pos], Some(cell));
        }
    }

    #[test]
    fn thm2_bijection_codeword_matches_only_its_index() {
        // Each leaf codeword must match exactly its own cell's index.
        let tree = build_huffman_tree(&FIG4_PROBS);
        let scheme = CodingScheme::from_tree(&tree);
        for (pos, word) in scheme.leaves().iter().enumerate() {
            let pattern = scheme.expand_codeword(word);
            let matches: Vec<usize> = (0..scheme.n_cells())
                .filter(|&c| pattern.matches(scheme.index_of(c)))
                .collect();
            assert_eq!(matches, vec![scheme.leaf_cells()[pos].unwrap()]);
        }
    }

    /// Hand-builds the exact Fig. 6a ternary tree of the paper:
    /// `r1 = (v2, v1, v4)` under character 0 of the root; `v3` under 1,
    /// `v5` under 2. (The deterministic Huffman builder produces an
    /// equivalent-cost tree with a different child order, so paper-exact
    /// assertions use this fixture.)
    fn fig6_tree() -> crate::prefix_tree::PrefixTree {
        let mut t = crate::prefix_tree::PrefixTree::new(3);
        let v1 = t.add_leaf(0.1, Some(0));
        let v2 = t.add_leaf(0.2, Some(1));
        let v3 = t.add_leaf(0.5, Some(2));
        let v4 = t.add_leaf(0.4, Some(3));
        let v5 = t.add_leaf(0.6, Some(4));
        let r1 = t.add_internal(&[v2, v1, v4]);
        let root = t.add_internal(&[r1, v3, v5]);
        t.finalize(root);
        t
    }

    #[test]
    fn ternary_expansion_fig5() {
        // Fig. 5a: codeword '2*' expands to '**1***'.
        let scheme = CodingScheme::from_tree(&fig6_tree());
        assert_eq!(scheme.width_bits(), 6);
        let word = CharWord::from_chars(&[Some(2), None]);
        assert_eq!(scheme.expand_codeword(&word).to_string(), "**1***");
        // '2*' is exactly v5's leaf codeword on the coding tree.
        let pos = scheme.leaf_position(4);
        assert_eq!(scheme.leaves()[pos].to_string(), "2*");
    }

    #[test]
    fn ternary_index_fig5b() {
        // Fig. 5b: index '20' (prefix '2' + zero-pad) expands to '001000'.
        let scheme = CodingScheme::from_tree(&fig6_tree());
        assert_eq!(scheme.prefix_code_of(4), &[2]);
        assert_eq!(scheme.index_of(4), &BitString::parse("001000"));
        // v3 has prefix '1' -> '010' + pad '000'.
        assert_eq!(scheme.prefix_code_of(2), &[1]);
        assert_eq!(scheme.index_of(2), &BitString::parse("010000"));
        // v4 has prefix '02' -> blocks '100' + '001'.
        assert_eq!(scheme.prefix_code_of(3), &[0, 2]);
        assert_eq!(scheme.index_of(3), &BitString::parse("100001"));
    }

    #[test]
    fn ternary_codewords_match_their_cells() {
        // Structural property on the machine-built ternary Huffman tree.
        let tree = build_bary_huffman_tree(&FIG4_PROBS, 3);
        let scheme = CodingScheme::from_tree(&tree);
        for (pos, word) in scheme.leaves().iter().enumerate() {
            let Some(cell) = scheme.leaf_cells()[pos] else {
                continue;
            };
            let pattern = scheme.expand_codeword(word);
            let matches: Vec<usize> = (0..scheme.n_cells())
                .filter(|&c| pattern.matches(scheme.index_of(c)))
                .collect();
            assert_eq!(matches, vec![cell], "leaf {pos}");
        }
    }

    #[test]
    fn fig5b_refinement_example() {
        // §4: cell v5 (index '20' -> '001000') refines into four indexes
        // '001000', '011000', '101000', '111000' via its two star bits.
        let scheme = CodingScheme::from_tree(&fig6_tree());
        let mut refined: Vec<String> = scheme
            .refinement_indexes(4)
            .iter()
            .map(|b| b.to_string())
            .collect();
        refined.sort();
        assert_eq!(refined, vec!["001000", "011000", "101000", "111000"]);
        // The refined indexes still match v5's coding-tree codeword.
        let pos = scheme.leaf_position(4);
        let pattern = scheme.expand_codeword(&scheme.leaves()[pos]);
        for r in scheme.refinement_indexes(4) {
            assert!(pattern.matches(&r));
        }
    }

    #[test]
    fn binary_refinement_is_trivial() {
        let tree = build_huffman_tree(&FIG4_PROBS);
        let scheme = CodingScheme::from_tree(&tree);
        for cell in 0..5 {
            assert_eq!(
                scheme.refinement_indexes(cell),
                vec![scheme.index_of(cell).clone()]
            );
        }
    }

    #[test]
    fn all_indexes_distinct_and_full_width() {
        for arity in [2usize, 3, 4] {
            let probs: Vec<f64> = (0..23).map(|i| 1.0 / (i as f64 + 1.5)).collect();
            let tree = build_bary_huffman_tree(&probs, arity);
            let scheme = CodingScheme::from_tree(&tree);
            let mut seen = std::collections::HashSet::new();
            for cell in 0..scheme.n_cells() {
                let idx = scheme.index_of(cell);
                assert_eq!(idx.len(), scheme.width_bits());
                assert!(
                    seen.insert(idx.clone()),
                    "duplicate index for arity {arity}"
                );
            }
        }
    }
}
