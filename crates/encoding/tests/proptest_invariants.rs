//! Property tests for the encoding stack's core invariants:
//!
//! * prefix property & Kraft equality of generated codes,
//! * Thm 2 bijection (each leaf codeword matches exactly its cell),
//! * Algorithm 3 soundness (tokens cover exactly the alert set),
//! * QM equivalence (boolean cover matches exactly the minterms),
//! * cost dominance (aggregated tokens never cost more than naive
//!   per-cell tokens).

use proptest::prelude::*;
use sla_encoding::code::{check_prefix_property, kraft_sum, BitString};
use sla_encoding::encoder::{CellCodebook, EncoderKind};
use sla_encoding::huffman::{build_bary_huffman_tree, build_huffman_tree};
use sla_encoding::qm::minimize_boolean;
use sla_encoding::CodingScheme;

/// Strategy: a vector of 2..=40 positive probabilities.
fn probs_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1u32..10_000, 2..40)
        .prop_map(|v| v.into_iter().map(|x| x as f64 / 10_000.0).collect())
}

proptest! {
    #[test]
    fn huffman_codes_satisfy_prefix_property_and_kraft(probs in probs_strategy()) {
        let tree = build_huffman_tree(&probs);
        let codes: Vec<BitString> = tree
            .leaves_in_order()
            .iter()
            .map(|&l| {
                BitString::from_bits(
                    &tree.node(l).code.iter().map(|&c| c == 1).collect::<Vec<_>>(),
                )
            })
            .collect();
        prop_assert!(check_prefix_property(&codes).is_ok());
        // Binary Huffman trees are full: Kraft sum is exactly 1.
        let lengths: Vec<usize> = codes.iter().map(|c| c.len()).collect();
        prop_assert!((kraft_sum(&lengths) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thm2_bijection_holds(probs in probs_strategy(), arity in 2usize..5) {
        let tree = build_bary_huffman_tree(&probs, arity);
        let scheme = CodingScheme::from_tree(&tree);
        for (pos, word) in scheme.leaves().iter().enumerate() {
            let Some(cell) = scheme.leaf_cells()[pos] else { continue };
            let pattern = scheme.expand_codeword(word);
            let matched: Vec<usize> = (0..scheme.n_cells())
                .filter(|&c| pattern.matches(scheme.index_of(c)))
                .collect();
            prop_assert_eq!(matched, vec![cell]);
        }
    }

    #[test]
    fn all_encoders_cover_random_zones_exactly(
        probs in probs_strategy(),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..12),
    ) {
        let alert: Vec<usize> = {
            let mut v: Vec<usize> = picks.iter().map(|i| i.index(probs.len())).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for kind in [
            EncoderKind::BasicFixed,
            EncoderKind::GraySgo,
            EncoderKind::Balanced,
            EncoderKind::Huffman,
            EncoderKind::BaryHuffman(3),
        ] {
            let cb = CellCodebook::build(kind, &probs);
            let tokens = cb.tokens_for(&alert);
            let (missed, fp) = cb.coverage_errors(&tokens, &alert);
            prop_assert!(missed.is_empty(), "{}: missed {missed:?}", kind.name());
            prop_assert!(fp.is_empty(), "{}: false positives {fp:?}", kind.name());
        }
    }

    #[test]
    fn aggregation_never_worse_than_naive(
        probs in probs_strategy(),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..12),
    ) {
        let alert: Vec<usize> = {
            let mut v: Vec<usize> = picks.iter().map(|i| i.index(probs.len())).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let cb = CellCodebook::build(EncoderKind::Huffman, &probs);
        let cost = cb.pairing_cost(&alert, 1);
        let naive: u64 = alert
            .iter()
            .map(|&c| 1 + 2 * cb.index_of(c).len() as u64)
            .sum();
        prop_assert!(cost <= naive, "cost {cost} > naive {naive}");
    }

    #[test]
    fn qm_covers_exactly(minterm_mask in 1u64.., width in 3usize..7) {
        let domain = 1u64 << width;
        let minterms: Vec<u64> = (0..domain.min(64))
            .filter(|&b| (minterm_mask >> b) & 1 == 1)
            .collect();
        prop_assume!(!minterms.is_empty());
        let tokens = minimize_boolean(&minterms, &[], width);
        let mset: std::collections::HashSet<u64> = minterms.iter().copied().collect();
        for x in 0..domain {
            let bits = BitString::from_u64(x, width);
            let covered = tokens.iter().any(|t| t.matches(&bits));
            prop_assert_eq!(covered, mset.contains(&x), "x = {}", x);
        }
    }

    #[test]
    fn huffman_not_longer_than_balanced_on_average(probs in probs_strategy()) {
        // Huffman optimality: its probability-weighted average length is
        // minimal among all prefix codes, so <= the balanced tree's.
        let h = build_huffman_tree(&probs);
        let b = sla_encoding::balanced::build_balanced_tree(&probs);
        prop_assert!(h.average_code_length() <= b.average_code_length() + 1e-9);
    }
}
