//! Property tests: every SIMD/lockstep Montgomery kernel must be
//! **byte-identical** to the scalar CIOS oracle.
//!
//! The scalar loop is the reference semantics; the AVX2 digit kernel,
//! the NEON digit kernel and the portable/AVX2 lockstep batch kernels
//! are all required to reproduce it exactly — same limbs, same
//! normalization — for every limb count the vector paths accept
//! (1..=KMAX = 8) and for every batch width, including the ragged
//! remainder lanes. Random moduli here force an exact top limb count
//! so each k in 1..=8 is genuinely exercised, and the directed vectors
//! pin the carry edges (all-ones limbs, operands `N − 1`, zero,
//! zero-padded short operands) that random sampling rarely hits.

use proptest::prelude::*;
use sla_bigint::{BigUint, KernelKind, MontgomeryCtx};

/// Odd modulus with **exactly** `k` limbs: top limb forced nonzero,
/// bottom bit forced set.
fn odd_modulus_exact(limbs: &[u64]) -> BigUint {
    let mut limbs = limbs.to_vec();
    let top = limbs.len() - 1;
    limbs[top] |= 1 << 63; // exact limb count, no normalization shrink
    limbs[0] |= 1; // odd
    BigUint::from_limbs(limbs)
}

/// Reduces `raw` into `[0, n)` so it is a valid kernel operand.
fn reduced(raw: &[u64], n: &BigUint) -> BigUint {
    &BigUint::from_limbs(raw.to_vec()) % n
}

/// Asserts every available kernel agrees with the scalar oracle on one
/// `mont_mul` and on batches of every width in `0..=widths`.
fn assert_all_kernels_agree(ctx: &MontgomeryCtx, a: &BigUint, b: &BigUint, widths: usize) {
    let want = ctx.mont_mul_with(a, b, KernelKind::Scalar);
    for kernel in KernelKind::all_available() {
        let got = ctx.mont_mul_with(a, b, kernel);
        assert_eq!(got, want, "single-op kernel {} diverged", kernel.name());
        assert_eq!(
            got.limbs(),
            want.limbs(),
            "kernel {} produced a non-canonical limb vector",
            kernel.name()
        );
    }

    // Batch parity at every width: lockstep groups of 4 plus the ragged
    // tail must both match a serial scalar map, in order.
    let elems: Vec<BigUint> = (0..widths)
        .map(|i| {
            let mut v = a.clone();
            for _ in 0..i {
                v = ctx.mont_mul_with(&v, b, KernelKind::Scalar);
            }
            v
        })
        .collect();
    let pairs: Vec<(&BigUint, &BigUint)> = elems
        .iter()
        .enumerate()
        .map(|(i, x)| (x, &elems[(i * 7 + 3) % elems.len().max(1)]))
        .collect();
    for w in 0..=pairs.len() {
        let slice = &pairs[..w];
        let want: Vec<BigUint> = slice
            .iter()
            .map(|(x, y)| ctx.mont_mul_with(x, y, KernelKind::Scalar))
            .collect();
        for kernel in KernelKind::all_available() {
            assert_eq!(
                ctx.mont_mul_batch_with(slice, kernel),
                want,
                "batch kernel {} diverged at width {w}",
                kernel.name()
            );
        }
    }
}

proptest! {
    /// Random moduli with an exact top limb for every k in 1..=8, random
    /// reduced operands: all kernels equal the scalar oracle.
    #[test]
    fn kernels_match_scalar_on_random_inputs(
        k in 1usize..9,
        seed in prop::collection::vec(any::<u64>(), 8),
        a_raw in prop::collection::vec(any::<u64>(), 1..9),
        b_raw in prop::collection::vec(any::<u64>(), 1..9),
    ) {
        let n = odd_modulus_exact(&seed[..k]);
        let ctx = MontgomeryCtx::new(&n).expect("odd modulus accepted");
        let a = reduced(&a_raw, &n);
        let b = reduced(&b_raw, &n);
        assert_all_kernels_agree(&ctx, &a, &b, 5);
    }

    /// Batch widths 1..=9 with per-lane random operands: parity with the
    /// serial scalar map must hold element-wise and in order.
    #[test]
    fn batch_widths_match_serial_scalar(
        k in 1usize..9,
        seed in prop::collection::vec(any::<u64>(), 8),
        lanes in prop::collection::vec(prop::collection::vec(any::<u64>(), 8), 1..10),
    ) {
        let n = odd_modulus_exact(&seed[..k]);
        let ctx = MontgomeryCtx::new(&n).expect("odd modulus accepted");
        let elems: Vec<(BigUint, BigUint)> = lanes
            .iter()
            .map(|raw| (reduced(&raw[..4], &n), reduced(&raw[4..], &n)))
            .collect();
        let pairs: Vec<(&BigUint, &BigUint)> =
            elems.iter().map(|(a, b)| (a, b)).collect();
        let want: Vec<BigUint> = pairs
            .iter()
            .map(|(a, b)| ctx.mont_mul_with(a, b, KernelKind::Scalar))
            .collect();
        for kernel in KernelKind::all_available() {
            prop_assert_eq!(
                ctx.mont_mul_batch_with(&pairs, kernel),
                want.clone(),
                "kernel {}", kernel.name()
            );
        }
    }
}

/// Directed carry-edge vectors, exhaustively for every limb count the
/// vector kernels accept: all-ones moduli (maximal `m·N` carries),
/// operands at `N − 1` (maximal partial products), zero and one
/// (degenerate accumulators), and zero-padded short operands (the
/// kernel must not read stale digits past a short slice).
#[test]
fn directed_carry_edges_all_limb_counts() {
    for k in 1usize..=8 {
        // 2^(64k) - 1: every limb all-ones. Odd, exact top limb.
        let all_ones = BigUint::from_limbs(vec![u64::MAX; k]);
        // 2^(64(k-1)) + 1 for k > 1: a single high bit over a long run
        // of zero limbs, so most b-digits are zero mid-loop.
        let sparse = if k > 1 {
            let mut limbs = vec![0u64; k];
            limbs[k - 1] = 1;
            limbs[0] = 1;
            BigUint::from_limbs(limbs)
        } else {
            BigUint::from_u64(3)
        };
        for n in [all_ones, sparse] {
            let ctx = MontgomeryCtx::new(&n).expect("odd modulus accepted");
            let n_minus_1 = &n - &BigUint::one();
            let half = &n >> 1;
            // Zero-padded short operand: value fits in one limb even
            // when the modulus has eight.
            let short = BigUint::from_u64(0xdead_beef_cafe_f00d) % &n;
            let zero = BigUint::zero();
            let one = BigUint::one() % &n;
            let operands = [&n_minus_1, &half, &short, &zero, &one];
            for a in operands {
                for b in operands {
                    assert_all_kernels_agree(&ctx, a, b, 9);
                }
            }
        }
    }
}

/// `mod_mul_batch` (canonical-domain entry) also matches its serial
/// counterpart for unreduced operands across all widths.
#[test]
fn mod_mul_batch_matches_serial_unreduced() {
    let n = odd_modulus_exact(&[0x1234_5678_9abc_def1, 0xfeed_face, u64::MAX]);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus accepted");
    let elems: Vec<BigUint> = (0..9u64)
        .map(|i| BigUint::from_limbs(vec![i.wrapping_mul(0x9e37_79b9_7f4a_7c15); 4]))
        .collect();
    let pairs: Vec<(&BigUint, &BigUint)> = elems
        .iter()
        .enumerate()
        .map(|(i, a)| (a, &elems[(i + 5) % elems.len()]))
        .collect();
    for w in 0..=pairs.len() {
        let want: Vec<BigUint> = pairs[..w].iter().map(|(a, b)| ctx.mod_mul(a, b)).collect();
        assert_eq!(ctx.mod_mul_batch(&pairs[..w]), want, "width {w}");
    }
}
