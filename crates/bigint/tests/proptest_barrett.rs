//! Property tests for Barrett reduction: `BarrettCtx::reduce` must agree
//! with `%` across the **entire** documented input range `[0, 2^{128k})`
//! (`k` = limb count of the modulus), and the q̂-underestimate bound the
//! correction loop relies on (≤ 2 subtractions) is enforced by a
//! `debug_assert!` that these tests exercise — any modulus/input pair
//! violating HAC Theorem 14.43 would abort the run.

use proptest::prelude::*;
use sla_bigint::{BarrettCtx, BigUint};

/// A modulus > 1 from raw limbs (bumps degenerate 0/1 values to 2).
fn modulus_from(limbs: Vec<u64>) -> BigUint {
    let n = BigUint::from_limbs(limbs);
    if n.is_zero() || n.is_one() {
        BigUint::from_u64(2)
    } else {
        n
    }
}

proptest! {
    #[test]
    fn reduce_matches_remainder_across_full_range(
        n_limbs in prop::collection::vec(any::<u64>(), 1..4),
        x_limbs in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let n = modulus_from(n_limbs);
        let k = n.limbs().len();
        let ctx = BarrettCtx::new(&n).expect("n > 1");
        // Clamp x into [0, 2^{128k}): keep at most 2k limbs.
        let x = BigUint::from_limbs(
            x_limbs.into_iter().take(2 * k).collect::<Vec<_>>(),
        );
        prop_assert_eq!(ctx.reduce(&x), &x % &n, "n = {:?}", n);
    }

    #[test]
    fn reduce_matches_remainder_at_range_boundary(
        n_limbs in prop::collection::vec(any::<u64>(), 1..4),
    ) {
        // x = 2^{128k} - 1: the largest in-range input, where the q̂
        // underestimate is most stressed.
        let n = modulus_from(n_limbs);
        let k = n.limbs().len();
        let ctx = BarrettCtx::new(&n).expect("n > 1");
        let max = &BigUint::one().shl_bits(128 * k) - &BigUint::one();
        prop_assert_eq!(ctx.reduce(&max), &max % &n, "n = {:?}", n);
        // And one past the boundary takes the documented cold path.
        let past = BigUint::one().shl_bits(128 * k);
        prop_assert_eq!(ctx.reduce(&past), &past % &n, "n = {:?}", n);
    }

    #[test]
    fn mod_mul_matches_naive_across_limb_counts(
        n_limbs in prop::collection::vec(any::<u64>(), 1..4),
        a_limbs in prop::collection::vec(any::<u64>(), 0..4),
        b_limbs in prop::collection::vec(any::<u64>(), 0..4),
    ) {
        let n = modulus_from(n_limbs);
        let ctx = BarrettCtx::new(&n).expect("n > 1");
        let a = BigUint::from_limbs(a_limbs);
        let b = BigUint::from_limbs(b_limbs);
        prop_assert_eq!(ctx.mod_mul(&a, &b), a.mod_mul(&b, &n), "n = {:?}", n);
    }
}
