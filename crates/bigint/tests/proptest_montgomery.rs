//! Property tests: the Montgomery fast path must agree exactly with the
//! naive division-based arithmetic for random odd moduli of arbitrary
//! limb counts, and `BigUint::mod_pow`'s automatic dispatch must be
//! indistinguishable from either implementation.

use proptest::prelude::*;
use sla_bigint::{BigUint, MontgomeryCtx};

/// Builds an odd modulus > 1 from random limbs.
fn odd_modulus(limbs: &[u64]) -> BigUint {
    let mut m = BigUint::from_limbs(limbs.to_vec());
    m.set_bit(0); // force odd
    if m.is_one() {
        m = BigUint::from_u64(3);
    }
    m
}

proptest! {
    #[test]
    fn mont_mod_mul_matches_naive(
        m in prop::collection::vec(any::<u64>(), 1..6),
        a in prop::collection::vec(any::<u64>(), 1..8),
        b in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let m = odd_modulus(&m);
        let a = BigUint::from_limbs(a);
        let b = BigUint::from_limbs(b);
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus accepted");
        prop_assert_eq!(ctx.mod_mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn mont_mul_domain_is_consistent(
        m in prop::collection::vec(any::<u64>(), 1..5),
        a in prop::collection::vec(any::<u64>(), 1..5),
        b in prop::collection::vec(any::<u64>(), 1..5),
    ) {
        // mont_mul over Montgomery-form operands equals naive mod_mul
        // after round-tripping through the domain conversions.
        let m = odd_modulus(&m);
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus accepted");
        let a = &BigUint::from_limbs(a) % &m;
        let b = &BigUint::from_limbs(b) % &m;
        let product = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        prop_assert_eq!(product, a.mod_mul(&b, &m));
    }

    #[test]
    fn mont_mod_pow_matches_naive(
        m in prop::collection::vec(any::<u64>(), 1..4),
        base in prop::collection::vec(any::<u64>(), 1..4),
        exp in prop::collection::vec(any::<u64>(), 1..3),
    ) {
        let m = odd_modulus(&m);
        let base = BigUint::from_limbs(base);
        let exp = BigUint::from_limbs(exp);
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus accepted");
        let expected = base.mod_pow_naive(&exp, &m);
        prop_assert_eq!(ctx.mod_pow(&base, &exp), expected.clone());
        // The public mod_pow dispatches odd moduli through Montgomery.
        prop_assert_eq!(base.mod_pow(&exp, &m), expected);
    }

    #[test]
    fn dispatch_agrees_for_even_moduli_too(
        m in 2u64..,
        base in any::<u64>(),
        exp in 0u64..2_000,
    ) {
        // Even moduli dispatch to the Barrett ladder inside mod_pow; the
        // result must be the same function as the division-based baseline.
        let m = BigUint::from_u64(m);
        let base = BigUint::from_u64(base);
        let exp = BigUint::from_u64(exp);
        prop_assert_eq!(base.mod_pow(&exp, &m), base.mod_pow_naive(&exp, &m));
    }

    #[test]
    fn fast_path_mod_add_sub_match_reference(
        m in prop::collection::vec(any::<u64>(), 1..5),
        a in prop::collection::vec(any::<u64>(), 1..7),
        b in prop::collection::vec(any::<u64>(), 1..7),
    ) {
        // mod_add/mod_sub now have a division-free fast path for reduced
        // operands; verify both the reduced and unreduced entry points
        // against the plain remainder definition.
        let m = odd_modulus(&m);
        let a = BigUint::from_limbs(a);
        let b = BigUint::from_limbs(b);
        let (ar, br) = (&a % &m, &b % &m);

        prop_assert_eq!(a.mod_add(&b, &m), &(&a + &b) % &m);
        prop_assert_eq!(ar.mod_add(&br, &m), &(&ar + &br) % &m);
        // subtraction reference: (a - b) mod m == (a + (m - b mod m)) mod m
        let expect = &(&ar + &(&m - &br)) % &m;
        prop_assert_eq!(a.mod_sub(&b, &m), expect.clone());
        prop_assert_eq!(ar.mod_sub(&br, &m), expect);
    }
}
