//! Property tests: BigUint arithmetic must agree with `u128` reference
//! arithmetic and satisfy ring axioms on larger operands.

use proptest::prelude::*;
use sla_bigint::BigUint;

fn big(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&big(a as u128) + &big(b as u128), big(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&big(a as u128) * &big(b as u128), big(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(q, big(a / b));
        prop_assert_eq!(r, big(a % b));
    }

    #[test]
    fn sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(&(&big(hi) - &big(lo)) + &big(lo), big(hi));
    }

    #[test]
    fn mul_commutative_multilimb(a in prop::collection::vec(any::<u64>(), 1..8),
                                 b in prop::collection::vec(any::<u64>(), 1..8)) {
        let x = BigUint::from_limbs(a);
        let y = BigUint::from_limbs(b);
        prop_assert_eq!(&x * &y, &y * &x);
    }

    #[test]
    fn mul_distributes_over_add(a in prop::collection::vec(any::<u64>(), 1..6),
                                b in prop::collection::vec(any::<u64>(), 1..6),
                                c in prop::collection::vec(any::<u64>(), 1..6)) {
        let x = BigUint::from_limbs(a);
        let y = BigUint::from_limbs(b);
        let z = BigUint::from_limbs(c);
        prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
    }

    #[test]
    fn div_rem_reconstruction(a in prop::collection::vec(any::<u64>(), 1..8),
                              b in prop::collection::vec(any::<u64>(), 1..5)) {
        let x = BigUint::from_limbs(a);
        let y = BigUint::from_limbs(b);
        prop_assume!(!y.is_zero());
        let (q, r) = x.div_rem(&y);
        prop_assert!(r < y.clone());
        prop_assert_eq!(&(&q * &y) + &r, x);
    }

    #[test]
    fn shift_roundtrip(a in prop::collection::vec(any::<u64>(), 1..6), s in 0usize..200) {
        let x = BigUint::from_limbs(a);
        prop_assert_eq!(x.shl_bits(s).shr_bits(s), x);
    }

    #[test]
    fn decimal_roundtrip(a in prop::collection::vec(any::<u64>(), 1..6)) {
        let x = BigUint::from_limbs(a);
        prop_assert_eq!(BigUint::from_decimal_str(&x.to_decimal_str()).unwrap(), x);
    }

    #[test]
    fn mod_pow_matches_naive(base in any::<u64>(), exp in 0u32..64, m in 2u64..) {
        let m = BigUint::from_u64(m);
        let mut expect = BigUint::one() % &m;
        let b = BigUint::from_u64(base);
        for _ in 0..exp {
            expect = expect.mod_mul(&b, &m);
        }
        prop_assert_eq!(b.mod_pow(&BigUint::from_u64(exp as u64), &m), expect);
    }

    #[test]
    fn gcd_divides_both(a in 1u128.., b in 1u128..) {
        let g = big(a).gcd(&big(b));
        prop_assert!((&big(a) % &g).is_zero());
        prop_assert!((&big(b) % &g).is_zero());
        // gcd via u128 Euclid oracle
        let (mut x, mut y) = (a, b);
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        prop_assert_eq!(g, big(x));
    }

    #[test]
    fn mod_inverse_correct_when_coprime(a in 1u64.., m in 2u64..) {
        let am = BigUint::from_u64(a);
        let mm = BigUint::from_u64(m);
        match am.mod_inverse(&mm) {
            Some(inv) => prop_assert_eq!(am.mod_mul(&inv, &mm), BigUint::one() % &mm),
            None => prop_assert!(!am.gcd(&mm).is_one()),
        }
    }
}
