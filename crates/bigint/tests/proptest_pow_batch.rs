//! Property tests: the lockstep exponentiation ladders must be
//! **byte-identical** to the serial pow paths.
//!
//! `mod_pow_batch` (and `residue_pow_batch`) run N windowed ladders in
//! lockstep — one shared fixed-window schedule, per-lane exponent digits
//! selecting precomputed powers — while serial `mod_pow` takes a
//! per-exponent sliding window. Residues have unique representatives in
//! `[0, N)`, so the two schedules must still agree limb-for-limb on
//! every lane, for every limb count the kernels accept (1..=8), every
//! batch width including ragged tails past the 8/4-wide lockstep
//! groups, and the directed exponent edges (0, 1, all-ones, order − 1)
//! that random sampling rarely hits.
//!
//! The CI matrix reruns this file under `SLA_SIMD=scalar` and
//! `SLA_SIMD=avx2`, which force the dispatch process-globally — the
//! same assertions then pin the forced kernels.

use proptest::prelude::*;
use sla_bigint::{BigUint, MontgomeryCtx, Reducer};

/// Odd modulus with **exactly** `k` limbs: top limb forced nonzero,
/// bottom bit forced set.
fn odd_modulus_exact(limbs: &[u64]) -> BigUint {
    let mut limbs = limbs.to_vec();
    let top = limbs.len() - 1;
    limbs[top] |= 1 << 63;
    limbs[0] |= 1;
    BigUint::from_limbs(limbs)
}

/// Asserts `mod_pow_batch` equals a serial `mod_pow` map at every width
/// prefix of `pairs` (so ragged tails of the 8- and 4-wide lockstep
/// groups are all exercised), and likewise for the residue-domain entry.
fn assert_batch_matches_serial(ctx: &MontgomeryCtx, bases: &[BigUint], exps: &[BigUint]) {
    let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(exps).collect();
    let want: Vec<BigUint> = pairs.iter().map(|(b, e)| ctx.mod_pow(b, e)).collect();
    for w in 0..=pairs.len() {
        let got = ctx.mod_pow_batch(&pairs[..w]);
        assert_eq!(got, want[..w], "width {w}");
        for (g, s) in got.iter().zip(&want[..w]) {
            assert_eq!(
                g.limbs(),
                s.limbs(),
                "non-canonical limb vector at width {w}"
            );
        }
    }
}

proptest! {
    /// Random moduli with an exact top limb for every k in 1..=8, random
    /// reduced bases and random exponents of mixed magnitude: batch
    /// ladders equal the serial pow map at every width (1..=9 lanes, so
    /// both lockstep group sizes and their ragged tails appear).
    #[test]
    fn mod_pow_batch_matches_serial_on_random_inputs(
        k in 1usize..9,
        seed in prop::collection::vec(any::<u64>(), 8),
        lanes in prop::collection::vec(prop::collection::vec(any::<u64>(), 4), 1..10),
        exp_limbs in 1usize..5,
    ) {
        let n = odd_modulus_exact(&seed[..k]);
        let ctx = MontgomeryCtx::new(&n).expect("odd modulus accepted");
        let bases: Vec<BigUint> = lanes
            .iter()
            .map(|raw| &BigUint::from_limbs(raw[..2].to_vec()) % &n)
            .collect();
        // Exponents of varying bit length so lanes disagree on digit
        // counts and the shared schedule must pad/mask correctly.
        let exps: Vec<BigUint> = lanes
            .iter()
            .enumerate()
            .map(|(i, raw)| BigUint::from_limbs(raw[..1 + (i + exp_limbs) % 4].to_vec()))
            .collect();
        assert_batch_matches_serial(&ctx, &bases, &exps);
    }

    /// Both Reducer backends (Montgomery for odd, Barrett for even
    /// moduli): `mod_pow_batch` and `residue_pow_batch` equal their
    /// serial counterparts lane-for-lane.
    #[test]
    fn reducer_pow_batch_matches_serial_both_backends(
        m_odd in 3u64..u64::MAX,
        bs in prop::collection::vec(any::<u64>(), 1..9),
        es in prop::collection::vec(any::<u64>(), 1..9),
    ) {
        for n in [BigUint::from_u64(m_odd | 1), BigUint::from_u64((m_odd | 2) & !1)] {
            let ctx = Reducer::new(&n).expect("modulus > 1");
            let pairs_owned: Vec<(BigUint, BigUint)> = bs
                .iter()
                .zip(&es)
                .map(|(&b, &e)| (BigUint::from_u64(b), BigUint::from_u64(e)))
                .collect();
            let pairs: Vec<(&BigUint, &BigUint)> =
                pairs_owned.iter().map(|(b, e)| (b, e)).collect();
            let want: Vec<BigUint> =
                pairs.iter().map(|(b, e)| ctx.mod_pow(b, e)).collect();
            prop_assert_eq!(ctx.mod_pow_batch(&pairs), want.clone());

            // The residue-domain entry must agree after conversion back.
            let res_owned: Vec<(BigUint, BigUint)> = pairs_owned
                .iter()
                .map(|(b, e)| (ctx.to_residue(b), e.clone()))
                .collect();
            let res_items: Vec<(&BigUint, &BigUint)> =
                res_owned.iter().map(|(b, e)| (b, e)).collect();
            let got: Vec<BigUint> = ctx
                .residue_pow_batch(&res_items)
                .iter()
                .map(|r| ctx.from_residue(r))
                .collect();
            prop_assert_eq!(got, want);
        }
    }
}

/// Directed exponent edges for every limb count: 0 (must yield 1), 1
/// (identity — the ladder's top-digit seeding), all-ones exponents
/// (every window digit nonzero, maximal table traffic), `N − 1`
/// (Fermat-adjacent full-length exponent), and a power-of-two exponent
/// (exactly one nonzero digit, every other step a pure squaring) —
/// mixed in one batch so the shared schedule must serve all of them
/// under one window width.
#[test]
fn directed_exponent_edges_all_limb_counts() {
    for k in 1usize..=8 {
        let mut limbs = vec![0xa5a5_a5a5_5a5a_5a5au64; k];
        limbs[k - 1] |= 1 << 63;
        limbs[0] |= 1;
        let n = BigUint::from_limbs(limbs);
        let ctx = MontgomeryCtx::new(&n).expect("odd modulus accepted");

        let n_minus_1 = &n - &BigUint::one();
        let all_ones = BigUint::from_limbs(vec![u64::MAX; k]);
        let pow2 = BigUint::one().shl_bits(64 * k - 7);
        let exps = [
            BigUint::zero(),
            BigUint::one(),
            all_ones,
            n_minus_1.clone(),
            pow2,
            BigUint::from_u64(2),
            BigUint::from_u64(0xfeed_face),
        ];
        let base_small = BigUint::from_u64(0xdead_beef) % &n;
        let bases: Vec<BigUint> = exps
            .iter()
            .enumerate()
            .map(|(i, _)| match i % 3 {
                0 => base_small.clone(),
                1 => n_minus_1.clone(),
                _ => &n + &base_small, // unreduced: canonicalization path
            })
            .collect();
        let exps: Vec<BigUint> = exps.to_vec();
        assert_batch_matches_serial(&ctx, &bases, &exps);
    }
}

/// Exponent-0 and short-lane idling: a batch mixing `e = 0` lanes with
/// full-length lanes must keep the zero lanes at exactly `1` (canonical
/// limbs) while long lanes ladder on — the `powers[0] = one` masking
/// path of the shared schedule.
#[test]
fn zero_exponent_lanes_idle_at_one() {
    let n = odd_modulus_exact(&[0x1234_5678_9abc_def1, 0xfeed_face, u64::MAX]);
    let ctx = MontgomeryCtx::new(&n).expect("odd modulus accepted");
    let long = &n - &BigUint::from_u64(2);
    let bases: Vec<BigUint> = (1..=9u64).map(BigUint::from_u64).collect();
    let exps: Vec<BigUint> = (0..9)
        .map(|i| {
            if i % 2 == 0 {
                BigUint::zero()
            } else {
                long.clone()
            }
        })
        .collect();
    let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(&exps).collect();
    let got = ctx.mod_pow_batch(&pairs);
    for (i, r) in got.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(*r, BigUint::one(), "lane {i} must be exactly 1");
            assert_eq!(r.limbs(), BigUint::one().limbs(), "lane {i} limbs");
        } else {
            assert_eq!(*r, ctx.mod_pow(&bases[i], &exps[i]), "lane {i}");
        }
    }
}
