//! Property tests for the fixed-base tables and the Barrett half of the
//! total `Reducer` dispatch: both must agree exactly with the naive
//! division-based arithmetic over random moduli (odd *and* even),
//! exponents and window widths.

use proptest::prelude::*;
use sla_bigint::{BarrettCtx, BigUint, FixedBaseTable, Reducer};
use std::sync::Arc;

/// Builds a modulus > 1 from random limbs, forcing the requested parity.
fn modulus(limbs: &[u64], force_even: bool) -> BigUint {
    let mut m = BigUint::from_limbs(limbs.to_vec());
    if force_even {
        if m.is_odd() {
            m = &m + &BigUint::one();
        }
        if m.is_zero() {
            m = BigUint::from_u64(2);
        }
    } else if m.is_zero() || m.is_one() {
        m = BigUint::from_u64(3);
    }
    m
}

proptest! {
    #[test]
    fn fixed_base_table_matches_naive_mod_pow(
        m in prop::collection::vec(any::<u64>(), 1..4),
        even in any::<bool>(),
        base in prop::collection::vec(any::<u64>(), 1..4),
        exp in prop::collection::vec(any::<u64>(), 1..3),
        window in 1usize..9,
        max_bits in 1usize..161,
    ) {
        let m = modulus(&m, even);
        let base = BigUint::from_limbs(base);
        let exp = BigUint::from_limbs(exp);
        let reducer = Arc::new(Reducer::new(&m).expect("modulus > 1"));
        // Undersized max_bits exercises the generic-ladder fallback.
        let table = FixedBaseTable::new(reducer, &base, max_bits, window);
        prop_assert_eq!(table.pow(&exp), base.mod_pow_naive(&exp, &m));
    }

    #[test]
    fn fixed_base_residue_composes_with_reducer(
        m in prop::collection::vec(any::<u64>(), 1..3),
        base in any::<u64>(),
        e1 in any::<u64>(),
        e2 in any::<u64>(),
    ) {
        // base^e1 · base^e2 = base^(e1+e2), computed entirely in the
        // residue domain and converted once at the end.
        let m = modulus(&m, false);
        let base = BigUint::from_u64(base);
        let reducer = Arc::new(Reducer::new(&m).expect("modulus > 1"));
        let table = FixedBaseTable::with_default_window(reducer.clone(), &base, 128);
        let prod = reducer.residue_mul(
            &table.pow_residue(&BigUint::from_u64(e1)),
            &table.pow_residue(&BigUint::from_u64(e2)),
        );
        let sum = &BigUint::from_u64(e1) + &BigUint::from_u64(e2);
        prop_assert_eq!(reducer.from_residue(&prod), base.mod_pow_naive(&sum, &m));
    }

    #[test]
    fn barrett_mod_mul_matches_naive(
        m in prop::collection::vec(any::<u64>(), 1..6),
        a in prop::collection::vec(any::<u64>(), 1..8),
        b in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let m = modulus(&m, true);
        let a = BigUint::from_limbs(a);
        let b = BigUint::from_limbs(b);
        let ctx = BarrettCtx::new(&m).expect("even modulus > 1 accepted");
        prop_assert_eq!(ctx.mod_mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn barrett_mod_pow_matches_naive(
        m in prop::collection::vec(any::<u64>(), 1..4),
        base in prop::collection::vec(any::<u64>(), 1..4),
        exp in prop::collection::vec(any::<u64>(), 1..3),
    ) {
        let m = modulus(&m, true);
        let base = BigUint::from_limbs(base);
        let exp = BigUint::from_limbs(exp);
        let ctx = BarrettCtx::new(&m).expect("even modulus > 1 accepted");
        let expected = base.mod_pow_naive(&exp, &m);
        prop_assert_eq!(ctx.mod_pow(&base, &exp), expected.clone());
        // The total dispatch must route even moduli to the same answer.
        prop_assert_eq!(base.mod_pow(&exp, &m), expected);
    }

    #[test]
    fn barrett_reduce_matches_remainder(
        m in prop::collection::vec(any::<u64>(), 1..4),
        x in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let m = modulus(&m, true);
        let x = BigUint::from_limbs(x);
        let ctx = BarrettCtx::new(&m).expect("even modulus > 1 accepted");
        prop_assert_eq!(ctx.reduce(&x), &x % &m);
    }
}
