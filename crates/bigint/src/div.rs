//! Division and remainder: single-limb fast path and Knuth Algorithm D for
//! multi-limb divisors.

use crate::BigUint;
use std::ops::{Div, Rem};

impl BigUint {
    /// Divides by a single `u64`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `rhs == 0`.
    pub fn div_rem_u64(&self, rhs: u64) -> (BigUint, u64) {
        assert_ne!(rhs, 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | l as u128;
            quotient[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        (BigUint::from_limbs(quotient), rem as u64)
    }

    /// Full division, returning `(quotient, remainder)`.
    ///
    /// Multi-limb divisors use Knuth's Algorithm D (TAOCP Vol. 2, 4.3.1).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (BigUint::zero(), self.clone());
        }
        if rhs.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(rhs.limbs[0]);
            return (q, BigUint::from_u64(r));
        }

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = rhs.limbs.last().unwrap().leading_zeros() as usize;
        let v = rhs.shl_bits(shift);
        let u = self.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let vn = &v.limbs;
        let mut un = u.limbs.clone();
        un.push(0); // room for the virtual high limb u_{m+n}

        let mut q = vec![0u64; m + 1];
        let v_top = vn[n - 1] as u128;
        let v_next = vn[n - 2] as u128;

        // D2–D7: main loop over quotient digits, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate q̂.
            let numer = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numer / v_top;
            let mut rhat = numer % v_top;
            while qhat >> 64 != 0 || qhat * v_next > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // D4: multiply-subtract un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 - borrow;
                un[j + i] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;

            // D5/D6: if we subtracted too much, add the divisor back once.
            if t < 0 {
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat as u64;
        }

        // D8: denormalize the remainder.
        un.truncate(n);
        let rem = BigUint::from_limbs(un).shr_bits(shift);
        (BigUint::from_limbs(q), rem)
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

crate::arith::forward_binop!(Div, div);
crate::arith::forward_binop!(Rem, rem);

#[cfg(test)]
mod tests {
    use crate::BigUint;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn div_rem_u64_basics() {
        let (q, r) = b(100).div_rem_u64(7);
        assert_eq!((q, r), (b(14), 2));
        let (q, r) = b(u128::MAX).div_rem_u64(u64::MAX);
        // (2^128-1) / (2^64-1) = 2^64 + 1 exactly.
        assert_eq!(q, b((1u128 << 64) + 1));
        assert_eq!(r, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = b(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn small_over_large_is_zero() {
        let (q, r) = b(5).div_rem(&b(1 << 77));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, b(5));
    }

    #[test]
    fn u128_oracle() {
        let samples: &[(u128, u128)] = &[
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128 + 1),
            (u128::MAX, u128::MAX - 1),
            (0x1234_5678_9abc_def0_1111_2222_3333_4444, 0x9999_8888_7777),
            (1 << 127, (1 << 65) + 12345),
            ((1 << 100) + 17, (1 << 99) + 3),
        ];
        for &(x, y) in samples {
            let (q, r) = b(x).div_rem(&b(y));
            assert_eq!(q, b(x / y), "quotient for {x}/{y}");
            assert_eq!(r, b(x % y), "remainder for {x}%{y}");
        }
    }

    #[test]
    fn reconstruction_identity_multilimb() {
        // a = q*b + r with r < b, on values exceeding 128 bits.
        let a = BigUint::from_limbs(vec![
            0xdead_beef_cafe_babe,
            0x0123_4567_89ab_cdef,
            0xfeed_face_dead_c0de,
            0x1,
        ]);
        let d = BigUint::from_limbs(vec![0xffff_ffff_0000_0001, 0xabcdef]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn divisor_requiring_addback() {
        // Exercises the rare D6 add-back branch: crafted so qhat over-estimates.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert!(r < v);
        assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    fn operator_sugar() {
        assert_eq!(&b(17) / &b(5), b(3));
        assert_eq!(&b(17) % &b(5), b(2));
        assert_eq!(b(17) / b(5), b(3));
        assert_eq!(b(17) % b(5), b(2));
    }
}
