//! Montgomery-form modular arithmetic (the hot-path fast lane).
//!
//! Every HVE operation in this stack bottoms out in modular
//! multiplications mod the composite group order `N = P·Q`. The naive
//! path computes `(a·b) % N` with a full Knuth Algorithm-D division per
//! product; [`MontgomeryCtx`] instead precomputes, once per modulus,
//!
//! * `n' = -N^{-1} mod 2^64` (one Newton inversion of the low limb), and
//! * `R^2 mod N` where `R = 2^{64k}` for a `k`-limb modulus,
//!
//! after which each product costs one or two CIOS (Coarsely Integrated
//! Operand Scanning) passes — `k(k+1)` word multiplies each, running in
//! fixed stack buffers with **no division and no intermediate
//! allocation**. Exponentiation stays entirely inside the Montgomery
//! domain and uses a sliding window over a table of odd powers, cutting
//! both the per-step reduction cost and the number of multiplies.
//!
//! The context requires an **odd** modulus (true for `N = P·Q` with odd
//! primes); [`MontgomeryCtx::new`] returns `None` otherwise and the
//! [`crate::Reducer`] dispatch routes those moduli through the Barrett
//! context instead, keeping every `mod_pow` division-free.

use crate::kernels::{self, KernelKind, LANES, LANES8};
use crate::BigUint;

/// Stack-buffer capacity in limbs (`k + 2` scratch for `k ≤ 32`, i.e.
/// moduli up to 2048 bits — far beyond the simulation's group orders).
/// Larger moduli transparently fall back to a heap scratch buffer.
const STACK_LIMBS: usize = 34;

/// Precomputed per-modulus state for division-free modular arithmetic.
///
/// Build once with [`MontgomeryCtx::new`], then use
/// [`mod_mul`](MontgomeryCtx::mod_mul) / [`mod_pow`](MontgomeryCtx::mod_pow)
/// (standard-domain API) or the `mont_*` primitives (Montgomery-domain
/// API) for long operation chains.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// The (odd) modulus `N`.
    n: BigUint,
    /// Limb count `k` of `N`; `R = 2^{64k}`.
    k: usize,
    /// `-N^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R mod N` — the Montgomery form of 1.
    r1: BigUint,
    /// `R^2 mod N` — converts standard → Montgomery form via one
    /// `mont_mul`.
    r2: BigUint,
    /// 32-bit digit expansion of `N`, padded for vector loads; empty
    /// when `k` exceeds the SIMD kernels' limb cap.
    n_digits: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `n > 1`; `None` otherwise.
    pub fn new(n: &BigUint) -> Option<Self> {
        if n.is_even() || n.is_zero() || n.is_one() {
            return None;
        }
        let k = n.limbs().len();
        // Newton–Hensel inversion of the low limb mod 2^64: five
        // iterations double the valid bits from 5 to 64+.
        let n0 = n.limbs()[0];
        let mut inv = n0; // valid to 5 bits for odd n0
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        let r1 = &BigUint::one().shl_bits(64 * k) % n;
        let r2 = &BigUint::one().shl_bits(128 * k) % n;
        let n_digits = if k <= kernels::KMAX {
            kernels::modulus_digits(n.limbs())
        } else {
            Vec::new()
        };
        Some(MontgomeryCtx {
            n: n.clone(),
            k,
            n0_inv,
            r1,
            r2,
            n_digits,
        })
    }

    /// The kernel [`Self::mont_mul_batch`] dispatches to for this
    /// modulus: the process-wide [`KernelKind::active`] choice, with two
    /// measured adjustments under auto-detection — moduli beyond the
    /// vector kernels' limb cap fall back to scalar, and AVX2 yields to
    /// the portable lockstep below the limb count where its 32-bit-digit
    /// recurrence reaches parity with four interleaved u128 carry
    /// chains. A forced `SLA_SIMD` override is always honored verbatim.
    pub fn kernel(&self) -> KernelKind {
        let (kind, forced) = KernelKind::active_forced();
        if self.k > kernels::KMAX {
            return KernelKind::Scalar;
        }
        if forced {
            return kind;
        }
        match kind {
            KernelKind::Avx2 if self.k < kernels::AVX2_MIN_BATCH_LIMBS => KernelKind::Portable,
            other => other,
        }
    }

    /// The kernel a **single** multiplication dispatches to. One CIOS
    /// pass is a serial carry chain, and the digit kernels measure
    /// slower than the u128 scalar loop at every limb count they accept
    /// (the 32-bit digit split doubles the iteration count without
    /// independent work to fill the lanes), so auto-detected dispatch
    /// keeps single ops scalar and reserves the vector kernels for the
    /// lockstep batch path. An explicit `SLA_SIMD` override forces its
    /// kernel into single ops too — that is what the oracle CI legs pin.
    fn single_kernel(&self) -> KernelKind {
        let (kind, forced) = KernelKind::active_forced();
        if forced && self.k <= kernels::KMAX {
            kind
        } else {
            KernelKind::Scalar
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The Montgomery form of 1 (`R mod N`).
    pub fn one_mont(&self) -> BigUint {
        self.r1.clone()
    }

    /// One CIOS pass: `t[..k] = a·b·R^{-1} mod N`, reduced into `[0, N)`.
    ///
    /// `t` is a zeroed scratch of `k + 2` limbs; `a`/`b` hold reduced
    /// operands (shorter-than-`k` slices are implicitly zero-padded).
    /// Dispatches to the active SIMD kernel; the scalar loop below is
    /// the oracle every kernel is pinned byte-identical to.
    fn cios(&self, a: &[u64], b: &[u64], t: &mut [u64]) {
        self.cios_with(self.single_kernel(), a, b, t)
    }

    /// [`Self::cios`] through an explicit kernel (callers guarantee the
    /// kernel is available and, for non-scalar kinds, `k ≤ KMAX`).
    fn cios_with(&self, kernel: KernelKind, a: &[u64], b: &[u64], t: &mut [u64]) {
        match kernel {
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => {
                kernels::cios_avx2(self.n.limbs(), &self.n_digits, self.n0_inv, a, b, t)
            }
            #[cfg(target_arch = "aarch64")]
            KernelKind::Neon => {
                kernels::cios_neon(self.n.limbs(), &self.n_digits, self.n0_inv, a, b, t)
            }
            _ => self.cios_scalar(a, b, t),
        }
    }

    /// The u128 schoolbook CIOS loop — the correctness oracle.
    fn cios_scalar(&self, a: &[u64], b: &[u64], t: &mut [u64]) {
        let k = self.k;
        let nl = self.n.limbs();
        debug_assert_eq!(t.len(), k + 2);
        for i in 0..k {
            let ai = a.get(i).copied().unwrap_or(0);

            // t += a_i · b
            let mut carry = 0u128;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = b.get(j).copied().unwrap_or(0);
                let s = *tj as u128 + ai as u128 * bj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64; // cannot overflow: t[k+1] was 0

            // m = t[0] · n' mod 2^64 makes (t + m·N) divisible by 2^64.
            let m = t[0].wrapping_mul(self.n0_inv);

            // t = (t + m·N) >> 64
            let s = t[0] as u128 + m as u128 * nl[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * nl[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }

        // t[..=k] < 2N at this point; one conditional subtraction
        // normalizes into [0, N).
        if t[k] != 0 || !limbs_lt(&t[..k], nl) {
            limbs_sub_assign(&mut t[..=k], nl);
        }
        debug_assert_eq!(t[k], 0);
    }

    /// Runs `f` with a zeroed `k + 2`-limb scratch buffer — on the stack
    /// for every realistic modulus size.
    #[inline]
    fn with_scratch<R>(&self, f: impl FnOnce(&mut [u64]) -> R) -> R {
        if self.k + 2 <= STACK_LIMBS {
            let mut t = [0u64; STACK_LIMBS];
            f(&mut t[..self.k + 2])
        } else {
            let mut t = vec![0u64; self.k + 2];
            f(&mut t)
        }
    }

    /// Converts `a` (standard form, any magnitude) to Montgomery form
    /// `a·R mod N`.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        let reduced;
        let al = if a < &self.n {
            a.limbs()
        } else {
            reduced = a % &self.n;
            reduced.limbs()
        };
        self.with_scratch(|t| {
            self.cios(al, self.r2.limbs(), t);
            BigUint::from_limbs(t[..self.k].to_vec())
        })
    }

    /// Converts `a` (Montgomery form) back to standard form `a·R^{-1} mod N`.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// Montgomery product `a·b·R^{-1} mod N` via a single CIOS pass.
    ///
    /// Both operands must already be reduced (`< N`); the result is `< N`.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.n && b < &self.n, "operands must be reduced");
        self.with_scratch(|t| {
            self.cios(a.limbs(), b.limbs(), t);
            BigUint::from_limbs(t[..self.k].to_vec())
        })
    }

    /// [`Self::mont_mul`] through an **explicit** kernel, bypassing the
    /// process-wide dispatch — the oracle hook for the proptest suite
    /// (the `SLA_SIMD` override is process-global, so in-process
    /// comparisons of several kernels need this API).
    ///
    /// # Panics
    /// Panics if the requested kernel is not available on this CPU.
    pub fn mont_mul_with(&self, a: &BigUint, b: &BigUint, kernel: KernelKind) -> BigUint {
        assert!(
            kernel.available(),
            "kernel {} is not available on this CPU",
            kernel.name()
        );
        debug_assert!(a < &self.n && b < &self.n, "operands must be reduced");
        let kernel = if self.k <= kernels::KMAX {
            kernel
        } else {
            KernelKind::Scalar
        };
        self.with_scratch(|t| {
            self.cios_with(kernel, a.limbs(), b.limbs(), t);
            BigUint::from_limbs(t[..self.k].to_vec())
        })
    }

    /// Montgomery products for a batch of independent reduced pairs,
    /// eight (then four) elements advanced in lockstep through a
    /// struct-of-arrays layout (remainders fall back to
    /// [`Self::mont_mul`]'s path). Results are byte-identical to
    /// mapping [`Self::mont_mul`] over the slice, in order.
    pub fn mont_mul_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        self.mont_mul_batch_with(pairs, self.kernel())
    }

    /// [`Self::mont_mul_batch`] through an explicit kernel (see
    /// [`Self::mont_mul_with`]).
    ///
    /// # Panics
    /// Panics if the requested kernel is not available on this CPU.
    // The lane loop reads column `lane` across rows of `group`; an
    // iterator over `group` would walk the wrong axis.
    #[allow(clippy::needless_range_loop)]
    pub fn mont_mul_batch_with(
        &self,
        pairs: &[(&BigUint, &BigUint)],
        kernel: KernelKind,
    ) -> Vec<BigUint> {
        assert!(
            kernel.available(),
            "kernel {} is not available on this CPU",
            kernel.name()
        );
        let kernel = if self.k <= kernels::KMAX {
            kernel
        } else {
            KernelKind::Scalar
        };
        let mut out = Vec::with_capacity(pairs.len());
        let mut i = 0;
        if kernel != KernelKind::Scalar {
            // Wide groups first: exponentiation ladders supply batches
            // deep enough that most of the work runs 8 lanes per
            // instruction stream, with one 4-lane group mopping up.
            let mut group8 = [[0u64; LANES8]; kernels::KMAX];
            while i + LANES8 <= pairs.len() {
                let g = &pairs[i..i + LANES8];
                debug_assert!(
                    g.iter().all(|(a, b)| *a < &self.n && *b < &self.n),
                    "operands must be reduced"
                );
                let a_ops: [&[u64]; LANES8] = std::array::from_fn(|l| g[l].0.limbs());
                let b_ops: [&[u64]; LANES8] = std::array::from_fn(|l| g[l].1.limbs());
                match kernel {
                    #[cfg(target_arch = "x86_64")]
                    KernelKind::Avx2 => kernels::lockstep_avx2_8(
                        self.n.limbs(),
                        &self.n_digits,
                        self.n0_inv,
                        &a_ops,
                        &b_ops,
                        &mut group8,
                    ),
                    // NEON batches share the portable lockstep path.
                    _ => kernels::lockstep_portable::<LANES8>(
                        self.n.limbs(),
                        self.n0_inv,
                        &a_ops,
                        &b_ops,
                        &mut group8,
                    ),
                }
                for lane in 0..LANES8 {
                    out.push(BigUint::from_limbs(
                        (0..self.k).map(|j| group8[j][lane]).collect(),
                    ));
                }
                i += LANES8;
            }
            let mut group = [[0u64; LANES]; kernels::KMAX];
            while i + LANES <= pairs.len() {
                let g = &pairs[i..i + LANES];
                debug_assert!(
                    g.iter().all(|(a, b)| *a < &self.n && *b < &self.n),
                    "operands must be reduced"
                );
                let a_ops: [&[u64]; LANES] = std::array::from_fn(|l| g[l].0.limbs());
                let b_ops: [&[u64]; LANES] = std::array::from_fn(|l| g[l].1.limbs());
                match kernel {
                    #[cfg(target_arch = "x86_64")]
                    KernelKind::Avx2 => kernels::lockstep_avx2(
                        self.n.limbs(),
                        &self.n_digits,
                        self.n0_inv,
                        &a_ops,
                        &b_ops,
                        &mut group,
                    ),
                    // NEON batches share the portable lockstep path.
                    _ => kernels::lockstep_portable::<LANES>(
                        self.n.limbs(),
                        self.n0_inv,
                        &a_ops,
                        &b_ops,
                        &mut group,
                    ),
                }
                for lane in 0..LANES {
                    out.push(BigUint::from_limbs(
                        (0..self.k).map(|j| group[j][lane]).collect(),
                    ));
                }
                i += LANES;
            }
        }
        // Remainder lanes (fewer than LANES left): a lone product has no
        // independent work to fill vector lanes with, so the scalar
        // single-op path is the fast one — byte-identical by the kernel
        // contract, as the oracle suite pins.
        for (a, b) in &pairs[i..] {
            out.push(self.mont_mul_with(a, b, KernelKind::Scalar));
        }
        out
    }

    /// `(a · b) mod N` without any division: one conversion pass plus one
    /// Montgomery pass (`mont_mul(a·R, b) = a·b`), all in stack buffers
    /// with a single allocation for the result.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let (ra, rb);
        let al = if a < &self.n {
            a.limbs()
        } else {
            ra = a % &self.n;
            ra.limbs()
        };
        let bl = if b < &self.n {
            b.limbs()
        } else {
            rb = b % &self.n;
            rb.limbs()
        };
        let k = self.k;
        if k + 2 <= STACK_LIMBS {
            let mut t1 = [0u64; STACK_LIMBS];
            self.cios(al, self.r2.limbs(), &mut t1[..k + 2]);
            let mut t2 = [0u64; STACK_LIMBS];
            self.cios(&t1[..k], bl, &mut t2[..k + 2]);
            BigUint::from_limbs(t2[..k].to_vec())
        } else {
            let mut t1 = vec![0u64; k + 2];
            self.cios(al, self.r2.limbs(), &mut t1);
            let mut t2 = vec![0u64; k + 2];
            self.cios(&t1[..k], bl, &mut t2);
            t2.truncate(k);
            BigUint::from_limbs(t2)
        }
    }

    /// `(a · b) mod N` for a batch of independent canonical pairs: the
    /// two CIOS passes of [`Self::mod_mul`] each run as one lockstep
    /// sweep over the whole batch. Byte-identical to mapping
    /// [`Self::mod_mul`] over the slice, in order.
    pub fn mod_mul_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        let owned: Vec<(BigUint, BigUint)> = pairs
            .iter()
            .map(|(a, b)| {
                (
                    if *a < &self.n {
                        (*a).clone()
                    } else {
                        *a % &self.n
                    },
                    if *b < &self.n {
                        (*b).clone()
                    } else {
                        *b % &self.n
                    },
                )
            })
            .collect();
        // Pass 1: a·R = mont_mul(a, R²) across the batch.
        let pass1_pairs: Vec<(&BigUint, &BigUint)> =
            owned.iter().map(|(a, _)| (a, &self.r2)).collect();
        let a_mont = self.mont_mul_batch(&pass1_pairs);
        // Pass 2: mont_mul(a·R, b) = a·b mod N across the batch.
        let pass2_pairs: Vec<(&BigUint, &BigUint)> = a_mont
            .iter()
            .zip(&owned)
            .map(|(am, (_, b))| (am, b))
            .collect();
        self.mont_mul_batch(&pass2_pairs)
    }

    /// `base^exp mod N` with a sliding window over a table of odd powers,
    /// performed entirely in the Montgomery domain (the shared ladder in
    /// `pow.rs`, instantiated with CIOS products).
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one(); // N > 1 guaranteed by construction
        }
        let base_m = self.to_mont(base);
        self.from_mont(&crate::pow::window_pow_res(self, &base_m, exp))
    }

    /// `base^exp` for a batch of independent `(base, exp)` pairs, bases
    /// and results in the Montgomery domain: N windowed ladders advanced
    /// in lockstep, every squaring and table product a batched CIOS
    /// sweep through the SIMD kernels. Byte-identical, in order, to the
    /// serial per-element ladder (residues have a unique representative).
    pub fn mont_pow_batch(&self, items: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        crate::pow::window_pow_res_batch(self, items)
    }

    /// `base^exp mod N` for a batch of independent canonical pairs: the
    /// domain conversions run as lockstep sweeps and the ladders run via
    /// [`Self::mont_pow_batch`]. Byte-identical, in order, to mapping
    /// [`Self::mod_pow`] over the slice.
    pub fn mod_pow_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        // Pass 1: canonicalize + convert every base (one lockstep sweep).
        let reduced: Vec<BigUint> = pairs
            .iter()
            .map(|(b, _)| {
                if *b < &self.n {
                    (*b).clone()
                } else {
                    *b % &self.n
                }
            })
            .collect();
        let conv_pairs: Vec<(&BigUint, &BigUint)> = reduced.iter().map(|b| (b, &self.r2)).collect();
        let bases_m = self.mont_mul_batch(&conv_pairs);
        // Pass 2: the lockstep ladders.
        let items: Vec<(&BigUint, &BigUint)> = bases_m
            .iter()
            .zip(pairs)
            .map(|(bm, (_, e))| (bm, *e))
            .collect();
        let res = self.mont_pow_batch(&items);
        // Pass 3: convert back (mont_mul by 1, one lockstep sweep).
        let one = BigUint::one();
        let back_pairs: Vec<(&BigUint, &BigUint)> = res.iter().map(|r| (r, &one)).collect();
        self.mont_mul_batch(&back_pairs)
    }
}

impl crate::pow::ResidueOps for MontgomeryCtx {
    fn one_res(&self) -> BigUint {
        self.r1.clone()
    }
    fn to_res(&self, a: &BigUint) -> BigUint {
        self.to_mont(a)
    }
    fn mul_res(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mont_mul(a, b)
    }
    fn mul_res_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        self.mont_mul_batch(pairs)
    }
}

/// `a < b` over little-endian limb slices of equal length.
pub(crate) fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x < y;
        }
    }
    false
}

/// `a -= b` over limb slices; `a` may be one limb longer than `b` (the
/// borrow drains into it). Caller guarantees `a >= b`.
pub(crate) fn limbs_sub_assign(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, ai) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, o1) = ai.overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = (o1 as u64) + (o2 as u64);
    }
    debug_assert_eq!(borrow, 0, "montgomery conditional subtract underflow");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn rejects_degenerate_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&b(4096)).is_none());
        assert!(MontgomeryCtx::new(&b(97)).is_some());
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let n = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for v in [0u128, 1, 2, 12345, 999_999_999] {
            let m = ctx.to_mont(&b(v));
            assert_eq!(ctx.from_mont(&m), b(v), "v = {v}");
        }
    }

    #[test]
    fn mont_mul_matches_naive_single_limb() {
        let n = b(0xffff_ffff_0000_0001); // odd 64-bit modulus
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let samples = [0u128, 1, 2, 0x1234_5678, 0xdead_beef_cafe];
        for &x in &samples {
            for &y in &samples {
                assert_eq!(
                    ctx.mod_mul(&b(x), &b(y)),
                    b(x).mod_mul(&b(y), &n),
                    "x = {x}, y = {y}"
                );
            }
        }
    }

    #[test]
    fn mont_mul_matches_naive_multi_limb() {
        // 96-bit composite modulus like the pairing group's N.
        let n = &b(0x8000_0000_0000_0000_0000_0001u128) + &b(6);
        assert!(n.is_odd());
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let mut x = b(0x0123_4567_89ab_cdef_1111_2222);
        let mut y = b(0xfeed_face_dead_c0de_3333_4444);
        for _ in 0..50 {
            assert_eq!(ctx.mod_mul(&x, &y), x.mod_mul(&y, &n));
            x = &(&x * &b(0x9e37_79b9)) + &b(17);
            y = &(&y * &b(0x85eb_ca6b)) + &b(29);
        }
    }

    #[test]
    fn large_modulus_falls_back_to_heap_scratch() {
        // 33-limb odd modulus exceeds the stack-buffer capacity.
        let mut n = BigUint::one().shl_bits(64 * 32 + 7);
        n.set_bit(0);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let x = BigUint::one().shl_bits(1999);
        let y = &BigUint::one().shl_bits(2000) - &b(12345);
        assert_eq!(ctx.mod_mul(&x, &y), x.mod_mul(&y, &n));
    }

    #[test]
    fn unreduced_operands_are_reduced() {
        let n = b(1_000_003);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let big_a = b(u128::MAX);
        let big_b = b(u128::MAX - 12345);
        assert_eq!(ctx.mod_mul(&big_a, &big_b), big_a.mod_mul(&big_b, &n));
    }

    #[test]
    fn mod_pow_matches_naive() {
        let n = &b(1_000_000_007) * &b(998_244_353);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for (base, exp) in [
            (0u128, 0u128),
            (0, 5),
            (5, 0),
            (2, 1),
            (3, 1_000_000),
            (0xdead_beef, 0xcafe_babe_1234),
        ] {
            assert_eq!(
                ctx.mod_pow(&b(base), &b(exp)),
                b(base).mod_pow_naive(&b(exp), &n),
                "base = {base}, exp = {exp}"
            );
        }
    }

    #[test]
    fn fermat_little_theorem_via_montgomery() {
        let p = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        for a in [2u128, 3, 65537, 999_999_999] {
            assert_eq!(ctx.mod_pow(&b(a), &(&p - &b(1))), BigUint::one());
        }
    }

    #[test]
    fn explicit_kernels_match_scalar() {
        let n = &b(0x8000_0000_0000_0000_0000_0001u128) + &b(6);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let mut x = ctx.to_mont(&b(0x0123_4567_89ab_cdef_1111_2222));
        let mut y = ctx.to_mont(&b(0xfeed_face_dead_c0de_3333_4444));
        for _ in 0..25 {
            let want = ctx.mont_mul_with(&x, &y, KernelKind::Scalar);
            for kernel in KernelKind::all_available() {
                assert_eq!(ctx.mont_mul_with(&x, &y, kernel), want, "{}", kernel.name());
            }
            x = want;
            y = ctx.mont_mul(&y, &y);
        }
    }

    #[test]
    fn batch_matches_serial_all_kernels_and_widths() {
        let n = &b(0x8000_0000_0000_0000_0000_0001u128) + &b(6);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let elems: Vec<BigUint> = (0..9u64)
            .map(|i| ctx.to_mont(&b(0x1234_5678_9abc_def0 + 977 * i as u128)))
            .collect();
        for width in 0..=elems.len() {
            let pairs: Vec<(&BigUint, &BigUint)> = (0..width)
                .map(|i| (&elems[i], &elems[(i * 7 + 3) % elems.len()]))
                .collect();
            let want: Vec<BigUint> = pairs
                .iter()
                .map(|(a, b)| ctx.mont_mul_with(a, b, KernelKind::Scalar))
                .collect();
            for kernel in KernelKind::all_available() {
                assert_eq!(
                    ctx.mont_mul_batch_with(&pairs, kernel),
                    want,
                    "kernel {}, width {width}",
                    kernel.name()
                );
            }
            assert_eq!(ctx.mont_mul_batch(&pairs), want, "active kernel");
        }
    }

    #[test]
    fn mod_mul_batch_matches_serial_with_unreduced_operands() {
        let n = &b(0x8000_0000_0000_0000_0000_0001u128) + &b(6);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let elems: Vec<BigUint> = (0..7u64)
            .map(|i| b(u128::MAX - 0xdead_beef * i as u128))
            .collect();
        let pairs: Vec<(&BigUint, &BigUint)> = elems
            .iter()
            .enumerate()
            .map(|(i, a)| (a, &elems[(i + 3) % elems.len()]))
            .collect();
        let want: Vec<BigUint> = pairs.iter().map(|(a, b)| ctx.mod_mul(a, b)).collect();
        assert_eq!(ctx.mod_mul_batch(&pairs), want);
    }

    #[test]
    fn oversized_moduli_downgrade_to_scalar() {
        let mut n = BigUint::one().shl_bits(64 * 12 + 3); // 13 limbs > KMAX
        n.set_bit(0);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        assert_eq!(ctx.kernel(), KernelKind::Scalar);
        let x = ctx.to_mont(&BigUint::one().shl_bits(700));
        let y = ctx.to_mont(&(&BigUint::one().shl_bits(765) - &b(3)));
        for kernel in KernelKind::all_available() {
            assert_eq!(
                ctx.mont_mul_with(&x, &y, kernel),
                ctx.mont_mul(&x, &y),
                "{}",
                kernel.name()
            );
        }
        let pairs = [(&x, &y), (&y, &x), (&x, &x), (&y, &y), (&x, &y)];
        let want: Vec<BigUint> = pairs.iter().map(|(a, b)| ctx.mont_mul(a, b)).collect();
        assert_eq!(ctx.mont_mul_batch(&pairs), want);
    }

    #[test]
    fn window_boundaries_exercised() {
        // Exponent bit lengths straddling each window-size threshold.
        let n = &b(0xffff_ffff_ffff_fffb) * &b(0xffff_ffff_ffff_ffc5);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = b(0x1234_5678_9abc_def0);
        for bits in [1usize, 8, 9, 32, 33, 96, 97, 120] {
            let exp = &BigUint::one().shl_bits(bits) - &BigUint::one();
            assert_eq!(
                ctx.mod_pow(&base, &exp),
                base.mod_pow_naive(&exp, &n),
                "bits = {bits}"
            );
        }
    }
}
