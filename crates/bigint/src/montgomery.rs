//! Montgomery-form modular arithmetic (the hot-path fast lane).
//!
//! Every HVE operation in this stack bottoms out in modular
//! multiplications mod the composite group order `N = P·Q`. The naive
//! path computes `(a·b) % N` with a full Knuth Algorithm-D division per
//! product; [`MontgomeryCtx`] instead precomputes, once per modulus,
//!
//! * `n' = -N^{-1} mod 2^64` (one Newton inversion of the low limb), and
//! * `R^2 mod N` where `R = 2^{64k}` for a `k`-limb modulus,
//!
//! after which each product costs one or two CIOS (Coarsely Integrated
//! Operand Scanning) passes — `k(k+1)` word multiplies each, running in
//! fixed stack buffers with **no division and no intermediate
//! allocation**. Exponentiation stays entirely inside the Montgomery
//! domain and uses a sliding window over a table of odd powers, cutting
//! both the per-step reduction cost and the number of multiplies.
//!
//! The context requires an **odd** modulus (true for `N = P·Q` with odd
//! primes); [`MontgomeryCtx::new`] returns `None` otherwise and the
//! [`crate::Reducer`] dispatch routes those moduli through the Barrett
//! context instead, keeping every `mod_pow` division-free.

use crate::BigUint;

/// Stack-buffer capacity in limbs (`k + 2` scratch for `k ≤ 32`, i.e.
/// moduli up to 2048 bits — far beyond the simulation's group orders).
/// Larger moduli transparently fall back to a heap scratch buffer.
const STACK_LIMBS: usize = 34;

/// Precomputed per-modulus state for division-free modular arithmetic.
///
/// Build once with [`MontgomeryCtx::new`], then use
/// [`mod_mul`](MontgomeryCtx::mod_mul) / [`mod_pow`](MontgomeryCtx::mod_pow)
/// (standard-domain API) or the `mont_*` primitives (Montgomery-domain
/// API) for long operation chains.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// The (odd) modulus `N`.
    n: BigUint,
    /// Limb count `k` of `N`; `R = 2^{64k}`.
    k: usize,
    /// `-N^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R mod N` — the Montgomery form of 1.
    r1: BigUint,
    /// `R^2 mod N` — converts standard → Montgomery form via one
    /// `mont_mul`.
    r2: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `n > 1`; `None` otherwise.
    pub fn new(n: &BigUint) -> Option<Self> {
        if n.is_even() || n.is_zero() || n.is_one() {
            return None;
        }
        let k = n.limbs().len();
        // Newton–Hensel inversion of the low limb mod 2^64: five
        // iterations double the valid bits from 5 to 64+.
        let n0 = n.limbs()[0];
        let mut inv = n0; // valid to 5 bits for odd n0
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        let r1 = &BigUint::one().shl_bits(64 * k) % n;
        let r2 = &BigUint::one().shl_bits(128 * k) % n;
        Some(MontgomeryCtx {
            n: n.clone(),
            k,
            n0_inv,
            r1,
            r2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The Montgomery form of 1 (`R mod N`).
    pub fn one_mont(&self) -> BigUint {
        self.r1.clone()
    }

    /// One CIOS pass: `t[..k] = a·b·R^{-1} mod N`, reduced into `[0, N)`.
    ///
    /// `t` is a zeroed scratch of `k + 2` limbs; `a`/`b` hold reduced
    /// operands (shorter-than-`k` slices are implicitly zero-padded).
    fn cios(&self, a: &[u64], b: &[u64], t: &mut [u64]) {
        let k = self.k;
        let nl = self.n.limbs();
        debug_assert_eq!(t.len(), k + 2);
        for i in 0..k {
            let ai = a.get(i).copied().unwrap_or(0);

            // t += a_i · b
            let mut carry = 0u128;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = b.get(j).copied().unwrap_or(0);
                let s = *tj as u128 + ai as u128 * bj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64; // cannot overflow: t[k+1] was 0

            // m = t[0] · n' mod 2^64 makes (t + m·N) divisible by 2^64.
            let m = t[0].wrapping_mul(self.n0_inv);

            // t = (t + m·N) >> 64
            let s = t[0] as u128 + m as u128 * nl[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * nl[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }

        // t[..=k] < 2N at this point; one conditional subtraction
        // normalizes into [0, N).
        if t[k] != 0 || !limbs_lt(&t[..k], nl) {
            limbs_sub_assign(&mut t[..=k], nl);
        }
        debug_assert_eq!(t[k], 0);
    }

    /// Runs `f` with a zeroed `k + 2`-limb scratch buffer — on the stack
    /// for every realistic modulus size.
    #[inline]
    fn with_scratch<R>(&self, f: impl FnOnce(&mut [u64]) -> R) -> R {
        if self.k + 2 <= STACK_LIMBS {
            let mut t = [0u64; STACK_LIMBS];
            f(&mut t[..self.k + 2])
        } else {
            let mut t = vec![0u64; self.k + 2];
            f(&mut t)
        }
    }

    /// Converts `a` (standard form, any magnitude) to Montgomery form
    /// `a·R mod N`.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        let reduced;
        let al = if a < &self.n {
            a.limbs()
        } else {
            reduced = a % &self.n;
            reduced.limbs()
        };
        self.with_scratch(|t| {
            self.cios(al, self.r2.limbs(), t);
            BigUint::from_limbs(t[..self.k].to_vec())
        })
    }

    /// Converts `a` (Montgomery form) back to standard form `a·R^{-1} mod N`.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// Montgomery product `a·b·R^{-1} mod N` via a single CIOS pass.
    ///
    /// Both operands must already be reduced (`< N`); the result is `< N`.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.n && b < &self.n, "operands must be reduced");
        self.with_scratch(|t| {
            self.cios(a.limbs(), b.limbs(), t);
            BigUint::from_limbs(t[..self.k].to_vec())
        })
    }

    /// `(a · b) mod N` without any division: one conversion pass plus one
    /// Montgomery pass (`mont_mul(a·R, b) = a·b`), all in stack buffers
    /// with a single allocation for the result.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let (ra, rb);
        let al = if a < &self.n {
            a.limbs()
        } else {
            ra = a % &self.n;
            ra.limbs()
        };
        let bl = if b < &self.n {
            b.limbs()
        } else {
            rb = b % &self.n;
            rb.limbs()
        };
        let k = self.k;
        if k + 2 <= STACK_LIMBS {
            let mut t1 = [0u64; STACK_LIMBS];
            self.cios(al, self.r2.limbs(), &mut t1[..k + 2]);
            let mut t2 = [0u64; STACK_LIMBS];
            self.cios(&t1[..k], bl, &mut t2[..k + 2]);
            BigUint::from_limbs(t2[..k].to_vec())
        } else {
            let mut t1 = vec![0u64; k + 2];
            self.cios(al, self.r2.limbs(), &mut t1);
            let mut t2 = vec![0u64; k + 2];
            self.cios(&t1[..k], bl, &mut t2);
            t2.truncate(k);
            BigUint::from_limbs(t2)
        }
    }

    /// `base^exp mod N` with a sliding window over a table of odd powers,
    /// performed entirely in the Montgomery domain (the shared ladder in
    /// `pow.rs`, instantiated with CIOS products).
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one(); // N > 1 guaranteed by construction
        }
        let base_m = self.to_mont(base);
        self.from_mont(&crate::pow::window_pow_res(self, &base_m, exp))
    }
}

impl crate::pow::ResidueOps for MontgomeryCtx {
    fn one_res(&self) -> BigUint {
        self.r1.clone()
    }
    fn to_res(&self, a: &BigUint) -> BigUint {
        self.to_mont(a)
    }
    fn mul_res(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mont_mul(a, b)
    }
}

/// `a < b` over little-endian limb slices of equal length.
fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x < y;
        }
    }
    false
}

/// `a -= b` over limb slices; `a` may be one limb longer than `b` (the
/// borrow drains into it). Caller guarantees `a >= b`.
fn limbs_sub_assign(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, ai) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, o1) = ai.overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = (o1 as u64) + (o2 as u64);
    }
    debug_assert_eq!(borrow, 0, "montgomery conditional subtract underflow");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn rejects_degenerate_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&b(4096)).is_none());
        assert!(MontgomeryCtx::new(&b(97)).is_some());
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let n = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for v in [0u128, 1, 2, 12345, 999_999_999] {
            let m = ctx.to_mont(&b(v));
            assert_eq!(ctx.from_mont(&m), b(v), "v = {v}");
        }
    }

    #[test]
    fn mont_mul_matches_naive_single_limb() {
        let n = b(0xffff_ffff_0000_0001); // odd 64-bit modulus
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let samples = [0u128, 1, 2, 0x1234_5678, 0xdead_beef_cafe];
        for &x in &samples {
            for &y in &samples {
                assert_eq!(
                    ctx.mod_mul(&b(x), &b(y)),
                    b(x).mod_mul(&b(y), &n),
                    "x = {x}, y = {y}"
                );
            }
        }
    }

    #[test]
    fn mont_mul_matches_naive_multi_limb() {
        // 96-bit composite modulus like the pairing group's N.
        let n = &b(0x8000_0000_0000_0000_0000_0001u128) + &b(6);
        assert!(n.is_odd());
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let mut x = b(0x0123_4567_89ab_cdef_1111_2222);
        let mut y = b(0xfeed_face_dead_c0de_3333_4444);
        for _ in 0..50 {
            assert_eq!(ctx.mod_mul(&x, &y), x.mod_mul(&y, &n));
            x = &(&x * &b(0x9e37_79b9)) + &b(17);
            y = &(&y * &b(0x85eb_ca6b)) + &b(29);
        }
    }

    #[test]
    fn large_modulus_falls_back_to_heap_scratch() {
        // 33-limb odd modulus exceeds the stack-buffer capacity.
        let mut n = BigUint::one().shl_bits(64 * 32 + 7);
        n.set_bit(0);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let x = BigUint::one().shl_bits(1999);
        let y = &BigUint::one().shl_bits(2000) - &b(12345);
        assert_eq!(ctx.mod_mul(&x, &y), x.mod_mul(&y, &n));
    }

    #[test]
    fn unreduced_operands_are_reduced() {
        let n = b(1_000_003);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let big_a = b(u128::MAX);
        let big_b = b(u128::MAX - 12345);
        assert_eq!(ctx.mod_mul(&big_a, &big_b), big_a.mod_mul(&big_b, &n));
    }

    #[test]
    fn mod_pow_matches_naive() {
        let n = &b(1_000_000_007) * &b(998_244_353);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for (base, exp) in [
            (0u128, 0u128),
            (0, 5),
            (5, 0),
            (2, 1),
            (3, 1_000_000),
            (0xdead_beef, 0xcafe_babe_1234),
        ] {
            assert_eq!(
                ctx.mod_pow(&b(base), &b(exp)),
                b(base).mod_pow_naive(&b(exp), &n),
                "base = {base}, exp = {exp}"
            );
        }
    }

    #[test]
    fn fermat_little_theorem_via_montgomery() {
        let p = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        for a in [2u128, 3, 65537, 999_999_999] {
            assert_eq!(ctx.mod_pow(&b(a), &(&p - &b(1))), BigUint::one());
        }
    }

    #[test]
    fn window_boundaries_exercised() {
        // Exponent bit lengths straddling each window-size threshold.
        let n = &b(0xffff_ffff_ffff_fffb) * &b(0xffff_ffff_ffff_ffc5);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = b(0x1234_5678_9abc_def0);
        for bits in [1usize, 8, 9, 32, 33, 96, 97, 120] {
            let exp = &BigUint::one().shl_bits(bits) - &BigUint::one();
            assert_eq!(
                ctx.mod_pow(&base, &exp),
                base.mod_pow_naive(&exp, &n),
                "bits = {bits}"
            );
        }
    }
}
