//! Uniform random sampling of big integers.

use crate::BigUint;
use rand::Rng;

/// A uniformly random integer with at most `bits` bits.
pub fn random_bits<R: Rng>(bits: usize, rng: &mut R) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut out: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let top_bits = bits % 64;
    if top_bits != 0 {
        let mask = (1u64 << top_bits) - 1;
        *out.last_mut().expect("limbs >= 1") &= mask;
    }
    BigUint::from_limbs(out)
}

/// A uniformly random integer in `[0, bound)` by rejection sampling.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn random_below<R: Rng>(bound: &BigUint, rng: &mut R) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bit_len();
    loop {
        let candidate = random_bits(bits, rng);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// A uniformly random integer in `[1, bound)`.
///
/// # Panics
/// Panics if `bound <= 1`.
pub fn random_nonzero_below<R: Rng>(bound: &BigUint, rng: &mut R) -> BigUint {
    assert!(!bound.is_one() && !bound.is_zero(), "bound must exceed 1");
    loop {
        let candidate = random_below(bound, rng);
        if !candidate.is_zero() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_respects_width() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1usize, 5, 63, 64, 65, 130] {
            for _ in 0..50 {
                let v = random_bits(bits, &mut rng);
                assert!(v.bit_len() <= bits, "bits = {bits}, got {}", v.bit_len());
            }
        }
        assert!(random_bits(0, &mut rng).is_zero());
    }

    #[test]
    fn random_below_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(8);
        let bound = BigUint::from_u64(1000);
        let mut seen_distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = random_below(&bound, &mut rng);
            assert!(v < bound);
            seen_distinct.insert(v.low_u64());
        }
        assert!(seen_distinct.len() > 50, "sampling looks degenerate");
    }

    #[test]
    fn random_nonzero_never_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let bound = BigUint::from_u64(2);
        for _ in 0..20 {
            assert!(random_nonzero_below(&bound, &mut rng).is_one());
        }
    }
}
