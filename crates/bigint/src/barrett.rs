//! Barrett reduction: division-free modular arithmetic for **any**
//! modulus, covering the even moduli [`crate::MontgomeryCtx`] rejects.
//!
//! Montgomery form needs `gcd(N, 2^64) = 1`, so even moduli used to fall
//! back to Knuth Algorithm-D division on every step. [`BarrettCtx`]
//! instead precomputes, once per modulus,
//!
//! * `µ = ⌊ b^{2k} / N ⌋` with `b = 2^64` and `k` the limb count of `N`,
//!
//! after which any `x < b^{2k}` (in particular any product of two reduced
//! operands) reduces with two multiplications, two shifts and at most two
//! conditional subtractions — no division (HAC Algorithm 14.42, run at
//! full width). Together with Montgomery this makes the modulus dispatch
//! in [`BigUint::mod_pow`] **total**: odd `N` takes CIOS passes, even `N`
//! takes Barrett passes, and the division-based ladder survives only as
//! the explicitly-named [`BigUint::mod_pow_naive`] baseline.

use crate::montgomery::{limbs_lt, limbs_sub_assign};
use crate::pow::{window_pow_res, ResidueOps};
use crate::BigUint;

/// Limb cap for the fixed stack-buffer reduction path (512-bit moduli,
/// mirroring the CIOS kernels' cap). Larger moduli take the allocating
/// `BigUint` path.
const STACK_K: usize = 8;

/// Precomputed per-modulus state for division-free reduction by an
/// arbitrary modulus `N > 1`.
///
/// The "residue domain" of a Barrett context is the canonical residues
/// themselves (unlike Montgomery's `x·R mod N`), so domain conversion is
/// just reduction into `[0, N)`.
#[derive(Debug, Clone)]
pub struct BarrettCtx {
    /// The modulus `N`.
    n: BigUint,
    /// Limb count `k` of `N`.
    k: usize,
    /// `⌊ 2^{128k} / N ⌋`.
    mu: BigUint,
}

impl BarrettCtx {
    /// Builds a context for any modulus `n > 1`; `None` otherwise.
    pub fn new(n: &BigUint) -> Option<Self> {
        if n.is_zero() || n.is_one() {
            return None;
        }
        let k = n.limbs().len();
        let mu = &BigUint::one().shl_bits(128 * k) / n;
        Some(BarrettCtx {
            n: n.clone(),
            k,
            mu,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Reduces `x < 2^{128k}` into `[0, N)` without division.
    ///
    /// Any product of two reduced operands satisfies the bound; larger
    /// values are canonicalized with one (cold-path) division.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        if x < &self.n {
            return x.clone();
        }
        if x.bit_len() > 128 * self.k {
            return x % &self.n; // outside Barrett's input range
        }
        if self.k <= STACK_K {
            return self.reduce_limbs(x.limbs());
        }
        // Allocating fallback for oversized moduli.
        // q̂ = ⌊ ⌊x / b^{k-1}⌋ · µ / b^{k+1} ⌋  underestimates the true
        // quotient by at most 2 (HAC Theorem 14.43, given x < b^{2k} and
        // µ = ⌊b^{2k}/N⌋), so r = x - q̂·N lands in [0, 3N) and at most
        // two correcting subtractions can ever run.
        let q = (&x.shr_bits(64 * (self.k - 1)) * &self.mu).shr_bits(64 * (self.k + 1));
        let mut r = x - &(&q * &self.n);
        let mut corrections = 0u32;
        while r >= self.n {
            r = &r - &self.n;
            corrections += 1;
            debug_assert!(
                corrections <= 2,
                "Barrett correction bound violated: q̂ underestimated by more than 2 \
                 (x bits = {}, k = {})",
                x.bit_len(),
                self.k
            );
        }
        r
    }

    /// The HAC 14.42 reduction over fixed stack limb buffers — the same
    /// q̂ as the allocating path, with every intermediate (`q1·µ`,
    /// `q3·N`, `x − q3·N mod b^{k+1}`) living in a stack array, so a
    /// reduction allocates exactly once (the result). `xl` may carry
    /// trailing zero limbs; callers guarantee `xl` spans ≤ `2k` limbs.
    fn reduce_limbs(&self, xl: &[u64]) -> BigUint {
        let k = self.k;
        let nl = self.n.limbs();
        let ml = self.mu.limbs(); // µ ≤ b^{k+1} (k+2 limbs when N = b^{k-1})
        debug_assert!(xl.len() <= 2 * k && ml.len() <= k + 2);

        // q1 = ⌊x / b^{k-1}⌋ — a limb-slice view, no copy.
        let q1 = if xl.len() > k - 1 { &xl[k - 1..] } else { &[] };
        // q2 = q1·µ  (≤ 2k+3 limbs).
        let mut q2 = [0u64; 2 * STACK_K + 4];
        limbs_mul_into(q1, ml, &mut q2[..q1.len() + ml.len()]);
        // q3 = ⌊q2 / b^{k+1}⌋ — again a slice view.
        let q2_len = q1.len() + ml.len();
        let q3 = if q2_len > k + 1 {
            &q2[k + 1..q2_len]
        } else {
            &[]
        };
        // q3·N (≤ 2k+2 limbs).
        let mut q3n = [0u64; 2 * STACK_K + 4];
        limbs_mul_into(q3, nl, &mut q3n[..q3.len() + nl.len()]);
        // r = (x − q3·N) mod b^{k+1}: the true difference is in [0, 3N)
        // ⊂ [0, b^{k+1}), so the wrap-around subtraction is exact.
        let mut r = [0u64; STACK_K + 1];
        let mut borrow = 0u64;
        for (i, ri) in r.iter_mut().enumerate().take(k + 1) {
            let xi = xl.get(i).copied().unwrap_or(0);
            let yi = q3n.get(i).copied().unwrap_or(0);
            let (d1, o1) = xi.overflowing_sub(yi);
            let (d2, o2) = d1.overflowing_sub(borrow);
            *ri = d2;
            borrow = (o1 | o2) as u64;
        }
        // At most two correcting subtractions (HAC 14.43).
        let mut corrections = 0u32;
        while r[k] != 0 || !limbs_lt(&r[..k], nl) {
            limbs_sub_assign(&mut r[..=k], nl);
            corrections += 1;
            debug_assert!(
                corrections <= 2,
                "Barrett correction bound violated: q̂ underestimated by more than 2 (k = {k})",
            );
        }
        BigUint::from_limbs(r[..k].to_vec())
    }

    /// `(a · b) mod N` via one full product and one Barrett reduction.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let (ra, rb);
        let a = if a < &self.n {
            a
        } else {
            ra = a % &self.n;
            &ra
        };
        let b = if b < &self.n {
            b
        } else {
            rb = b % &self.n;
            &rb
        };
        self.mul_reduced(a, b)
    }

    /// Product + reduction of already-reduced operands: the hot path
    /// behind [`ResidueOps::mul_res`]. For stack-sized moduli the full
    /// product lands in a fixed limb buffer — no `BigUint` temporary.
    fn mul_reduced(&self, a: &BigUint, b: &BigUint) -> BigUint {
        debug_assert!(a < &self.n && b < &self.n);
        if self.k <= STACK_K {
            let (al, bl) = (a.limbs(), b.limbs());
            let mut prod = [0u64; 2 * STACK_K];
            limbs_mul_into(al, bl, &mut prod[..al.len() + bl.len()]);
            self.reduce_limbs(&prod[..al.len() + bl.len()])
        } else {
            self.reduce(&(a * b))
        }
    }

    /// `base^exp mod N` via the shared sliding-window ladder with a
    /// Barrett reduction per step.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        window_pow_res(self, &self.to_res(base), exp)
    }
}

impl ResidueOps for BarrettCtx {
    fn one_res(&self) -> BigUint {
        BigUint::one() // N > 1 by construction
    }
    fn to_res(&self, a: &BigUint) -> BigUint {
        if a < &self.n {
            a.clone()
        } else {
            a % &self.n
        }
    }
    fn mul_res(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mul_reduced(a, b)
    }
}

/// Schoolbook product `a·b` accumulated into the zeroed buffer `out`
/// (`out.len() >= a.len() + b.len()`); trailing zero limbs in either
/// operand are harmless.
fn limbs_mul_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert!(out.len() >= a.len() + b.len());
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let s = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = s as u64;
            carry = s >> 64;
        }
        // The final carry fits one limb and, because the total product
        // is < b^{a.len()+b.len()}, the ripple never leaves `out`.
        let mut idx = i + b.len();
        let mut c = carry as u64;
        while c != 0 {
            let (v, overflow) = out[idx].overflowing_add(c);
            out[idx] = v;
            c = overflow as u64;
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn rejects_degenerate_moduli() {
        assert!(BarrettCtx::new(&BigUint::zero()).is_none());
        assert!(BarrettCtx::new(&BigUint::one()).is_none());
        assert!(BarrettCtx::new(&b(2)).is_some());
        assert!(BarrettCtx::new(&b(4096)).is_some());
    }

    #[test]
    fn reduce_matches_remainder() {
        for m in [2u128, 6, 97, 4096, 1 << 64, (1 << 80) + 2] {
            let ctx = BarrettCtx::new(&b(m)).unwrap();
            for x in [0u128, 1, m - 1, m, m + 1, m * 3 + 5, u128::MAX >> 8] {
                assert_eq!(ctx.reduce(&b(x)), b(x % m), "x = {x}, m = {m}");
            }
        }
    }

    #[test]
    fn mod_mul_matches_naive_even_moduli() {
        let samples = [0u128, 1, 2, 0x1234_5678, 0xdead_beef_cafe, u128::MAX >> 64];
        for m in [2u128, 10, 4096, (1u128 << 96) + 4, (1 << 64) - 2] {
            let m = b(m);
            let ctx = BarrettCtx::new(&m).unwrap();
            for &x in &samples {
                for &y in &samples {
                    assert_eq!(ctx.mod_mul(&b(x), &b(y)), b(x).mod_mul(&b(y), &m));
                }
            }
        }
    }

    #[test]
    fn mod_pow_matches_naive() {
        let m = b((1u128 << 90) + 6); // even, multi-limb
        let ctx = BarrettCtx::new(&m).unwrap();
        for (base, exp) in [
            (0u128, 0u128),
            (0, 5),
            (5, 0),
            (2, 1),
            (3, 1_000_000),
            (0xdead_beef, 0xcafe_babe_1234),
        ] {
            assert_eq!(
                ctx.mod_pow(&b(base), &b(exp)),
                b(base).mod_pow_naive(&b(exp), &m),
                "base = {base}, exp = {exp}"
            );
        }
    }

    #[test]
    fn stack_path_agrees_on_power_of_two_and_near_cap_moduli() {
        // N = b^{k-1} exactly (µ occupies k+2 limbs) and an 8-limb
        // (cap-sized) even modulus, with full-width products.
        let mut near_cap = BigUint::one().shl_bits(64 * 8 - 1);
        near_cap.set_bit(1); // even, 8 limbs
        for m in [
            BigUint::one().shl_bits(64),
            BigUint::one().shl_bits(128),
            near_cap,
        ] {
            let ctx = BarrettCtx::new(&m).unwrap();
            let a = &(&BigUint::one().shl_bits(64 * ctx.k) - &BigUint::one()) % &m;
            let b = &(&BigUint::one().shl_bits(64 * ctx.k - 7) - &b(99)) % &m;
            assert_eq!(ctx.mod_mul(&a, &b), a.mod_mul(&b, &m));
            assert_eq!(ctx.mul_res(&a, &b), a.mod_mul(&b, &m));
            assert_eq!(ctx.reduce(&(&a * &b)), (&a * &b) % &m);
        }
    }

    #[test]
    fn oversized_moduli_use_allocating_fallback() {
        // 9-limb even modulus exceeds the stack path's cap.
        let mut m = BigUint::one().shl_bits(64 * 8 + 13);
        m.set_bit(1);
        let ctx = BarrettCtx::new(&m).unwrap();
        let a = &BigUint::one().shl_bits(64 * 9 - 5) % &m;
        let b = &(&BigUint::one().shl_bits(64 * 9 - 11) - &b(7)) % &m;
        assert_eq!(ctx.mod_mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn oversized_inputs_are_canonicalized() {
        let m = b(1 << 20);
        let ctx = BarrettCtx::new(&m).unwrap();
        let huge = BigUint::one().shl_bits(500);
        assert_eq!(ctx.reduce(&huge), &huge % &m);
        assert_eq!(ctx.mod_mul(&huge, &huge), huge.mod_mul(&huge, &m));
    }
}
