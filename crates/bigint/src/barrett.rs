//! Barrett reduction: division-free modular arithmetic for **any**
//! modulus, covering the even moduli [`crate::MontgomeryCtx`] rejects.
//!
//! Montgomery form needs `gcd(N, 2^64) = 1`, so even moduli used to fall
//! back to Knuth Algorithm-D division on every step. [`BarrettCtx`]
//! instead precomputes, once per modulus,
//!
//! * `µ = ⌊ b^{2k} / N ⌋` with `b = 2^64` and `k` the limb count of `N`,
//!
//! after which any `x < b^{2k}` (in particular any product of two reduced
//! operands) reduces with two multiplications, two shifts and at most two
//! conditional subtractions — no division (HAC Algorithm 14.42, run at
//! full width). Together with Montgomery this makes the modulus dispatch
//! in [`BigUint::mod_pow`] **total**: odd `N` takes CIOS passes, even `N`
//! takes Barrett passes, and the division-based ladder survives only as
//! the explicitly-named [`BigUint::mod_pow_naive`] baseline.

use crate::pow::{window_pow_res, ResidueOps};
use crate::BigUint;

/// Precomputed per-modulus state for division-free reduction by an
/// arbitrary modulus `N > 1`.
///
/// The "residue domain" of a Barrett context is the canonical residues
/// themselves (unlike Montgomery's `x·R mod N`), so domain conversion is
/// just reduction into `[0, N)`.
#[derive(Debug, Clone)]
pub struct BarrettCtx {
    /// The modulus `N`.
    n: BigUint,
    /// Limb count `k` of `N`.
    k: usize,
    /// `⌊ 2^{128k} / N ⌋`.
    mu: BigUint,
}

impl BarrettCtx {
    /// Builds a context for any modulus `n > 1`; `None` otherwise.
    pub fn new(n: &BigUint) -> Option<Self> {
        if n.is_zero() || n.is_one() {
            return None;
        }
        let k = n.limbs().len();
        let mu = &BigUint::one().shl_bits(128 * k) / n;
        Some(BarrettCtx {
            n: n.clone(),
            k,
            mu,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Reduces `x < 2^{128k}` into `[0, N)` without division.
    ///
    /// Any product of two reduced operands satisfies the bound; larger
    /// values are canonicalized with one (cold-path) division.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        if x < &self.n {
            return x.clone();
        }
        if x.bit_len() > 128 * self.k {
            return x % &self.n; // outside Barrett's input range
        }
        // q̂ = ⌊ ⌊x / b^{k-1}⌋ · µ / b^{k+1} ⌋  underestimates the true
        // quotient by at most 2 (HAC Theorem 14.43, given x < b^{2k} and
        // µ = ⌊b^{2k}/N⌋), so r = x - q̂·N lands in [0, 3N) and at most
        // two correcting subtractions can ever run.
        let q = (&x.shr_bits(64 * (self.k - 1)) * &self.mu).shr_bits(64 * (self.k + 1));
        let mut r = x - &(&q * &self.n);
        let mut corrections = 0u32;
        while r >= self.n {
            r = &r - &self.n;
            corrections += 1;
            debug_assert!(
                corrections <= 2,
                "Barrett correction bound violated: q̂ underestimated by more than 2 \
                 (x bits = {}, k = {})",
                x.bit_len(),
                self.k
            );
        }
        r
    }

    /// `(a · b) mod N` via one full product and one Barrett reduction.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let (ra, rb);
        let a = if a < &self.n {
            a
        } else {
            ra = a % &self.n;
            &ra
        };
        let b = if b < &self.n {
            b
        } else {
            rb = b % &self.n;
            &rb
        };
        self.reduce(&(a * b))
    }

    /// `base^exp mod N` via the shared sliding-window ladder with a
    /// Barrett reduction per step.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        window_pow_res(self, &self.to_res(base), exp)
    }
}

impl ResidueOps for BarrettCtx {
    fn one_res(&self) -> BigUint {
        BigUint::one() // N > 1 by construction
    }
    fn to_res(&self, a: &BigUint) -> BigUint {
        if a < &self.n {
            a.clone()
        } else {
            a % &self.n
        }
    }
    fn mul_res(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.reduce(&(a * b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn rejects_degenerate_moduli() {
        assert!(BarrettCtx::new(&BigUint::zero()).is_none());
        assert!(BarrettCtx::new(&BigUint::one()).is_none());
        assert!(BarrettCtx::new(&b(2)).is_some());
        assert!(BarrettCtx::new(&b(4096)).is_some());
    }

    #[test]
    fn reduce_matches_remainder() {
        for m in [2u128, 6, 97, 4096, 1 << 64, (1 << 80) + 2] {
            let ctx = BarrettCtx::new(&b(m)).unwrap();
            for x in [0u128, 1, m - 1, m, m + 1, m * 3 + 5, u128::MAX >> 8] {
                assert_eq!(ctx.reduce(&b(x)), b(x % m), "x = {x}, m = {m}");
            }
        }
    }

    #[test]
    fn mod_mul_matches_naive_even_moduli() {
        let samples = [0u128, 1, 2, 0x1234_5678, 0xdead_beef_cafe, u128::MAX >> 64];
        for m in [2u128, 10, 4096, (1u128 << 96) + 4, (1 << 64) - 2] {
            let m = b(m);
            let ctx = BarrettCtx::new(&m).unwrap();
            for &x in &samples {
                for &y in &samples {
                    assert_eq!(ctx.mod_mul(&b(x), &b(y)), b(x).mod_mul(&b(y), &m));
                }
            }
        }
    }

    #[test]
    fn mod_pow_matches_naive() {
        let m = b((1u128 << 90) + 6); // even, multi-limb
        let ctx = BarrettCtx::new(&m).unwrap();
        for (base, exp) in [
            (0u128, 0u128),
            (0, 5),
            (5, 0),
            (2, 1),
            (3, 1_000_000),
            (0xdead_beef, 0xcafe_babe_1234),
        ] {
            assert_eq!(
                ctx.mod_pow(&b(base), &b(exp)),
                b(base).mod_pow_naive(&b(exp), &m),
                "base = {base}, exp = {exp}"
            );
        }
    }

    #[test]
    fn oversized_inputs_are_canonicalized() {
        let m = b(1 << 20);
        let ctx = BarrettCtx::new(&m).unwrap();
        let huge = BigUint::one().shl_bits(500);
        assert_eq!(ctx.reduce(&huge), &huge % &m);
        assert_eq!(ctx.mod_mul(&huge, &huge), huge.mod_mul(&huge, &m));
    }
}
