//! [`Reducer`]: the **total** reduction dispatch.
//!
//! Every modulus `N > 1` gets a division-free fast path: odd `N` through
//! [`MontgomeryCtx`] (CIOS passes in the `x·R mod N` domain), even `N`
//! through [`BarrettCtx`] (precomputed-µ reduction in the canonical
//! domain). [`BigUint::mod_pow`] builds a `Reducer` and never falls back
//! to per-step division, and long-lived consumers (the pairing engine,
//! the fixed-base tables) hold one behind an `Arc` so precomputation is
//! shared.
//!
//! The enum also fixes a *residue domain* for values that live across
//! many operations: Montgomery form for odd moduli, canonical residues
//! for even ones. [`Reducer::to_residue`]/[`Reducer::from_residue`]
//! convert at the boundary and [`Reducer::residue_mul`] multiplies inside
//! the domain — one reduction pass per product, with no per-operation
//! round trip.

use crate::pow::{window_pow_res, window_pow_res_batch, ResidueOps};
use crate::{BarrettCtx, BigUint, MontgomeryCtx};

/// Division-free reduction context for an arbitrary modulus `N > 1`.
#[derive(Debug, Clone)]
pub enum Reducer {
    /// Odd modulus: CIOS passes in the Montgomery domain.
    Montgomery(MontgomeryCtx),
    /// Even modulus: Barrett reduction in the canonical domain.
    Barrett(BarrettCtx),
}

impl Reducer {
    /// Builds the appropriate context for `n`; `None` only for the
    /// degenerate moduli `0` and `1`.
    pub fn new(n: &BigUint) -> Option<Self> {
        if let Some(ctx) = MontgomeryCtx::new(n) {
            return Some(Reducer::Montgomery(ctx));
        }
        BarrettCtx::new(n).map(Reducer::Barrett)
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        match self {
            Reducer::Montgomery(ctx) => ctx.modulus(),
            Reducer::Barrett(ctx) => ctx.modulus(),
        }
    }

    /// `true` when the residue domain is Montgomery form (odd moduli).
    pub fn is_montgomery(&self) -> bool {
        matches!(self, Reducer::Montgomery(_))
    }

    /// `true` when `other` defines the same residue domain, i.e. values in
    /// one context's domain are directly meaningful in the other's. The
    /// modulus determines the domain completely (the backend parity — and
    /// hence `R` — is a function of it), so domain-compatibility checks
    /// must go through here rather than re-deriving the rule.
    pub fn same_domain(&self, other: &Reducer) -> bool {
        self.modulus() == other.modulus()
    }

    /// Converts a canonical value (any magnitude) into the residue domain.
    pub fn to_residue(&self, a: &BigUint) -> BigUint {
        match self {
            Reducer::Montgomery(ctx) => ctx.to_mont(a),
            Reducer::Barrett(ctx) => ctx.to_res(a),
        }
    }

    /// Converts a residue-domain value back to its canonical residue.
    pub fn from_residue(&self, a: &BigUint) -> BigUint {
        match self {
            Reducer::Montgomery(ctx) => ctx.from_mont(a),
            Reducer::Barrett(_) => a.clone(),
        }
    }

    /// The residue-domain image of `1`.
    pub fn residue_one(&self) -> BigUint {
        match self {
            Reducer::Montgomery(ctx) => ctx.one_mont(),
            Reducer::Barrett(_) => BigUint::one(),
        }
    }

    /// Product of two residue-domain values, staying in the domain: one
    /// CIOS pass (Montgomery) or one Barrett reduction.
    pub fn residue_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        match self {
            Reducer::Montgomery(ctx) => ctx.mont_mul(a, b),
            Reducer::Barrett(ctx) => ctx.mul_res(a, b),
        }
    }

    /// Residue-domain products for a batch of **independent** pairs:
    /// Montgomery moduli advance four elements in lockstep through the
    /// SIMD batch kernels (`MontgomeryCtx::mont_mul_batch`); Barrett
    /// moduli reduce pair-by-pair. Byte-identical, in order, to mapping
    /// [`Reducer::residue_mul`] over the slice.
    pub fn residue_mul_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        match self {
            Reducer::Montgomery(ctx) => ctx.mont_mul_batch(pairs),
            Reducer::Barrett(ctx) => pairs.iter().map(|(a, b)| ctx.mul_res(a, b)).collect(),
        }
    }

    /// `(a · b) mod N` on canonical operands.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        match self {
            Reducer::Montgomery(ctx) => ctx.mod_mul(a, b),
            Reducer::Barrett(ctx) => ctx.mod_mul(a, b),
        }
    }

    /// `(a · b) mod N` for a batch of independent canonical pairs (the
    /// lockstep analogue of [`Reducer::mod_mul`]).
    pub fn mod_mul_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        match self {
            Reducer::Montgomery(ctx) => ctx.mod_mul_batch(pairs),
            Reducer::Barrett(ctx) => pairs.iter().map(|(a, b)| ctx.mod_mul(a, b)).collect(),
        }
    }

    /// `base^exp mod N` via the windowed ladder of the active backend.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        match self {
            Reducer::Montgomery(ctx) => ctx.mod_pow(base, exp),
            Reducer::Barrett(ctx) => ctx.mod_pow(base, exp),
        }
    }

    /// `base^exp mod N` for a batch of **independent** canonical pairs:
    /// Montgomery moduli run N windowed ladders in lockstep — every
    /// squaring and table product one batched CIOS sweep through the
    /// SIMD kernels — while Barrett moduli exponentiate pair-by-pair
    /// (their reduction has no lockstep kernel). Byte-identical, in
    /// order, to mapping [`Reducer::mod_pow`] over the slice.
    pub fn mod_pow_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        match self {
            Reducer::Montgomery(ctx) => ctx.mod_pow_batch(pairs),
            Reducer::Barrett(ctx) => pairs.iter().map(|(b, e)| ctx.mod_pow(b, e)).collect(),
        }
    }

    /// `base^exp` for a batch of independent `(base_res, exp)` pairs
    /// with bases and results in the residue domain — the lockstep
    /// analogue of the crate-internal `pow_residue`, used by the fixed-base
    /// tables' batched long-exponent fallback and the pairing engine.
    pub fn residue_pow_batch(&self, items: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        match self {
            Reducer::Montgomery(ctx) => window_pow_res_batch(ctx, items),
            Reducer::Barrett(ctx) => window_pow_res_batch(ctx, items),
        }
    }

    /// `base^exp` with `base` and the result in the residue domain (used
    /// by the fixed-base tables' long-exponent fallback).
    pub(crate) fn pow_residue(&self, base_res: &BigUint, exp: &BigUint) -> BigUint {
        match self {
            Reducer::Montgomery(ctx) => window_pow_res(ctx, base_res, exp),
            Reducer::Barrett(ctx) => window_pow_res(ctx, base_res, exp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn dispatch_is_total_above_one() {
        assert!(Reducer::new(&BigUint::zero()).is_none());
        assert!(Reducer::new(&BigUint::one()).is_none());
        assert!(Reducer::new(&b(2)).unwrap().modulus() == &b(2));
        assert!(!Reducer::new(&b(4096)).unwrap().is_montgomery());
        assert!(Reducer::new(&b(97)).unwrap().is_montgomery());
    }

    #[test]
    fn residue_round_trip_both_backends() {
        for m in [97u128, 4096, (1 << 90) + 6, (1 << 90) + 7] {
            let r = Reducer::new(&b(m)).unwrap();
            for v in [0u128, 1, 2, 12345, m - 1, m + 17] {
                let res = r.to_residue(&b(v));
                assert_eq!(r.from_residue(&res), b(v % m), "v = {v}, m = {m}");
            }
            assert_eq!(r.from_residue(&r.residue_one()), b(1 % m));
        }
    }

    #[test]
    fn residue_mul_agrees_with_mod_mul() {
        for m in [10u128, 97, 4096, (1 << 80) + 2, (1 << 80) + 1] {
            let r = Reducer::new(&b(m)).unwrap();
            let (x, y) = (b(0xdead_beef_1234), b(0xcafe_babe_5678));
            let via_domain = r.from_residue(&r.residue_mul(&r.to_residue(&x), &r.to_residue(&y)));
            assert_eq!(via_domain, x.mod_mul(&y, &b(m)), "m = {m}");
            assert_eq!(r.mod_mul(&x, &y), x.mod_mul(&y, &b(m)), "m = {m}");
        }
    }

    #[test]
    fn batch_products_match_serial_both_backends() {
        for m in [97u128, 4096, (1 << 80) + 2, (1 << 80) + 1] {
            let r = Reducer::new(&b(m)).unwrap();
            let elems: Vec<BigUint> = (0..9u128)
                .map(|i| r.to_residue(&b(0xfeed_beef + 31 * i)))
                .collect();
            let pairs: Vec<(&BigUint, &BigUint)> = elems
                .iter()
                .enumerate()
                .map(|(i, a)| (a, &elems[(i + 4) % elems.len()]))
                .collect();
            let want: Vec<BigUint> = pairs.iter().map(|(a, b)| r.residue_mul(a, b)).collect();
            assert_eq!(r.residue_mul_batch(&pairs), want, "m = {m}");

            let canon: Vec<(&BigUint, &BigUint)> = pairs.clone();
            let want_mod: Vec<BigUint> = canon.iter().map(|(a, b)| r.mod_mul(a, b)).collect();
            assert_eq!(r.mod_mul_batch(&canon), want_mod, "m = {m}");
        }
    }

    #[test]
    fn batch_pow_matches_serial_both_backends() {
        for m in [97u128, 4096, (1 << 90) + 6, (1 << 90) + 7] {
            let r = Reducer::new(&b(m)).unwrap();
            let order_minus_one = &b(m) - &BigUint::one();
            let exps: Vec<BigUint> = vec![
                BigUint::zero(),
                BigUint::one(),
                b(0xfeed_face),
                order_minus_one,
                b(2),
                b((1 << 77) + 13),
            ];
            let bases: Vec<BigUint> = (0..exps.len() as u128)
                .map(|i| b(0x1234_5678 + 97 * i))
                .collect();
            let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(&exps).collect();
            let want: Vec<BigUint> = pairs.iter().map(|(bb, e)| r.mod_pow(bb, e)).collect();
            assert_eq!(r.mod_pow_batch(&pairs), want, "m = {m}");

            // Residue-domain entry point, same pins.
            let bases_res: Vec<BigUint> = bases.iter().map(|bb| r.to_residue(bb)).collect();
            let items: Vec<(&BigUint, &BigUint)> = bases_res.iter().zip(&exps).collect();
            let want_res: Vec<BigUint> = items.iter().map(|(bb, e)| r.pow_residue(bb, e)).collect();
            assert_eq!(r.residue_pow_batch(&items), want_res, "m = {m} (residue)");
        }
    }

    #[test]
    fn mod_pow_agrees_with_naive_both_parities() {
        for m in [97u128, 98, 4096, (1 << 90) + 6, (1 << 90) + 7] {
            let r = Reducer::new(&b(m)).unwrap();
            let base = b(0x1234_5678_9abc);
            let exp = b(0xfeed_face);
            assert_eq!(
                r.mod_pow(&base, &exp),
                base.mod_pow_naive(&exp, &b(m)),
                "m = {m}"
            );
        }
    }
}
