//! Core [`BigUint`] type: representation, construction, comparison and
//! radix conversion.

use std::cmp::Ordering;
use std::fmt;

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    /// Offending character, if any.
    pub bad_char: Option<char>,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bad_char {
            Some(c) => write!(f, "invalid digit {c:?} in big integer literal"),
            None => write!(f, "empty big integer literal"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

/// Arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with the invariant that the most
/// significant limb is non-zero (the value zero is the empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Constructs from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Borrow the little-endian limb slice (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Drops high zero limbs to restore the representation invariant.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Tests bit `i` (little-endian; bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to one.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// Lowest 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Big-endian byte representation without leading zero bytes
    /// (the value zero yields a single `0` byte).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first);
        out
    }

    /// Constructs from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Self::from_limbs(limbs)
    }

    /// Little-endian byte representation without trailing zero bytes
    /// (the value zero yields an empty vector). This is the canonical
    /// wire form of the `sla-persist` binary codec: minimal — no
    /// representation ambiguity a length prefix could hide — and
    /// byte-order-stable across platforms.
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in &self.limbs {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Constructs from little-endian bytes (trailing zeros allowed).
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(buf));
        }
        Self::from_limbs(limbs)
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex_str(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError { bad_char: None });
        }
        let mut limbs: Vec<u64> = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut idx = bytes.len();
        while idx > 0 {
            let start = idx.saturating_sub(16);
            let chunk = &s[start..idx];
            let v = u64::from_str_radix(chunk, 16).map_err(|_| ParseBigUintError {
                bad_char: chunk.chars().find(|c| !c.is_ascii_hexdigit()),
            })?;
            limbs.push(v);
            idx = start;
        }
        Ok(Self::from_limbs(limbs))
    }

    /// Hexadecimal representation (lowercase, no prefix).
    pub fn to_hex_str(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError { bad_char: None });
        }
        let mut acc = BigUint::zero();
        // Process 19 digits at a time (19 decimal digits < 2^64).
        let bytes = s.as_bytes();
        let mut pos = 0;
        while pos < bytes.len() {
            let take = (bytes.len() - pos).min(19);
            let chunk = &s[pos..pos + take];
            let v: u64 = chunk.parse().map_err(|_| ParseBigUintError {
                bad_char: chunk.chars().find(|c| !c.is_ascii_digit()),
            })?;
            let scale = 10u64.pow(take as u32);
            acc = acc.mul_u64(scale);
            acc = &acc + &BigUint::from_u64(v);
            pos += take;
        }
        Ok(acc)
    }

    /// Decimal representation.
    pub fn to_decimal_str(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::with_capacity(chunks.len() * 19);
        for (i, c) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&c.to_string());
            } else {
                s.push_str(&format!("{c:019}"));
            }
        }
        s
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal_str())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex_str())
    }
}

impl std::str::FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            Self::from_hex_str(hex)
        } else {
            Self::from_decimal_str(s)
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

impl serde::Serialize for BigUint {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex_str())
    }
}

impl<'de> serde::Deserialize<'de> for BigUint {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        BigUint::from_hex_str(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
    }

    #[test]
    fn normalization_strips_high_zeros() {
        let a = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.limbs(), &[5]);
        assert_eq!(a, BigUint::from_u64(5));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(10);
        let b = BigUint::from_u128(1 << 100);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let mut a = BigUint::zero();
        a.set_bit(130);
        assert!(a.bit(130));
        assert!(!a.bit(129));
        assert_eq!(a.bit_len(), 131);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BigUint::from_u128(0xdead_beef_cafe_babe_0102_0304_0506_0708);
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]), BigUint::from_u64(7));
    }

    #[test]
    fn bytes_le_roundtrip_is_minimal() {
        for v in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from_u64(0x0100),
            BigUint::from_u128(0xdead_beef_cafe_babe_0102_0304_0506_0708),
        ] {
            let bytes = v.to_bytes_le();
            assert_eq!(BigUint::from_bytes_le(&bytes), v);
            assert_ne!(bytes.last(), Some(&0), "trailing zero byte");
        }
        assert!(BigUint::zero().to_bytes_le().is_empty());
        assert_eq!(BigUint::from_bytes_le(&[7, 0, 0]), BigUint::from_u64(7));
        assert_eq!(
            BigUint::from_u64(0x0102).to_bytes_le(),
            vec![0x02u8, 0x01],
            "little-endian order"
        );
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["0", "1", "ff", "deadbeefcafebabe0102030405060708090a"] {
            let v = BigUint::from_hex_str(s).unwrap();
            assert_eq!(v.to_hex_str(), s);
            assert_eq!(BigUint::from_hex_str(&v.to_hex_str()).unwrap(), v);
        }
        assert!(BigUint::from_hex_str("xyz").is_err());
        assert!(BigUint::from_hex_str("").is_err());
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "123456789012345678901234567890123456789012345678901234567890",
        ] {
            let v = BigUint::from_decimal_str(s).unwrap();
            assert_eq!(v.to_decimal_str(), s);
        }
        assert!(BigUint::from_decimal_str("12a").is_err());
    }

    #[test]
    fn from_str_dispatches_on_prefix() {
        let a: BigUint = "0xff".parse().unwrap();
        let b: BigUint = "255".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let v = BigUint::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let json = serde_json::to_string(&v).unwrap();
        let back: BigUint = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
