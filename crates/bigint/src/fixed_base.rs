//! Fixed-base exponentiation tables.
//!
//! The HVE workload exponentiates a handful of *fixed* bases (the group
//! generators and the per-key material) with many different exponents.
//! A generic windowed ladder pays `bits` squarings per call no matter how
//! often the base repeats; [`FixedBaseTable`] moves that work into a
//! one-time radix-2^w precomputation
//!
//! ```text
//! rows[i][d-1] = base^(d · 2^{w·i})   (domain form, d ∈ [1, 2^w))
//! ```
//!
//! after which `base^e` is the product of one table entry per non-zero
//! exponent digit — `⌈bits/w⌉` domain products, **zero squarings**. The
//! table lives in the residue domain of its [`Reducer`] (Montgomery form
//! for odd moduli, canonical for even), so every product is a single
//! reduction pass.

use crate::{BigUint, Reducer};
use std::sync::Arc;

/// Default radix width: `2^4` entries per digit row balances table size
/// (15 entries/row) against products per call (`bits/4`).
pub const DEFAULT_WINDOW: usize = 4;

/// Precomputed radix-2^w power table for one fixed base.
///
/// Built once per `(base, modulus)` pair from a shared [`Reducer`];
/// afterwards [`FixedBaseTable::pow`] costs `⌈bits/w⌉` domain products.
/// Exponents longer than `max_exp_bits` transparently fall back to the
/// generic windowed ladder (still division-free).
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    reducer: Arc<Reducer>,
    window: usize,
    max_bits: usize,
    /// Residue-domain image of the reduced base (fallback path).
    base_res: BigUint,
    /// `rows[i][d-1] = base^(d · 2^{window·i})` in residue form.
    rows: Vec<Vec<BigUint>>,
}

impl FixedBaseTable {
    /// Builds a table covering exponents of up to `max_exp_bits` bits with
    /// `window`-bit digits (1–8).
    ///
    /// # Panics
    /// Panics if `window` is outside `1..=8`.
    pub fn new(reducer: Arc<Reducer>, base: &BigUint, max_exp_bits: usize, window: usize) -> Self {
        assert!((1..=8).contains(&window), "window width must be in 1..=8");
        let base_res = reducer.to_residue(base);
        let n_rows = max_exp_bits.div_ceil(window).max(1);
        let mut rows = Vec::with_capacity(n_rows);
        let mut cur = base_res.clone(); // base^(2^{window·i})
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity((1 << window) - 1);
            row.push(cur.clone());
            for _ in 2..(1usize << window) {
                let next = reducer.residue_mul(row.last().expect("row is non-empty"), &cur);
                row.push(next);
            }
            // cur^(2^window) = row.last (= cur^(2^window - 1)) · cur
            cur = reducer.residue_mul(row.last().expect("row is non-empty"), &cur);
            rows.push(row);
        }
        FixedBaseTable {
            reducer,
            window,
            max_bits: n_rows * window,
            base_res,
            rows,
        }
    }

    /// Builds a table with the default window width.
    pub fn with_default_window(reducer: Arc<Reducer>, base: &BigUint, max_exp_bits: usize) -> Self {
        Self::new(reducer, base, max_exp_bits, DEFAULT_WINDOW)
    }

    /// The reduction context the table is built over.
    pub fn reducer(&self) -> &Arc<Reducer> {
        &self.reducer
    }

    /// Largest exponent bit length served by the table path.
    pub fn max_exp_bits(&self) -> usize {
        self.max_bits
    }

    /// `base^exp mod N`, canonical result.
    pub fn pow(&self, exp: &BigUint) -> BigUint {
        self.reducer.from_residue(&self.pow_residue(exp))
    }

    /// `base^exp mod N` with the result left in the residue domain (for
    /// callers chaining further domain products).
    pub fn pow_residue(&self, exp: &BigUint) -> BigUint {
        if exp.bit_len() > self.max_bits {
            // Exponent exceeds the precomputation — generic ladder.
            return self.reducer.pow_residue(&self.base_res, exp);
        }
        let mut acc = self.reducer.residue_one();
        for (i, row) in self.rows.iter().enumerate() {
            let d = crate::pow::window_digit(exp, i * self.window, self.window);
            if d != 0 {
                acc = self.reducer.residue_mul(&acc, &row[d - 1]);
            }
        }
        acc
    }

    /// `base^exp mod N` for a batch of independent exponents, canonical
    /// results — the lockstep analogue of [`FixedBaseTable::pow`].
    pub fn pow_batch(&self, exps: &[&BigUint]) -> Vec<BigUint> {
        self.pow_residue_batch(exps)
            .iter()
            .map(|r| self.reducer.from_residue(r))
            .collect()
    }

    /// `base^exp mod N` for a batch of independent exponents with the
    /// results left in the residue domain: the per-digit table products
    /// run as one batched sweep per row across every exponent whose
    /// digit is non-zero (subset-packed, so mixed-magnitude exponents
    /// share one schedule). Exponents beyond the precomputation fall
    /// back to the lockstep generic ladder as their own batch. Results
    /// equal mapping [`FixedBaseTable::pow_residue`] over the slice, in
    /// order.
    pub fn pow_residue_batch(&self, exps: &[&BigUint]) -> Vec<BigUint> {
        let mut out: Vec<Option<BigUint>> = vec![None; exps.len()];
        // Long exponents: batched generic ladder on the residue base.
        let long: Vec<usize> = (0..exps.len())
            .filter(|&i| exps[i].bit_len() > self.max_bits)
            .collect();
        if !long.is_empty() {
            let items: Vec<(&BigUint, &BigUint)> =
                long.iter().map(|&i| (&self.base_res, exps[i])).collect();
            for (&i, r) in long.iter().zip(self.reducer.residue_pow_batch(&items)) {
                out[i] = Some(r);
            }
        }
        // Table path, row by row across the remaining lanes.
        let short: Vec<usize> = (0..exps.len())
            .filter(|&i| exps[i].bit_len() <= self.max_bits)
            .collect();
        let mut acc: Vec<BigUint> = short.iter().map(|_| self.reducer.residue_one()).collect();
        for (i, row) in self.rows.iter().enumerate() {
            let sel: Vec<(usize, usize)> = short
                .iter()
                .enumerate()
                .filter_map(|(pos, &lane)| {
                    let d = crate::pow::window_digit(exps[lane], i * self.window, self.window);
                    (d != 0).then_some((pos, d))
                })
                .collect();
            if sel.is_empty() {
                continue;
            }
            let pairs: Vec<(&BigUint, &BigUint)> = sel
                .iter()
                .map(|&(pos, d)| (&acc[pos], &row[d - 1]))
                .collect();
            let prods = self.reducer.residue_mul_batch(&pairs);
            for (&(pos, _), p) in sel.iter().zip(prods) {
                acc[pos] = p;
            }
        }
        for (pos, &lane) in short.iter().enumerate() {
            out[lane] = Some(std::mem::replace(&mut acc[pos], BigUint::zero()));
        }
        out.into_iter()
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    fn table(m: u128, base: u128, bits: usize, w: usize) -> FixedBaseTable {
        let reducer = Arc::new(Reducer::new(&b(m)).expect("modulus > 1"));
        FixedBaseTable::new(reducer, &b(base), bits, w)
    }

    #[test]
    fn matches_naive_small_cases() {
        let t = table(1_000_003, 7, 64, 4);
        for e in [0u128, 1, 2, 3, 15, 16, 255, 1 << 40, (1 << 60) + 12345] {
            assert_eq!(
                t.pow(&b(e)),
                b(7).mod_pow_naive(&b(e), &b(1_000_003)),
                "e = {e}"
            );
        }
    }

    #[test]
    fn matches_naive_even_modulus() {
        let m = (1u128 << 80) + 4;
        let t = table(m, 0xdead_beef, 96, 5);
        for e in [0u128, 1, 31, 32, 0xffff_ffff, (1 << 90) - 1] {
            // exponents above max_bits exercise the fallback ladder
            assert_eq!(
                t.pow(&b(e)),
                b(0xdead_beef).mod_pow_naive(&b(e), &b(m)),
                "e = {e}"
            );
        }
    }

    #[test]
    fn every_window_width_agrees() {
        let m = 0xffff_ffff_0000_0001u128;
        for w in 1..=8 {
            let t = table(m, 3, 64, w);
            let e = b(0x0123_4567_89ab_cdef);
            assert_eq!(t.pow(&e), b(3).mod_pow_naive(&e, &b(m)), "w = {w}");
        }
    }

    #[test]
    fn pow_batch_matches_serial_with_mixed_magnitudes() {
        // Odd and even moduli; exponents straddling the table cap so the
        // batched long-exponent fallback and the table path mix lanes.
        for m in [1_000_003u128, (1u128 << 80) + 4] {
            let t = table(m, 0xdead_beef, 48, 4);
            let exps: Vec<BigUint> = [
                0u128,
                1,
                2,
                0xffff,
                (1 << 47) + 5,
                (1 << 90) - 1, // beyond max_bits: generic-ladder lane
                (1 << 48) - 1,
                3,
                (1 << 91) + 7, // beyond max_bits
            ]
            .iter()
            .map(|&e| b(e))
            .collect();
            let refs: Vec<&BigUint> = exps.iter().collect();
            let want: Vec<BigUint> = refs.iter().map(|e| t.pow(e)).collect();
            assert_eq!(t.pow_batch(&refs), want, "m = {m}");
            let want_res: Vec<BigUint> = refs.iter().map(|e| t.pow_residue(e)).collect();
            assert_eq!(t.pow_residue_batch(&refs), want_res, "m = {m} (residue)");
        }
    }

    #[test]
    fn zero_base_and_identity_exponent() {
        let t = table(97, 0, 16, 4);
        assert_eq!(t.pow(&BigUint::zero()), BigUint::one()); // 0^0 = 1 mod N
        assert_eq!(t.pow(&b(5)), BigUint::zero());
        let t1 = table(97, 1, 16, 4);
        assert_eq!(t1.pow(&b(12345)), BigUint::one());
    }

    #[test]
    fn unreduced_base_is_canonicalized() {
        let t = table(1_000_003, 1_000_003 * 5 + 42, 40, 4);
        assert_eq!(t.pow(&b(777)), b(42).mod_pow_naive(&b(777), &b(1_000_003)));
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn rejects_zero_window() {
        let _ = table(97, 3, 16, 0);
    }
}
