//! Modular arithmetic: `+`, `-`, `*`, exponentiation, gcd and inverses.

use crate::BigUint;

impl BigUint {
    /// `(self + rhs) mod m`. Operands need not be reduced.
    ///
    /// When both operands are already reduced (`< m`) — the common case on
    /// the group hot path, where every element is kept canonical — this is
    /// one addition plus at most one subtraction, with no division.
    pub fn mod_add(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if self < m && rhs < m {
            let sum = self + rhs;
            if &sum >= m {
                return &sum - m;
            }
            return sum;
        }
        &(self + rhs) % m
    }

    /// `(self - rhs) mod m`, wrapping negative results into `[0, m)`.
    ///
    /// Reduced operands take a division-free fast path, mirroring
    /// [`BigUint::mod_add`].
    pub fn mod_sub(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if self < m && rhs < m {
            return if self >= rhs {
                self - rhs
            } else {
                &(self + m) - rhs
            };
        }
        let a = self % m;
        let b = rhs % m;
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// `(self * rhs) mod m`.
    pub fn mod_mul(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be non-zero");
        &(self * rhs) % m
    }

    /// `self^exp mod m`.
    ///
    /// The dispatch through [`crate::Reducer`] is **total**: odd moduli
    /// (every prime and every HVE group order `N = P·Q`) take the windowed
    /// Montgomery ladder in [`crate::MontgomeryCtx`], even moduli take the
    /// windowed Barrett ladder in [`crate::BarrettCtx`]. Neither path
    /// divides per step; the division-based ladder survives only as the
    /// explicitly-named [`BigUint::mod_pow_naive`] baseline.
    ///
    /// `0^0 mod m` is defined as `1 mod m`, matching the usual convention.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m.is_one() {
            return BigUint::zero();
        }
        crate::Reducer::new(m)
            .expect("modulus > 1 always has a reduction context")
            .mod_pow(self, exp)
    }

    /// `self^exp mod m` by left-to-right binary square-and-multiply with a
    /// full division per step — the pre-Montgomery baseline, kept public
    /// so benchmarks and property tests can compare against it.
    pub fn mod_pow_naive(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m.is_one() {
            return BigUint::zero();
        }
        let base = self % m;
        if exp.is_zero() {
            return BigUint::one();
        }
        let mut acc = BigUint::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mod_mul(&acc, m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let shift = az.min(bz);
        a = a.shr_bits(az);
        b = b.shr_bits(bz);
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a; // b >= a, both odd => b-a even
            if b.is_zero() {
                return a.shl_bits(shift);
            }
            b = b.shr_bits(b.trailing_zeros());
        }
    }

    /// Number of trailing zero bits (0 for the value zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Modular inverse: `self^{-1} mod m`, or `None` when
    /// `gcd(self, m) != 1`.
    ///
    /// Uses the extended Euclidean algorithm with explicit sign tracking
    /// (this crate has no signed big integer).
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m.is_one() {
            return Some(BigUint::zero());
        }
        let a = self % m;
        if a.is_zero() {
            return None;
        }

        // Invariants: r0 = s0*a (mod m), r1 = s1*a (mod m), with the signs of
        // s0/s1 tracked separately.
        let mut r0 = m.clone();
        let mut r1 = a;
        let mut s0 = (BigUint::zero(), false); // (magnitude, negative?)
        let mut s1 = (BigUint::one(), false);

        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // s2 = s0 - q * s1 (signed)
            let qs1 = &q * &s1.0;
            let s2 = signed_sub(&s0, &(qs1, s1.1));
            r0 = r1;
            r1 = r2;
            s0 = s1;
            s1 = s2;
        }

        if !r0.is_one() {
            return None; // not coprime
        }
        let (mag, neg) = s0;
        let mag = &mag % m;
        Some(if neg && !mag.is_zero() { m - &mag } else { mag })
    }
}

/// Signed subtraction on (magnitude, negative?) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (&a.0 + &b.0, false),
        (true, false) => (&a.0 + &b.0, true),
        // same sign: subtract magnitudes
        (sa, _) => {
            if a.0 >= b.0 {
                (&a.0 - &b.0, sa)
            } else {
                (&b.0 - &a.0, !sa)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn mod_add_sub() {
        let m = b(97);
        assert_eq!(b(90).mod_add(&b(20), &m), b(13));
        assert_eq!(b(5).mod_sub(&b(20), &m), b(82));
        assert_eq!(b(20).mod_sub(&b(5), &m), b(15));
    }

    #[test]
    fn mod_mul_large() {
        let m = b(1_000_000_007);
        let a = b(u128::MAX) % &m;
        let r = a.mod_mul(&a, &m);
        let expect = ((u128::MAX % 1_000_000_007) * (u128::MAX % 1_000_000_007)) % 1_000_000_007;
        assert_eq!(r, b(expect));
    }

    #[test]
    fn mod_pow_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p.
        let p = b(1_000_000_007);
        for a in [2u128, 3, 65537, 999_999_999] {
            assert_eq!(b(a).mod_pow(&(&p - &b(1)), &p), BigUint::one());
        }
    }

    #[test]
    fn mod_pow_edges() {
        let m = b(13);
        assert_eq!(b(0).mod_pow(&b(0), &m), BigUint::one());
        assert_eq!(b(5).mod_pow(&b(0), &m), BigUint::one());
        assert_eq!(b(5).mod_pow(&b(1), &m), b(5));
        assert_eq!(b(5).mod_pow(&b(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(1 << 40).gcd(&b(1 << 22)), b(1 << 22));
    }

    #[test]
    fn mod_inverse_roundtrip() {
        let m = b(1_000_000_007);
        for a in [2u128, 3, 12345, 999_999_999, 65537] {
            let inv = b(a).mod_inverse(&m).unwrap();
            assert_eq!(b(a).mod_mul(&inv, &m), BigUint::one(), "a = {a}");
        }
    }

    #[test]
    fn mod_inverse_not_coprime() {
        assert_eq!(b(6).mod_inverse(&b(9)), None);
        assert_eq!(b(0).mod_inverse(&b(9)), None);
    }

    #[test]
    fn mod_inverse_composite_modulus() {
        // Works for any coprime pair, incl. the composite N = P*Q case used
        // by the pairing group.
        let n = &b(1_000_000_007) * &b(998_244_353);
        let a = b(0x1234_5678_9abc);
        let inv = a.mod_inverse(&n).unwrap();
        assert_eq!(a.mod_mul(&inv, &n), BigUint::one());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(b(0).trailing_zeros(), 0);
        assert_eq!(b(1).trailing_zeros(), 0);
        assert_eq!(b(8).trailing_zeros(), 3);
        assert_eq!(b(1 << 100).trailing_zeros(), 100);
    }
}
