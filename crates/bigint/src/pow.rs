//! Shared sliding-window exponentiation ladder.
//!
//! Both reduction backends ([`crate::MontgomeryCtx`] for odd moduli,
//! [`crate::BarrettCtx`] for even ones) expose the same *residue-domain*
//! primitives — a domain constant for 1, conversions in and out, and a
//! domain product. The windowed square-and-multiply ladder only needs
//! those, so it lives here once and is instantiated for each backend
//! through the [`ResidueOps`] trait instead of being duplicated.

use crate::BigUint;

/// The residue-domain primitives a reduction backend must provide.
///
/// For Montgomery the domain is `x ↦ x·R mod N`; for Barrett it is the
/// identity (canonical residues). Either way `mul` composes inside the
/// domain and `to`/`from` convert at the boundary.
pub(crate) trait ResidueOps {
    /// The domain image of `1`.
    fn one_res(&self) -> BigUint;
    /// Canonical → domain (reduces unreduced inputs).
    fn to_res(&self, a: &BigUint) -> BigUint;
    /// Domain product of two domain residues.
    fn mul_res(&self, a: &BigUint, b: &BigUint) -> BigUint;
}

/// Window width for an exponent of `bits` significant bits: 1 for short
/// exponents up to 5 for very long ones.
pub(crate) fn window_for_bits(bits: usize) -> usize {
    match bits {
        0..=8 => 1,
        9..=32 => 2,
        33..=96 => 3,
        97..=512 => 4,
        _ => 5,
    }
}

/// `base^exp` over a residue ring, with `base` already in the domain and
/// the result left in the domain. Left-to-right sliding window over a
/// table of odd powers; plain square-and-multiply for short exponents.
pub(crate) fn window_pow_res<R: ResidueOps>(
    ring: &R,
    base_res: &BigUint,
    exp: &BigUint,
) -> BigUint {
    if exp.is_zero() {
        return ring.one_res();
    }
    let bits = exp.bit_len();
    let window = window_for_bits(bits);

    if window == 1 {
        let mut acc = ring.one_res();
        for i in (0..bits).rev() {
            acc = ring.mul_res(&acc, &acc);
            if exp.bit(i) {
                acc = ring.mul_res(&acc, base_res);
            }
        }
        return acc;
    }

    // Odd-power table: odd[i] = base^(2i+1) in the domain.
    let base_sq = ring.mul_res(base_res, base_res);
    let mut odd = Vec::with_capacity(1 << (window - 1));
    odd.push(base_res.clone());
    for i in 1..(1usize << (window - 1)) {
        let next = ring.mul_res(&odd[i - 1], &base_sq);
        odd.push(next);
    }

    let mut acc = ring.one_res();
    let mut i = bits as isize - 1;
    while i >= 0 {
        if !exp.bit(i as usize) {
            acc = ring.mul_res(&acc, &acc);
            i -= 1;
            continue;
        }
        // Greedily take up to `window` bits ending on a set bit so the
        // window value is odd and hits the precomputed table.
        let mut lo = (i - window as isize + 1).max(0);
        while !exp.bit(lo as usize) {
            lo += 1;
        }
        let width = (i - lo + 1) as usize;
        let mut value = 0usize;
        for b in (lo..=i).rev() {
            value = (value << 1) | exp.bit(b as usize) as usize;
        }
        for _ in 0..width {
            acc = ring.mul_res(&acc, &acc);
        }
        acc = ring.mul_res(&acc, &odd[(value - 1) / 2]);
        i = lo - 1;
    }
    acc
}

/// Extracts the `width`-bit little-endian digit of `exp` starting at bit
/// `lo` (used by the fixed-base tables' radix-2^w decomposition).
pub(crate) fn window_digit(exp: &BigUint, lo: usize, width: usize) -> usize {
    let mut value = 0usize;
    for b in (lo..lo + width).rev() {
        value = (value << 1) | exp.bit(b) as usize;
    }
    value
}
