//! Shared sliding-window exponentiation ladder.
//!
//! Both reduction backends ([`crate::MontgomeryCtx`] for odd moduli,
//! [`crate::BarrettCtx`] for even ones) expose the same *residue-domain*
//! primitives — a domain constant for 1, conversions in and out, and a
//! domain product. The windowed square-and-multiply ladder only needs
//! those, so it lives here once and is instantiated for each backend
//! through the [`ResidueOps`] trait instead of being duplicated.

use crate::BigUint;

/// The residue-domain primitives a reduction backend must provide.
///
/// For Montgomery the domain is `x ↦ x·R mod N`; for Barrett it is the
/// identity (canonical residues). Either way `mul` composes inside the
/// domain and `to`/`from` convert at the boundary.
pub(crate) trait ResidueOps {
    /// The domain image of `1`.
    fn one_res(&self) -> BigUint;
    /// Canonical → domain (reduces unreduced inputs).
    fn to_res(&self, a: &BigUint) -> BigUint;
    /// Domain product of two domain residues.
    fn mul_res(&self, a: &BigUint, b: &BigUint) -> BigUint;
    /// Domain products for a batch of **independent** pairs. Backends
    /// with a lockstep batch path override this (Montgomery routes to
    /// `mont_mul_batch`); the default is the serial map. Results equal
    /// mapping [`ResidueOps::mul_res`] over the slice, in order.
    fn mul_res_batch(&self, pairs: &[(&BigUint, &BigUint)]) -> Vec<BigUint> {
        pairs.iter().map(|(a, b)| self.mul_res(a, b)).collect()
    }
}

/// Window width for an exponent of `bits` significant bits: 1 for short
/// exponents up to 5 for very long ones.
pub(crate) fn window_for_bits(bits: usize) -> usize {
    match bits {
        0..=8 => 1,
        9..=32 => 2,
        33..=96 => 3,
        97..=512 => 4,
        _ => 5,
    }
}

/// `base^exp` over a residue ring, with `base` already in the domain and
/// the result left in the domain. Left-to-right sliding window over a
/// table of odd powers; plain square-and-multiply for short exponents.
pub(crate) fn window_pow_res<R: ResidueOps>(
    ring: &R,
    base_res: &BigUint,
    exp: &BigUint,
) -> BigUint {
    if exp.is_zero() {
        return ring.one_res();
    }
    let bits = exp.bit_len();
    let window = window_for_bits(bits);

    if window == 1 {
        let mut acc = ring.one_res();
        for i in (0..bits).rev() {
            acc = ring.mul_res(&acc, &acc);
            if exp.bit(i) {
                acc = ring.mul_res(&acc, base_res);
            }
        }
        return acc;
    }

    // Odd-power table: odd[i] = base^(2i+1) in the domain.
    let base_sq = ring.mul_res(base_res, base_res);
    let mut odd = Vec::with_capacity(1 << (window - 1));
    odd.push(base_res.clone());
    for i in 1..(1usize << (window - 1)) {
        let next = ring.mul_res(&odd[i - 1], &base_sq);
        odd.push(next);
    }

    let mut acc = ring.one_res();
    let mut i = bits as isize - 1;
    while i >= 0 {
        if !exp.bit(i as usize) {
            acc = ring.mul_res(&acc, &acc);
            i -= 1;
            continue;
        }
        // Greedily take up to `window` bits ending on a set bit so the
        // window value is odd and hits the precomputed table.
        let mut lo = (i - window as isize + 1).max(0);
        while !exp.bit(lo as usize) {
            lo += 1;
        }
        let width = (i - lo + 1) as usize;
        let mut value = 0usize;
        for b in (lo..=i).rev() {
            value = (value << 1) | exp.bit(b as usize) as usize;
        }
        for _ in 0..width {
            acc = ring.mul_res(&acc, &acc);
        }
        acc = ring.mul_res(&acc, &odd[(value - 1) / 2]);
        i = lo - 1;
    }
    acc
}

/// Lanes per lockstep ladder group: bounds per-group table memory
/// (`chunk · 2^w` residues) while staying wide enough that every batched
/// product saturates the 8-wide kernel groups underneath.
const LADDER_CHUNK: usize = 32;

/// `base^exp` for a batch of **independent** `(base_res, exp)` pairs,
/// bases and results in the residue domain — N exponentiation ladders
/// advanced in lockstep.
///
/// A sliding window takes data-dependent steps (each lane would square
/// and multiply on its own schedule), so lockstep execution uses a
/// **fixed** radix-2^w window instead: one schedule — `w` squarings plus
/// one table product per digit — shared by the whole group, with each
/// lane's exponent digit selecting its own precomputed power. Per digit,
/// the squarings run as one full-width batched product and the table
/// multiplies are subset-packed over the lanes whose digit is non-zero
/// (zero digits are masked out of the batch rather than multiplied by
/// one). Short exponents simply see leading zero digits: their
/// accumulator idles at the domain 1 (squaring 1 yields 1) until their
/// first significant digit — the pad-and-mask that lets ragged lanes
/// share one schedule.
///
/// The per-lane op *sequence* differs from [`window_pow_res`]'s sliding
/// window, but residues have a unique representative in `[0, N)`, so the
/// outputs are byte-identical to the serial ladder's — which is what the
/// oracle proptests pin, per kernel, across widths.
///
/// # Dispatch policy (measured)
///
/// Whether the lockstep schedule actually runs is decided by
/// [`lockstep_ladder_profitable`]: under auto-detected dispatch the
/// serial sliding window (scalar single-mul CIOS) wins at every limb
/// count the vector kernels accept, so the batch entry falls back to a
/// per-lane serial map — same bytes, same count of recorded ops, just
/// the faster schedule. A forced `SLA_SIMD` override keeps the lockstep
/// ladder: that is the regime where it wins (2–7× over forcing the same
/// vector kernel through serial singles) and the path the CI oracle
/// legs pin.
pub(crate) fn window_pow_res_batch<R: ResidueOps>(
    ring: &R,
    items: &[(&BigUint, &BigUint)],
) -> Vec<BigUint> {
    if !lockstep_ladder_profitable() {
        return items
            .iter()
            .map(|(b, e)| window_pow_res(ring, b, e))
            .collect();
    }
    let mut out = Vec::with_capacity(items.len());
    for chunk in items.chunks(LADDER_CHUNK) {
        ladder_chunk(ring, chunk, &mut out);
    }
    out
}

/// Whether the lockstep ladder beats N serial sliding windows under the
/// process-wide kernel choice. Measured on the x86-64 reference host
/// (8-wide batches, full-length exponents): under **auto** dispatch the
/// serial ladder's scalar u128 single-mul chain wins at every limb
/// count `1..=KMAX` (lockstep lands at 0.77×–0.93×, approaching parity
/// at 8 limbs — the fixed-window schedule's extra table products and
/// the SoA packing per batched product cost more than the ~1.1× the
/// portable batch kernel returns per CIOS). Under a **forced**
/// `SLA_SIMD` vector kernel the comparison flips hard (2.2×–7.3×): a
/// forced kernel runs single muls too, and one CIOS pass is a serial
/// carry chain the digit kernels lose on, so batching is the only way
/// to fill the lanes. Hence: forced ⇒ lockstep, auto ⇒ serial map.
fn lockstep_ladder_profitable() -> bool {
    crate::kernels::KernelKind::active_forced().1
}

/// One lockstep group of [`window_pow_res_batch`]: the shared window
/// width is chosen from the group's longest exponent.
fn ladder_chunk<R: ResidueOps>(ring: &R, items: &[(&BigUint, &BigUint)], out: &mut Vec<BigUint>) {
    let n = items.len();
    let max_bits = items
        .iter()
        .map(|(_, e)| e.bit_len())
        .max()
        .unwrap_or_default();
    if max_bits == 0 {
        out.extend((0..n).map(|_| ring.one_res()));
        return;
    }
    let window = window_for_bits(max_bits);

    // Per-lane power tables, built in lockstep across lanes:
    // powers[d][lane] = base_lane^d in the domain (powers[0] is the
    // domain 1, which also serves the all-zero-digit lanes).
    let mut powers: Vec<Vec<BigUint>> = Vec::with_capacity(1 << window);
    powers.push((0..n).map(|_| ring.one_res()).collect());
    powers.push(items.iter().map(|(b, _)| (*b).clone()).collect());
    for d in 2..(1usize << window) {
        let pairs: Vec<(&BigUint, &BigUint)> = (0..n)
            .map(|lane| (&powers[d - 1][lane], items[lane].0))
            .collect();
        let row = ring.mul_res_batch(&pairs);
        powers.push(row);
    }

    // MSB→LSB over the shared digit schedule. The top digit seeds the
    // accumulators directly (squaring the domain 1 first would be a
    // no-op ladder prologue).
    let digits = max_bits.div_ceil(window);
    let top = digits - 1;
    let mut acc: Vec<BigUint> = (0..n)
        .map(|lane| powers[window_digit(items[lane].1, top * window, window)][lane].clone())
        .collect();
    for idx in (0..top).rev() {
        for _ in 0..window {
            let pairs: Vec<(&BigUint, &BigUint)> = acc.iter().map(|a| (a, a)).collect();
            acc = ring.mul_res_batch(&pairs);
        }
        // Subset-pack the lanes with a non-zero digit into one batch.
        let sel: Vec<(usize, usize)> = (0..n)
            .filter_map(|lane| {
                let d = window_digit(items[lane].1, idx * window, window);
                (d != 0).then_some((lane, d))
            })
            .collect();
        if !sel.is_empty() {
            let pairs: Vec<(&BigUint, &BigUint)> = sel
                .iter()
                .map(|&(lane, d)| (&acc[lane], &powers[d][lane]))
                .collect();
            let prods = ring.mul_res_batch(&pairs);
            for (&(lane, _), p) in sel.iter().zip(prods) {
                acc[lane] = p;
            }
        }
    }
    out.append(&mut acc);
}

/// Extracts the `width`-bit little-endian digit of `exp` starting at bit
/// `lo` (used by the fixed-base tables' radix-2^w decomposition).
pub(crate) fn window_digit(exp: &BigUint, lo: usize, width: usize) -> usize {
    let mut value = 0usize;
    for b in (lo..lo + width).rev() {
        value = (value << 1) | exp.bit(b) as usize;
    }
    value
}
